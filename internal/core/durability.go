package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// The durability failure policy: what a journaled hub does when its disk
// stops cooperating. A journal append that fails voids the durability
// promise for that record — the question is what happens to the exchange
// that wanted it.
//
//   - FailStop (the default, and the old behavior made typed): the
//     admission is rejected with ErrJournalUnavailable. In-flight
//     exchanges drain normally (their completion appends were always
//     best-effort); nothing new is accepted that cannot be logged. The
//     hub keeps trying — each admission probes the disk implicitly, so a
//     healed disk resumes service without intervention.
//
//   - FailDegraded: the hub keeps serving. The failed admission and every
//     one after it proceed non-durably (no admission key, no replay after
//     a crash), a KindDurability degraded alarm is raised, and a
//     background prober re-checks the disk. Once a probe succeeds the
//     journal is re-armed on a fresh compacted segment (checkpoint +
//     live state) and admissions are durable again.
//
// Either way, exchanges the hub already acknowledged keep their
// exactly-once accounting: a durable admit without a complete re-delivers
// at most once on Recover, and non-durable (degraded) admissions are by
// definition never replayed.

// JournalFailurePolicy selects the hub's reaction to journal append
// failures (WithJournalFailurePolicy).
type JournalFailurePolicy string

// Durability failure policies.
const (
	// FailStop rejects admissions whose journal append failed with
	// ErrJournalUnavailable. The default.
	FailStop JournalFailurePolicy = "fail-stop"
	// FailDegraded keeps admitting non-durably while the disk is down and
	// re-arms journaling automatically once it heals.
	FailDegraded JournalFailurePolicy = "degraded"
)

// ParseFailurePolicy parses a policy name as given on a command line.
func ParseFailurePolicy(s string) (JournalFailurePolicy, error) {
	switch JournalFailurePolicy(s) {
	case FailStop, FailDegraded:
		return JournalFailurePolicy(s), nil
	}
	return "", fmt.Errorf("core: unknown journal failure policy %q (want fail-stop or degraded)", s)
}

// DefaultJournalProbeInterval is how often a degraded hub probes the disk
// for recovery (WithJournalProbeInterval overrides).
const DefaultJournalProbeInterval = 250 * time.Millisecond

// DurabilityVersion is the schema version of DurabilityStatus. Like
// ClusterVersion it is bumped only when a field changes meaning; additive
// fields do not bump it.
const DurabilityVersion = 1

// DurabilityStatus is the versioned storage-health section of a
// StatusSnapshot (nil on hubs built without WithJournal).
type DurabilityStatus struct {
	// Version is the DurabilityStatus schema version (DurabilityVersion).
	Version int `json:"version"`
	// Policy is the configured failure policy.
	Policy JournalFailurePolicy `json:"policy"`
	// Mode is "durable" while appends reach the journal and "degraded"
	// while the hub is admitting non-durably after an append failure.
	Mode string `json:"mode"`
	// Since is when the current degraded episode began (degraded only).
	Since *time.Time `json:"since,omitempty"`
	// LastError is the most recent journal append failure, if any.
	LastError string `json:"last_error,omitempty"`
	// AppendFailures counts failed admission appends; RejectedAdmits the
	// fail-stop rejections they caused; NonDurableAdmits the degraded-mode
	// admissions that proceeded without a journal record.
	AppendFailures   int64 `json:"append_failures"`
	RejectedAdmits   int64 `json:"rejected_admits"`
	NonDurableAdmits int64 `json:"non_durable_admits"`
	// Probes counts disk probes while degraded; Rearms the successful
	// re-arms that ended a degraded episode.
	Probes int64 `json:"probes"`
	Rearms int64 `json:"rearms"`
	// Poisoned counts admissions parked to the dead-letter queue for
	// repeatedly crashing recovery.
	Poisoned int64 `json:"poisoned"`
	// Corrupt and QuarantinedBytes account the open-time scrub's
	// quarantined mid-file rot (WithJournalScrub); Rotations counts
	// journal compactions since open.
	Corrupt          int   `json:"corrupt"`
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	Rotations        int64 `json:"rotations"`
}

// durability is the hub's storage-health state. Lock order: dur.mu is a
// leaf — it is never held across journal appends, bus emissions or any
// other hub lock.
type durability struct {
	policy        JournalFailurePolicy
	probeInterval time.Duration

	mu             sync.Mutex
	degraded       bool
	since          time.Time
	lastErr        error
	appendFailures int64
	rejected       int64
	nonDurable     int64
	probes         int64
	rearms         int64
	poisoned       int64
	// stopProbe/probeDone belong to the running prober (nil when none).
	stopProbe chan struct{}
	probeDone chan struct{}
}

// journalDown reports whether the hub is in degraded (non-durable) mode.
func (h *Hub) journalDown() bool {
	h.dur.mu.Lock()
	defer h.dur.mu.Unlock()
	return h.dur.degraded
}

// noteNonDurableAdmit counts one admission served while degraded.
func (h *Hub) noteNonDurableAdmit() {
	h.dur.mu.Lock()
	h.dur.nonDurable++
	h.dur.mu.Unlock()
}

// journalAppendFailed applies the failure policy to one failed admission
// append: it returns the error the admission must fail with (fail-stop),
// or nil when the admission should proceed non-durably (degraded).
func (h *Hub) journalAppendFailed(err error) error {
	d := &h.dur
	d.mu.Lock()
	d.appendFailures++
	d.lastErr = err
	if d.policy != FailDegraded {
		d.rejected++
		d.mu.Unlock()
		h.bus.Emit(obs.Event{
			Kind: obs.KindDurability, Stage: obs.StageDurability,
			Step: obs.StepAdmitRejected, Err: err,
		})
		return fmt.Errorf("core: journal admit: %w (%v)", ErrJournalUnavailable, err)
	}
	entered := !d.degraded
	if entered {
		d.degraded = true
		d.since = time.Now()
		d.stopProbe = make(chan struct{})
		d.probeDone = make(chan struct{})
		go h.durabilityProbe(d.stopProbe, d.probeDone)
	}
	d.nonDurable++
	d.mu.Unlock()
	if entered {
		h.bus.Emit(obs.Event{
			Kind: obs.KindDurability, Stage: obs.StageDurability,
			Step: obs.StepDegraded, Err: err,
		})
	}
	return nil
}

// durabilityProbe is the degraded-mode recovery loop: every probeInterval
// it attempts a journal checkpoint — a compaction onto a fresh segment
// carrying the hub's live state — and re-arms durable admission on the
// first success. The goroutine exits on re-arm or when stop closes
// (CloseJournal).
func (h *Hub) durabilityProbe(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(h.dur.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		h.dur.mu.Lock()
		h.dur.probes++
		h.dur.mu.Unlock()
		// The probe is the rotation itself: Compact writes, fsyncs and
		// renames a fresh segment without touching the (possibly broken)
		// old handle, so success proves the disk accepts durable writes
		// and leaves the journal re-armed in one move.
		if err := h.CheckpointJournal(); err != nil {
			h.bus.Emit(obs.Event{
				Kind: obs.KindDurability, Stage: obs.StageDurability,
				Step: obs.StepProbe, Err: err,
			})
			continue
		}
		h.dur.mu.Lock()
		h.dur.degraded = false
		h.dur.rearms++
		h.dur.stopProbe = nil
		h.dur.probeDone = nil
		h.dur.mu.Unlock()
		h.bus.Emit(obs.Event{
			Kind: obs.KindDurability, Stage: obs.StageDurability,
			Step: obs.StepRearmed,
		})
		return
	}
}

// stopDurabilityProbe terminates a running prober and waits for it to
// exit. Safe to call whether or not one is running.
func (h *Hub) stopDurabilityProbe() {
	h.dur.mu.Lock()
	stop, done := h.dur.stopProbe, h.dur.probeDone
	h.dur.stopProbe, h.dur.probeDone = nil, nil
	h.dur.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// durabilityStatus assembles StatusSnapshot's durability section (nil on
// hubs without a journal).
func (h *Hub) durabilityStatus() *DurabilityStatus {
	if h.jrn == nil {
		return nil
	}
	st := h.jrn.Stats()
	d := &h.dur
	d.mu.Lock()
	defer d.mu.Unlock()
	ds := &DurabilityStatus{
		Version:          DurabilityVersion,
		Policy:           d.policy,
		Mode:             "durable",
		AppendFailures:   d.appendFailures,
		RejectedAdmits:   d.rejected,
		NonDurableAdmits: d.nonDurable,
		Probes:           d.probes,
		Rearms:           d.rearms,
		Poisoned:         d.poisoned,
		Corrupt:          st.Corrupt,
		QuarantinedBytes: st.QuarantinedBytes,
		Rotations:        st.Rotations,
	}
	if d.degraded {
		ds.Mode = "degraded"
		since := d.since
		ds.Since = &since
	}
	if d.lastErr != nil {
		ds.LastError = d.lastErr.Error()
	}
	return ds
}

// ScrubJournal walks the hub's journal file read-only and reports every
// valid record, mid-file corrupt region and torn tail (the b2bctl scrub
// surface). It never modifies the journal; quarantining happens at the
// next open WithJournalScrub.
func (h *Hub) ScrubJournal() (journal.ScrubReport, error) {
	if h.jrn == nil {
		return journal.ScrubReport{}, ErrNoJournal
	}
	return h.jrn.Scrub()
}
