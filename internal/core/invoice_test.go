package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/wf"
)

// TestEnableInvoicingIsAdditive: enabling the invoice flow is the Section
// 4.6 "adding a new private process" change — new artifacts, zero modified.
func TestEnableInvoicingIsAdditive(t *testing.T) {
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	before := make([]*wf.TypeDef, 0)
	for _, d := range m.AllTypes() {
		before = append(before, d.Clone())
	}
	rec, err := m.EnableInvoicing()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Local {
		t.Fatalf("record %+v", rec)
	}
	// 1 private + 2 protocols × (public + binding) + 2 app bindings = 7.
	if len(rec.TypesAdded) != 7 {
		t.Fatalf("types added %v", rec.TypesAdded)
	}
	if rec.RulesAdded != 2 {
		t.Fatalf("rules added %d", rec.RulesAdded)
	}
	impact := metrics.Diff(before, m.AllTypes())
	if len(impact.Modified) != 0 || len(impact.Added) != 7 || impact.Untouched != len(before) {
		t.Fatalf("impact %+v", impact)
	}
	// Double enablement is rejected.
	if _, err := m.EnableInvoicing(); err == nil {
		t.Fatal("double enablement accepted")
	}
}

// TestInvoiceFlowEndToEnd: PO round trip, then the one-way invoice for the
// fulfilled order through the outbound chain.
func TestInvoiceFlowEndToEnd(t *testing.T) {
	h := newFig14Hub(t)
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := doc.NewGenerator(1)

	po := g.POWithAmount(tp1, seller, 60000)
	if _, _, err := roundTrip(h, ctx, po); err != nil {
		t.Fatal(err)
	}

	wire, ex, err := invoiceFor(h, ctx, "TP1", po.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) == 0 {
		t.Fatal("empty invoice wire")
	}
	// The wire is a valid EDI 810 referencing the PO, with the billed
	// amount equal to the accepted order amount.
	codec, err := h.codecs.Lookup(ex.Protocol, doc.TypeINV)
	if err != nil {
		t.Fatal(err)
	}
	native, err := codec.Decode(wire)
	if err != nil {
		t.Fatalf("outbound invoice not decodable: %v\n%s", err, wire)
	}
	nd, err := h.reg.ToNormalized(ex.Protocol, doc.TypeINV, native)
	if err != nil {
		t.Fatal(err)
	}
	inv := nd.(*doc.Invoice)
	if inv.POID != po.ID {
		t.Fatalf("invoice references %q, want %q", inv.POID, po.ID)
	}
	if inv.Amount() != po.Amount() {
		t.Fatalf("invoice amount %v, order amount %v", inv.Amount(), po.Amount())
	}
	// Review rule ran (60000 >= 55000 threshold).
	priv, err := h.Engine.Instance(ex.PrivateID)
	if err != nil {
		t.Fatal(err)
	}
	if priv.Data["reviewNeeded"] != true || priv.Data["reviewed"] != true {
		t.Fatalf("review not run: %v", priv.Data)
	}
	joined := strings.Join(h.Trace(ex.ID), ";")
	for _, want := range []string{
		"application binding → invoice private process",
		"invoice private process → binding",
		"invoice binding → public",
		"public → network",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q: %v", want, h.Trace(ex.ID))
		}
	}
	// A second invoice for the same order is not available.
	if _, _, err := invoiceFor(h, ctx, "TP1", po.ID); err == nil {
		t.Fatal("double billing accepted")
	}
}

func TestInvoiceSmallOrderNoReview(t *testing.T) {
	h := newFig14Hub(t)
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := doc.NewGenerator(2)
	po := g.POWithAmount(tp2, seller, 900) // RosettaNet partner, below threshold
	if _, _, err := roundTrip(h, ctx, po); err != nil {
		t.Fatal(err)
	}
	_, ex, err := invoiceFor(h, ctx, "TP2", po.ID)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := h.Engine.Instance(ex.PrivateID)
	if err != nil {
		t.Fatal(err)
	}
	if priv.Data["reviewNeeded"] != false {
		t.Fatal("small invoice should not need review")
	}
	if priv.StepStateOf("Review invoice") != wf.StepSkipped {
		t.Fatalf("review step state %s", priv.StepStateOf("Review invoice"))
	}
}

func TestInvoiceErrors(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	// Not enabled.
	if _, _, err := invoiceFor(h, ctx, "TP1", "PO-X"); err == nil {
		t.Fatal("invoicing disabled but SendInvoice succeeded")
	}
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	// Unknown partner.
	if _, _, err := invoiceFor(h, ctx, "GHOST", "PO-X"); err == nil {
		t.Fatal("unknown partner accepted")
	}
	// Unbilled order.
	if _, _, err := invoiceFor(h, ctx, "TP1", "PO-NEVER-PLACED"); err == nil {
		t.Fatal("unbilled order accepted")
	}
}

// TestInvoicePushOverNetwork: the server pushes the one-way invoice to the
// partner over the reliable network; the client receives it.
func TestInvoicePushOverNetwork(t *testing.T) {
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	n := msg.NewInProcNetwork(msg.Faults{LossProb: 0.15, Seed: 31})
	defer n.Close()
	rcfg := msg.ReliableConfig{RetryInterval: 10 * time.Millisecond, MaxAttempts: 60}
	hubEP, err := n.Endpoint("hub")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(h, hubEP, WithReliableConfig(rcfg))
	defer server.Close()
	p1, _ := m.PartnerByID("TP1")
	cliEP, err := n.Endpoint("TP1")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(p1, cliEP, rcfg, "hub")
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go server.Serve(ctx, nil)

	g := doc.NewGenerator(3)
	po := g.PO(tp1, seller)
	poa, err := client.RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID {
		t.Fatal("wrong correlation")
	}
	if _, err := server.PushInvoice(ctx, "TP1", po.ID); err != nil {
		t.Fatal(err)
	}
	inv, err := client.ReceiveInvoice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inv.POID != po.ID {
		t.Fatalf("invoice references %q, want %q", inv.POID, po.ID)
	}
	if inv.Amount() != po.Amount() {
		t.Fatalf("invoice amount %v != order amount %v", inv.Amount(), po.Amount())
	}
}
