package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/transform"
)

// The compat suite pins the deprecated entry points to the unified Do API:
// two identically seeded hubs run the same document matrix, one through the
// old wrappers and one through Do/DoAsync, and every payload that comes out
// must be identical — byte-identical for wire documents.

// compatMatrix is one partner/protocol row of the format matrix.
type compatMatrix struct {
	party    doc.Party
	protocol formats.Format
}

func compatRows() []compatMatrix {
	return []compatMatrix{
		{tp1, formats.EDI},
		{tp2, formats.RosettaNet},
		{tp3, formats.OAGIS},
	}
}

// compatHubs builds two hubs with identical deterministic state: the
// Figure 14 model plus the Figure 15 OAGIS partner, invoicing enabled.
func compatHubs(t *testing.T) (*Hub, *Hub) {
	t.Helper()
	mk := func() *Hub {
		h := newFig14Hub(t)
		if _, err := h.AddPartner(Figure15Partner()); err != nil {
			t.Fatal(err)
		}
		if _, err := h.EnableInvoicing(); err != nil {
			t.Fatal(err)
		}
		return h
	}
	return mk(), mk()
}

// TestCompatRoundTripMatchesDo: the deprecated RoundTrip and a DocPO Do
// return the same acknowledgment for every protocol in the matrix.
func TestCompatRoundTripMatchesDo(t *testing.T) {
	oldHub, newHub := compatHubs(t)
	ctx := context.Background()
	for _, row := range compatRows() {
		gOld, gNew := doc.NewGenerator(11), doc.NewGenerator(11)
		poOld, poNew := gOld.PO(row.party, seller), gNew.PO(row.party, seller)

		poaOld, exOld, err := oldHub.RoundTrip(ctx, poOld)
		if err != nil {
			t.Fatalf("%s RoundTrip: %v", row.party.ID, err)
		}
		res, err := newHub.Do(ctx, Request{Kind: DocPO, PO: poNew})
		if err != nil {
			t.Fatalf("%s Do: %v", row.party.ID, err)
		}
		if !reflect.DeepEqual(poaOld, res.POA) {
			t.Fatalf("%s: POA diverged\nold %+v\nnew %+v", row.party.ID, poaOld, res.POA)
		}
		if exOld.ID != res.Exchange.ID || exOld.Protocol != res.Exchange.Protocol {
			t.Fatalf("%s: exchange records diverged: %s/%s vs %s/%s",
				row.party.ID, exOld.ID, exOld.Protocol, res.Exchange.ID, res.Exchange.Protocol)
		}
	}
}

// TestCompatWireMatchesDo: the deprecated ProcessInboundPO and a DocWirePO
// Do emit byte-identical outbound wire documents for every protocol.
func TestCompatWireMatchesDo(t *testing.T) {
	oldHub, newHub := compatHubs(t)
	ctx := context.Background()
	reg := &transform.Registry{}
	transform.RegisterAll(reg)
	codecs := NewCodecRegistry()
	for _, row := range compatRows() {
		g := doc.NewGenerator(13)
		po := g.POWithAmount(row.party, seller, 100)
		native, err := reg.FromNormalized(row.protocol, doc.TypePO, po)
		if err != nil {
			t.Fatal(err)
		}
		codec, err := codecs.Lookup(row.protocol, doc.TypePO)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := codec.Encode(native)
		if err != nil {
			t.Fatal(err)
		}

		outOld, _, err := oldHub.ProcessInboundPO(ctx, row.protocol, wire)
		if err != nil {
			t.Fatalf("%s ProcessInboundPO: %v", row.party.ID, err)
		}
		res, err := newHub.Do(ctx, Request{Kind: DocWirePO, Protocol: row.protocol, Wire: wire})
		if err != nil {
			t.Fatalf("%s Do: %v", row.party.ID, err)
		}
		if !bytes.Equal(outOld, res.Wire) {
			t.Fatalf("%s: outbound wire diverged\nold %q\nnew %q", row.party.ID, outOld, res.Wire)
		}
	}
}

// TestCompatInvoiceMatchesDo: the deprecated SendInvoice and a DocInvoice
// Do emit byte-identical invoice wire documents.
func TestCompatInvoiceMatchesDo(t *testing.T) {
	oldHub, newHub := compatHubs(t)
	ctx := context.Background()
	for _, row := range compatRows() {
		gOld, gNew := doc.NewGenerator(17), doc.NewGenerator(17)
		poOld, poNew := gOld.PO(row.party, seller), gNew.PO(row.party, seller)
		if _, _, err := oldHub.RoundTrip(ctx, poOld); err != nil {
			t.Fatal(err)
		}
		if _, err := newHub.Do(ctx, Request{Kind: DocPO, PO: poNew}); err != nil {
			t.Fatal(err)
		}

		wireOld, _, err := oldHub.SendInvoice(ctx, row.party.ID, poOld.ID)
		if err != nil {
			t.Fatalf("%s SendInvoice: %v", row.party.ID, err)
		}
		res, err := newHub.Do(ctx, Request{Kind: DocInvoice, PartnerID: row.party.ID, POID: poNew.ID})
		if err != nil {
			t.Fatalf("%s Do: %v", row.party.ID, err)
		}
		if !bytes.Equal(wireOld, res.Wire) {
			t.Fatalf("%s: invoice wire diverged\nold %q\nnew %q", row.party.ID, wireOld, res.Wire)
		}
	}
}

// TestCompatAsyncWrappersMatchDoAsync: the deprecated Submit/SubmitWire/
// SubmitInvoice futures resolve to the same payloads as DoAsync requests on
// an identically seeded hub.
func TestCompatAsyncWrappersMatchDoAsync(t *testing.T) {
	oldHub, newHub := compatHubs(t)
	defer oldHub.StopWorkers()
	defer newHub.StopWorkers()
	ctx := context.Background()

	gOld, gNew := doc.NewGenerator(19), doc.NewGenerator(19)
	poOld, poNew := gOld.PO(tp1, seller), gNew.PO(tp1, seller)

	futOld, err := oldHub.Submit(ctx, poOld)
	if err != nil {
		t.Fatal(err)
	}
	futNew, err := newHub.DoAsync(ctx, Request{Kind: DocPO, PO: poNew})
	if err != nil {
		t.Fatal(err)
	}
	resOld, resNew := futOld.Result(ctx), futNew.Result(ctx)
	if resOld.Err != nil || resNew.Err != nil {
		t.Fatalf("errs: %v vs %v", resOld.Err, resNew.Err)
	}
	if !reflect.DeepEqual(resOld.POA, resNew.POA) {
		t.Fatalf("POA diverged\nold %+v\nnew %+v", resOld.POA, resNew.POA)
	}

	ifutOld, err := oldHub.SubmitInvoice(ctx, tp1.ID, poOld.ID)
	if err != nil {
		t.Fatal(err)
	}
	ifutNew, err := newHub.DoAsync(ctx, Request{Kind: DocInvoice, PartnerID: tp1.ID, POID: poNew.ID})
	if err != nil {
		t.Fatal(err)
	}
	iresOld, iresNew := ifutOld.Result(ctx), ifutNew.Result(ctx)
	if iresOld.Err != nil || iresNew.Err != nil {
		t.Fatalf("invoice errs: %v vs %v", iresOld.Err, iresNew.Err)
	}
	if !bytes.Equal(iresOld.Wire, iresNew.Wire) {
		t.Fatalf("invoice wire diverged\nold %q\nnew %q", iresOld.Wire, iresNew.Wire)
	}
}

// TestRequestValidation pins the Request normalization rules.
func TestRequestValidation(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	for _, req := range []Request{
		{},                               // nothing to infer
		{Kind: DocPO},                    // missing PO
		{Kind: DocWirePO},                // missing protocol+wire
		{Kind: DocInvoice},               // missing partner+poid
		{Kind: DocKind("bogus")},         // unknown kind
		{Kind: DocInvoice, POID: "PO-1"}, // missing partner
	} {
		if _, err := h.Do(ctx, req); !errors.Is(err, ErrInvalidRequest) {
			t.Fatalf("req %+v: err %v, want ErrInvalidRequest", req, err)
		}
	}
	// Kind inference from the populated field.
	g := doc.NewGenerator(3)
	res, err := h.Do(ctx, Request{PO: g.PO(tp1, seller)})
	if err != nil {
		t.Fatal(err)
	}
	if res.POA == nil {
		t.Fatal("inferred DocPO returned no POA")
	}
}
