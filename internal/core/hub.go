package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/cfgstore"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
	"repro/internal/formats/oagis"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/rosettanet"
	"repro/internal/formats/sapidoc"
	"repro/internal/health"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/transform"
	"repro/internal/wf"
	"repro/internal/wfstore"
)

// Exchange is the runtime state of one inbound message's journey through
// the process chain: one instance each of the public process, the binding,
// the private process and the application binding, plus the outbound
// result.
type Exchange struct {
	ID       string
	Partner  TradingPartner
	Protocol formats.Format
	Backend  string
	// Flow is the business flow the exchange belongs to (PO round trip or
	// outbound invoice).
	Flow obs.Flow

	PublicID  string
	BindingID string
	PrivateID string
	AppID     string

	// Outbound holds the native response document captured at the public
	// process's send step.
	Outbound any
	// Signals holds protocol-level acknowledgment documents (e.g. EDI 997
	// functional acks) the public process emitted before the response.
	Signals []any

	// queue holds this exchange's pending routing hops. Queues are
	// per-exchange so that a hop is only executed by the goroutine driving
	// this exchange, strictly after the engine call that enqueued it
	// returned — hops of concurrent exchanges never interleave within one
	// instance.
	queue []routeTask

	// route is the partner's cached binding resolution, captured at
	// admission so the exchange never re-derives type names per hop.
	route resolvedRoute

	// resubmit marks a dead-letter replay: its app binding tolerates the
	// backend's duplicate-order rejection.
	resubmit bool

	// journaled marks an exchange whose admission was write-ahead-logged;
	// its dead letter survives a restart through the journal.
	journaled bool

	// deadLettered records that the exchange was parked on the dead-letter
	// queue. Set by the goroutine driving the exchange before its result
	// resolves; journalComplete classifies the terminal outcome by it.
	deadLettered bool

	// retry is the per-call retry policy override (Request.Retry), nil to
	// use the hub's configured policies.
	retry *RetryPolicy

	// cfg is the admission-time config snapshot (epoch + active artifact
	// versions): every stage of this exchange resolves its artifact version
	// from this one snapshot, so hot-swaps concurrent with the exchange are
	// invisible to it. Immutable after newExchange.
	cfg cfgstore.Snapshot

	// canary is the partner's canary run at admission time (nil if none);
	// canaryArm marks this exchange as routed to the candidate version.
	canary    *canaryRun
	canaryArm bool
}

// ConfigEpoch returns the config epoch the exchange was admitted under.
func (ex *Exchange) ConfigEpoch() int64 { return ex.cfg.Epoch }

// CanaryArm reports whether the exchange rode a canary candidate version.
func (ex *Exchange) CanaryArm() bool { return ex.canaryArm }

// routeTask is one queued hop between process instances.
type routeTask struct {
	exchangeID string
	port       string
	payload    any
}

// Hub is the integration engine runtime: it hosts the model's workflow
// types on one engine, evaluates business rules through the external
// registry, talks to the back-end systems, and routes documents through
// public process → binding → private process → application binding and
// back (Figure 14).
type Hub struct {
	Model  *Model
	Engine *wf.Engine
	// Systems maps backend name to the simulated ERP.
	Systems map[string]backend.System

	reg    *transform.Registry
	codecs *formats.Registry

	mu        sync.Mutex
	exchanges map[string]*Exchange
	exchSeq   int

	// Observability: every step execution, routing hop and exchange
	// lifecycle transition is emitted on the bus; metrics, collector,
	// counters and the scheduler gauges are the hub's always-attached
	// derived views.
	bus          *obs.Bus
	metrics      *obs.Metrics
	collector    *obs.Collector
	counters     *obs.ExchangeCounters
	schedMetrics *obs.SchedMetrics
	planMetrics  *obs.PlanMetrics

	// Sharded scheduler for asynchronous submission (see sched.go and
	// submit.go). schedCfg holds the NewHub option values the scheduler is
	// lazily started with.
	schedMu     sync.Mutex
	sched       *scheduler
	schedClosed bool
	schedCfg    hubConfig

	// Binding-resolution cache (see exchange.go): partner ID → resolved
	// route, invalidated wholesale on deploy-time changes.
	routeMu sync.RWMutex
	routes  map[string]resolvedRoute

	// appHandlersFor registers the app-binding handlers for one backend;
	// kept so the change manager can wire backends added after startup.
	appHandlersFor func(backendName string)
	handlerReg     *wf.Handlers

	// Reliability layer (see retry.go): per-binding retry policies and the
	// dead-letter queue of exchanges that exhausted theirs.
	retryMu       sync.RWMutex
	retryPolicies map[string]RetryPolicy
	defaultRetry  RetryPolicy
	dlqMu         sync.Mutex
	dlq           []DeadLetter

	// Partner health tracking (see health.go in this package and
	// internal/health): nil unless the hub was built WithHealth. The
	// tracker's breakers gate admission in Do/DoAsync; healthMetrics
	// derives per-partner gauges from the KindHealth events; shed counts
	// submissions dropped by the adaptive shedder for Drain's summary.
	health        *health.Tracker
	healthMetrics *obs.HealthMetrics
	shed          atomic.Int64

	// Durability layer (see journal.go in this package and
	// internal/journal): nil unless the hub was built WithJournal. jrnMu
	// orders journal appends and guards the live compaction index
	// (jrnPending: admissions without a terminal outcome; jrnDead:
	// unresolved dead letters) plus jrnSeq, the admission-key sequence.
	// jrnStartup is the open-time replay snapshot, consumed once by
	// Recover. Lock order: h.mu is never taken inside jrnMu.
	// jrnAttempts counts recovery replay attempts per pending admission
	// key (poison detection); jrnFS is the storage seam under the journal
	// (and TakeOverJournal's reads), nil meaning the real filesystem.
	jrn             *journal.Journal
	jrnFS           journal.FS
	jrnMu           sync.Mutex
	jrnSeq          int
	jrnPending      map[string]*journalRequest
	jrnDead         map[string]journalOutcome
	jrnAttempts     map[string]int
	jrnStartup      *journalSnapshot
	recoveryMetrics *obs.RecoveryMetrics
	// dur is the storage-health state of the durability failure policy
	// (see durability.go).
	dur durability

	// dlqCap bounds the in-memory dead-letter queue (0 = unbounded).
	dlqCap int

	// Runtime change management (see config.go): cfg is the versioned
	// config store every admission snapshots; configMetrics derives the
	// change gauges from KindConfig events; canaryMu guards the per-partner
	// canary runs. Lock order: canaryMu is never taken inside h.mu or jrnMu.
	cfg           *cfgstore.Store
	configMetrics *obs.ConfigMetrics
	canaryPolicy  cfgstore.CanaryPolicy
	canaryMu      sync.Mutex
	canaries      map[string]*canaryRun
	// swapMu serializes hot-swap/canary/rollback operations (they mutate
	// model maps and assign version numbers). Never taken inside canaryMu.
	swapMu sync.Mutex

	// Frozen non-workflow artifact versions: when a rule set or transform is
	// hot-swapped, the displaced value is kept here under its version so
	// pinned exchanges keep evaluating exactly what they admitted under.
	frozenMu     sync.RWMutex
	frozenRules  map[string]map[int]*rules.Set
	frozenXforms map[string]map[int]transform.Transformer

	// Federation (see federation.go): clusterFn is the registered provider
	// of StatusSnapshot's cluster section, set by the cluster node wrapping
	// this hub (nil on standalone hubs).
	clusterMu sync.Mutex
	clusterFn func() *ClusterStatus
}

// HubStats counts the hub's activity since startup. It is a compatibility
// view derived from the exchange counters on the event bus.
type HubStats struct {
	// Exchanges counts inbound PO exchanges; Invoices counts outbound
	// one-way invoice exchanges.
	Exchanges int
	Invoices  int
	// Failed counts exchanges of either kind that ended in error.
	Failed int
	// PerPartner counts exchanges by trading partner.
	PerPartner map[string]int
}

// Stats returns a snapshot of the hub's activity counters, derived from the
// exchange lifecycle events.
//
// Deprecated: use Status; HubStats is a flattened subset of
// StatusSnapshot.Exchanges.
func (h *Hub) Stats() HubStats {
	s := h.counters.Snapshot()
	st := HubStats{
		Exchanges:  int(s.ByFlow[obs.FlowPO]),
		Invoices:   int(s.ByFlow[obs.FlowInvoice]),
		Failed:     int(s.Failed),
		PerPartner: make(map[string]int, len(s.ByPartner)),
	}
	for k, v := range s.ByPartner {
		st.PerPartner[k] = int(v)
	}
	return st
}

// Bus exposes the hub's event bus; attach sinks to observe the pipeline.
func (h *Hub) Bus() *obs.Bus { return h.bus }

// Metrics exposes the per-stage latency histograms and counters.
func (h *Hub) Metrics() *obs.Metrics { return h.metrics }

// Counters exposes the exchange lifecycle counters.
//
// Deprecated: use Status().Exchanges.
func (h *Hub) Counters() obs.CountersSnapshot { return h.counters.Snapshot() }

// Events returns the retained event history of one exchange in emission
// order.
func (h *Hub) Events(exchangeID string) []obs.Event { return h.collector.Events(exchangeID) }

// Trace renders an exchange's routing journey as human-readable hop
// strings — the structured replacement for the old Exchange.Trace journal.
func (h *Hub) Trace(exchangeID string) []string { return h.collector.Trace(exchangeID) }

// stageOf maps a workflow type name ("public:EDI", "binding-inv:RosettaNet",
// "private:order-mgmt", "appbinding:SAP") to its pipeline stage.
func stageOf(typeName string) obs.Stage {
	prefix := typeName
	if i := strings.Index(typeName, ":"); i >= 0 {
		prefix = typeName[:i]
	}
	switch prefix {
	case "public", "public-inv":
		return obs.StagePublic
	case "binding", "binding-inv":
		return obs.StageBinding
	case "private":
		return obs.StagePrivate
	case "appbinding", "appbinding-inv":
		return obs.StageApp
	}
	return obs.Stage(prefix)
}

// NewCodecRegistry builds a codec registry covering every concrete format.
func NewCodecRegistry() *formats.Registry {
	r := &formats.Registry{}
	r.Register(edi.POCodec{})
	r.Register(edi.POACodec{})
	r.Register(edi.FACodec{})
	r.Register(rosettanet.POCodec{})
	r.Register(rosettanet.POACodec{})
	r.Register(oagis.POCodec{})
	r.Register(oagis.POACodec{})
	r.Register(sapidoc.POCodec{})
	r.Register(sapidoc.POACodec{})
	r.Register(oracleoif.POCodec{})
	r.Register(oracleoif.POACodec{})
	r.Register(edi.INVCodec{})
	r.Register(rosettanet.INVCodec{})
	r.Register(oagis.INVCodec{})
	r.Register(sapidoc.INVCodec{})
	r.Register(oracleoif.INVCodec{})
	return r
}

// NewHub deploys the model onto a fresh engine with simulated back ends.
// Options configure the sharded scheduler (WithShards, WithWorkersPerShard,
// WithQueueDepth), the default retry policy (WithRetryPolicy) and the event
// bus (WithBus); a hub built without options behaves like the former
// single-pool hub.
func NewHub(m *Model, opts ...HubOption) (*Hub, error) {
	cfg := hubConfig{
		shards:          DefaultShards,
		workersPerShard: DefaultWorkers,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	h := &Hub{
		Model:           m,
		Systems:         map[string]backend.System{},
		reg:             &transform.Registry{},
		codecs:          NewCodecRegistry(),
		exchanges:       map[string]*Exchange{},
		bus:             cfg.bus,
		metrics:         obs.NewMetrics(),
		collector:       obs.NewCollector(0),
		counters:        obs.NewExchangeCounters(),
		schedMetrics:    obs.NewSchedMetrics(),
		planMetrics:     obs.NewPlanMetrics(),
		healthMetrics:   obs.NewHealthMetrics(),
		recoveryMetrics: obs.NewRecoveryMetrics(),
		configMetrics:   obs.NewConfigMetrics(),
		canaryPolicy:    cfg.canaryPolicy,
		canaries:        map[string]*canaryRun{},
		frozenRules:     map[string]map[int]*rules.Set{},
		frozenXforms:    map[string]map[int]transform.Transformer{},
		schedCfg:        cfg,
		dlqCap:          cfg.dlqCap,
		exchSeq:         cfg.exchIDBase,
	}
	// The versioned config store must exist before the journal is opened:
	// initJournal replays config records into it.
	h.cfg = cfgstore.New()
	if h.bus == nil {
		h.bus = obs.NewBus()
	}
	if cfg.defaultRetry != nil {
		h.defaultRetry = *cfg.defaultRetry
	}
	if cfg.health != nil {
		h.health = health.NewTracker(*cfg.health, func(partner string, from, to health.State) {
			h.bus.Emit(obs.Event{
				Partner: partner,
				Kind:    obs.KindHealth,
				Stage:   obs.StageHealth,
				Step:    breakerStep(to),
			})
		})
	}
	h.bus.Attach(h.metrics)
	h.bus.Attach(h.collector)
	h.bus.Attach(h.counters)
	h.bus.Attach(h.schedMetrics)
	h.bus.Attach(h.planMetrics)
	h.bus.Attach(h.healthMetrics)
	h.bus.Attach(h.recoveryMetrics)
	h.bus.Attach(h.configMetrics)
	h.jrnFS = cfg.journalFS
	h.dur.policy = cfg.jrnPolicy
	if h.dur.policy == "" {
		h.dur.policy = FailStop
	}
	h.dur.probeInterval = cfg.probeInterval
	if h.dur.probeInterval <= 0 {
		h.dur.probeInterval = DefaultJournalProbeInterval
	}
	if cfg.journalPath != "" {
		j, err := journal.Open(cfg.journalPath, journal.Options{
			Fsync:      cfg.fsync,
			FS:         cfg.journalFS,
			AutoRepair: cfg.journalScrub,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open journal: %w", err)
		}
		h.jrn = j
		h.initJournal()
	}
	transform.RegisterAll(h.reg)
	for _, b := range m.Backends {
		sys, err := newSystem(b)
		if err != nil {
			return nil, err
		}
		h.Systems[b.Name] = sys
	}
	handlers := wf.NewHandlers()
	h.registerHandlers(handlers)
	// The engine compiles every deployed type against the hub's routing
	// fabric (checkPort) so broken models are rejected before any exchange
	// runs; WithStepParallelism/WithLegacyWorkflowInterpreter pass through
	// to the plan interpreter.
	engOpts := []wf.EngineOption{wf.WithPortChecker(h.checkPort)}
	if cfg.stepParallelism > 1 {
		engOpts = append(engOpts, wf.WithStepParallelism(cfg.stepParallelism))
	}
	if cfg.legacyInterp {
		engOpts = append(engOpts, wf.WithLegacyInterpreter())
	}
	h.Engine = wf.NewEngine("hub", wfstore.NewMemStore(), handlers, h.portFunc, engOpts...)
	// Every compilation — eager at deploy, lazy on first execution of a
	// store-loaded type — surfaces as a plan event keyed by the type.
	h.Engine.SetPlanObserver(func(t *wf.TypeDef, p *wf.Plan, elapsed time.Duration, err error) {
		step := obs.StepCompiled
		if err != nil {
			step = obs.StepRejected
		}
		h.bus.Emit(obs.Event{
			ExchangeID: t.Key(),
			Kind:       obs.KindPlan,
			Stage:      obs.StagePlan,
			Step:       step,
			Elapsed:    elapsed,
			Err:        err,
		})
	})
	// Every step execution anywhere in the chain surfaces as a step event
	// attributed to its exchange and pipeline stage.
	h.Engine.SetStepObserver(func(in *wf.Instance, s *wf.StepDef, elapsed time.Duration, err error) {
		exID, _ := in.Data["exchange"].(string)
		partner, _ := in.Data["source"].(string)
		h.bus.Emit(obs.Event{
			ExchangeID: exID,
			Partner:    partner,
			Kind:       obs.KindStep,
			Stage:      stageOf(in.Type),
			Step:       s.Name,
			Elapsed:    elapsed,
			Err:        err,
		})
	})
	// Transient step failures are retried under the binding's RetryPolicy
	// (see retry.go); without configured policies the decider retries
	// nothing beyond each step's own Retries budget.
	h.Engine.SetRetryDecider(h.retryDecider)
	for _, t := range m.AllTypes() {
		if err := h.deployType(t); err != nil {
			return nil, err
		}
	}
	// Rule sets and transform programs join version management at v1 so
	// exchanges pin them like process artifacts. registerArtifact skips
	// versions already restored from the journal on a restart.
	for _, set := range m.Rules.SetNames() {
		if _, err := h.registerArtifact(cfgstore.ClassRules, set, 1, "seed", false); err != nil {
			return nil, err
		}
	}
	for _, name := range h.reg.Keys() {
		if _, err := h.registerArtifact(cfgstore.ClassTransform, name, 1, "seed", false); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func newSystem(b Backend) (backend.System, error) {
	switch b.Format {
	case formats.SAPIDoc:
		return backend.NewSAP(b.Name, nil), nil
	case formats.OracleOIF:
		return backend.NewOracle(b.Name, nil), nil
	}
	return nil, fmt.Errorf("core: backend format %s is not executable", b.Format)
}

// DeployBackend adds a backend system created after hub construction (used
// by the change manager when a backend is added at runtime).
func (h *Hub) DeployBackend(b Backend) error {
	sys, err := newSystem(b)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.Systems[b.Name] = sys
	h.mu.Unlock()
	ab, ok := h.Model.AppBindings[b.Name]
	if !ok {
		return fmt.Errorf("core: model has no app binding for %q", b.Name)
	}
	h.appHandlersFor(b.Name)
	h.invalidateRoutes()
	return h.deployType(ab)
}

// registerHandlers registers the generic handler set. Note what is NOT
// here: no per-partner logic. Transform handlers are parameterized per
// protocol and per backend because transformations belong to bindings;
// rule evaluation goes through the external registry.
func (h *Hub) registerHandlers(reg *wf.Handlers) {
	for _, p := range []formats.Format{formats.EDI, formats.RosettaNet, formats.OAGIS} {
		p := p
		reg.Register("bind-xform-in:"+string(p), func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			nd, err := h.applyXform(in, p, formats.Normalized, doc.TypePO, in.Document())
			if err != nil {
				return err
			}
			in.SetDocument(nd)
			return nil
		})
		reg.Register("bind-xform-out:"+string(p), func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			native, err := h.applyXform(in, formats.Normalized, p, doc.TypePOA, in.Document())
			if err != nil {
				return err
			}
			in.SetDocument(native)
			return nil
		})
		reg.Register("bind-inv-xform:"+string(p), func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			native, err := h.applyXform(in, formats.Normalized, p, doc.TypeINV, in.Document())
			if err != nil {
				return err
			}
			in.SetDocument(native)
			return nil
		})
	}
	reg.Register("rule:"+ApprovalRuleSet, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		source, _ := in.Data["source"].(string)
		target, _ := in.Data["target"].(string)
		decision, err := h.evalRules(in, ApprovalRuleSet, source, target, in.Document())
		if err != nil {
			return err
		}
		in.Data["needsApproval"] = decision.Result
		in.Data["ruleApplied"] = decision.Rule
		return nil
	})
	reg.Register("rule:"+InvoiceReviewRuleSet, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		source, _ := in.Data["source"].(string)
		target, _ := in.Data["target"].(string)
		decision, err := h.evalRules(in, InvoiceReviewRuleSet, source, target, in.Document())
		if err != nil {
			return err
		}
		in.Data["reviewNeeded"] = decision.Result
		in.Data["ruleApplied"] = decision.Rule
		return nil
	})
	reg.Register("review", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		in.Data["reviewed"] = true
		return nil
	})
	reg.Register("approve", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		in.Data["approved"] = true
		return nil
	})
	reg.Register("audit", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		in.Data["audited"] = true
		return nil
	})
	reg.Register("transport-ack", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		return nil // acknowledged at the messaging layer; modeled as a step
	})
	reg.Register("produce-997", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		po, ok := in.Document().(*edi.PO850)
		if !ok {
			return fmt.Errorf("core: produce-997 expects an *edi.PO850, got %T", in.Document())
		}
		in.Data["signal"] = &edi.FA997{
			SenderID:   po.ReceiverID,
			ReceiverID: po.SenderID,
			Control:    po.Control + 1,
			AckNumber:  fmt.Sprintf("997-%09d", po.Control),
			RefGroupID: "PO",
			RefControl: po.Control,
			Accepted:   true,
			Date:       po.Date,
		}
		return nil
	})
	h.registerAppHandlers(reg)
}

// registerAppHandlers wires the application-binding handlers. They resolve
// the backend system at execution time so backends added later work too.
func (h *Hub) registerAppHandlers(reg *wf.Handlers) {
	appHandlersFor := func(bName string) {
		// Every handler of the binding runs each attempt under the
		// backend's PerAttemptTimeout (when a policy configures one).
		register := func(name string, fn wf.Handler) { reg.Register(name, h.withAttemptTimeout(bName, fn)) }
		register("app-xform-in:"+bName, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			b, ok := h.Model.BackendByName(bName)
			if !ok {
				return fmt.Errorf("core: unknown backend %q", bName)
			}
			po, ok := in.Document().(*doc.PurchaseOrder)
			if !ok {
				return fmt.Errorf("core: app binding expects a normalized PO, got %T", in.Document())
			}
			in.Data["poid"] = po.ID
			native, err := h.applyXform(in, formats.Normalized, b.Format, doc.TypePO, po)
			if err != nil {
				return err
			}
			in.SetDocument(native)
			return nil
		})
		register("app-store:"+bName, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			b, _ := h.Model.BackendByName(bName)
			codec, err := h.codecs.Lookup(b.Format, doc.TypePO)
			if err != nil {
				return err
			}
			wire, err := codec.Encode(in.Document())
			if err != nil {
				return err
			}
			sys, ok := h.system(bName)
			if !ok {
				return fmt.Errorf("core: no system deployed for backend %q", bName)
			}
			// A resubmitted dead letter may have stored the order before
			// failing downstream; the backend's duplicate elimination then
			// satisfies this step without a second mutation.
			return tolerateDuplicate(in, sys.Submit(ctx, wire))
		})
		register("app-extract:"+bName, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			sys, ok := h.system(bName)
			if !ok {
				return fmt.Errorf("core: no system deployed for backend %q", bName)
			}
			poID, _ := in.Data["poid"].(string)
			if poID == "" {
				return fmt.Errorf("core: app binding lost the order identifier")
			}
			if _, err := sys.Process(ctx); err != nil {
				return err
			}
			// Extract this exchange's acknowledgment specifically:
			// concurrent exchanges share the back end.
			wire, ok2, err := sys.ExtractByPO(ctx, poID)
			if err != nil {
				return err
			}
			if !ok2 {
				return fmt.Errorf("core: backend %s produced no acknowledgment for %s", bName, poID)
			}
			b, _ := h.Model.BackendByName(bName)
			codec, err := h.codecs.Lookup(b.Format, doc.TypePOA)
			if err != nil {
				return err
			}
			native, err := codec.Decode(wire)
			if err != nil {
				return err
			}
			in.SetDocument(native)
			return nil
		})
		register("app-xform-out:"+bName, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			b, _ := h.Model.BackendByName(bName)
			nd, err := h.applyXform(in, b.Format, formats.Normalized, doc.TypePOA, in.Document())
			if err != nil {
				return err
			}
			in.SetDocument(nd)
			return nil
		})
		register("app-inv-extract:"+bName, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			sys, ok := h.system(bName)
			if !ok {
				return fmt.Errorf("core: no system deployed for backend %q", bName)
			}
			poID, _ := in.Data["poid"].(string)
			if poID == "" {
				return fmt.Errorf("core: invoice extraction requires the order identifier")
			}
			wire, ok2, err := sys.ExtractInvoiceByPO(ctx, poID)
			if err != nil {
				return err
			}
			if !ok2 {
				return fmt.Errorf("core: backend %s has no billing document for %s", bName, poID)
			}
			b, _ := h.Model.BackendByName(bName)
			codec, err := h.codecs.Lookup(b.Format, doc.TypeINV)
			if err != nil {
				return err
			}
			native, err := codec.Decode(wire)
			if err != nil {
				return err
			}
			in.SetDocument(native)
			return nil
		})
		register("app-inv-xform:"+bName, func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
			b, _ := h.Model.BackendByName(bName)
			nd, err := h.applyXform(in, b.Format, formats.Normalized, doc.TypeINV, in.Document())
			if err != nil {
				return err
			}
			in.SetDocument(nd)
			return nil
		})
	}
	for _, b := range h.Model.Backends {
		appHandlersFor(b.Name)
	}
	// Allow later-added backends: expose for the change manager.
	h.appHandlersFor = appHandlersFor
	h.handlerReg = reg
}

// portFunc enqueues routing work onto the owning exchange's queue; the
// exchange's pump drains it between engine calls (never re-entering an
// instance that is still advancing).
func (h *Hub) portFunc(ctx context.Context, in *wf.Instance, s *wf.StepDef, payload any) error {
	exID, _ := in.Data["exchange"].(string)
	if exID == "" {
		return fmt.Errorf("core: instance %s has no exchange context", in.ID)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ex, ok := h.exchanges[exID]
	if !ok {
		return fmt.Errorf("core: instance %s references unknown exchange %q", in.ID, exID)
	}
	ex.queue = append(ex.queue, routeTask{exchangeID: exID, port: s.Port, payload: payload})
	return nil
}

// system looks a backend system up under the hub lock (backends can be
// deployed while exchanges run).
func (h *Hub) system(name string) (backend.System, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sys, ok := h.Systems[name]
	return sys, ok
}

func (h *Hub) dequeue(ex *Exchange) (routeTask, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(ex.queue) == 0 {
		return routeTask{}, false
	}
	t := ex.queue[0]
	ex.queue = ex.queue[1:]
	return t, true
}
