package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/wf"
)

// The invoice flow is the paper's "one-way messages" pattern running in
// the outbound direction: the back end bills a fulfilled order, the
// invoice travels application binding → private process → binding →
// public process → partner, and no response comes back. Enabling it is
// Section 4.6's "adding a new private process" case: new artifacts are
// added (one private process, one binding and one public process per
// protocol, one application binding per back end, one business rule per
// partner) and nothing existing is modified.

// Invoice flow port names.
const (
	PortInvAppOut  = "inv.app.out"
	PortInvPrivIn  = "inv.priv.in"
	PortInvPrivOut = "inv.priv.out"
	PortInvBindIn  = "inv.bind.in"
	PortInvBindOut = "inv.bind.out"
	PortInvPubIn   = "inv.pub.in"
)

// Invoice flow type names.
func InvoicePublicProcessName(p formats.Format) string { return "public-inv:" + string(p) }
func InvoiceBindingName(p formats.Format) string       { return "binding-inv:" + string(p) }
func InvoiceAppBindingName(backend string) string      { return "appbinding-inv:" + backend }

// InvoicePrivateProcessName is the invoice-dispatch private process: like
// the PO private process it is free of partner/protocol/backend
// identifiers.
const InvoicePrivateProcessName = "private:invoice-dispatch"

// InvoiceReviewRuleSet is the rule set the invoice private process binds to.
const InvoiceReviewRuleSet = "check-invoice-review"

// BuildInvoiceAppBinding generates the application binding that extracts a
// billing document from the back end and normalizes it.
func BuildInvoiceAppBinding(b Backend) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: InvoiceAppBindingName(b.Name), Version: 1,
		Steps: []wf.StepDef{
			{Name: fmt.Sprintf("Extract %s Invoice", b.Name), Kind: wf.StepTask, Handler: "app-inv-extract:" + b.Name},
			{Name: "Transform to normalized Invoice", Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "app-inv-xform:" + b.Name},
			{Name: "To private", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortInvAppOut},
		},
		Arcs: []wf.Arc{
			{From: fmt.Sprintf("Extract %s Invoice", b.Name), To: "Transform to normalized Invoice"},
			{From: "Transform to normalized Invoice", To: "To private"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildInvoicePrivateProcess generates the invoice-dispatch private
// process: receive the normalized invoice, consult the external review
// rule, optionally review, pass on.
func BuildInvoicePrivateProcess() (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: InvoicePrivateProcessName, Version: 1,
		Steps: []wf.StepDef{
			{Name: "From application", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortInvPrivIn, DataKey: "document"},
			{Name: "Check invoice review", Kind: wf.StepTask, Handler: "rule:" + InvoiceReviewRuleSet},
			{Name: "Review invoice", Kind: wf.StepTask, Handler: "review"},
			{Name: "To binding", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortInvPrivOut, Join: wf.JoinAny},
		},
		Arcs: []wf.Arc{
			{From: "From application", To: "Check invoice review"},
			{From: "Check invoice review", To: "Review invoice", Condition: "reviewNeeded == true"},
			{From: "Check invoice review", To: "To binding", Condition: "reviewNeeded == false"},
			{From: "Review invoice", To: "To binding"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildInvoiceBinding generates the protocol binding of the invoice flow:
// normalized → protocol-native transformation.
func BuildInvoiceBinding(p formats.Format) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: InvoiceBindingName(p), Version: 1,
		Steps: []wf.StepDef{
			{Name: "From private", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortInvBindIn, DataKey: "document"},
			{Name: fmt.Sprintf("Transform to %s Invoice", p), Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "bind-inv-xform:" + string(p)},
			{Name: "To public", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortInvBindOut},
		},
		Arcs: []wf.Arc{
			{From: "From private", To: fmt.Sprintf("Transform to %s Invoice", p)},
			{From: fmt.Sprintf("Transform to %s Invoice", p), To: "To public"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildInvoicePublicProcess generates the one-way public process: send the
// protocol-native invoice; no response step exists.
func BuildInvoicePublicProcess(p formats.Format) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: InvoicePublicProcessName(p), Version: 1,
		Steps: []wf.StepDef{
			{Name: "From binding", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortInvPubIn, DataKey: "document"},
			{Name: fmt.Sprintf("Send %s Invoice", p), Kind: wf.StepSend, Port: PortPublicOut, Message: "Invoice"},
		},
		Arcs: []wf.Arc{
			{From: "From binding", To: fmt.Sprintf("Send %s Invoice", p)},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// EnableInvoicing adds the invoice flow to the model: the Section 4.6
// "adding a new private process" change. Existing artifacts are untouched.
func (m *Model) EnableInvoicing() (*ChangeRecord, error) {
	if m.InvoicePrivate != nil {
		return nil, fmt.Errorf("core: invoicing already enabled")
	}
	rec := &ChangeRecord{Description: "enable invoice dispatch (new private process)", Local: true}
	priv, err := BuildInvoicePrivateProcess()
	if err != nil {
		return nil, err
	}
	m.InvoicePrivate = priv
	rec.TypesAdded = append(rec.TypesAdded, InvoicePrivateProcessName)
	m.InvoicePublic = map[formats.Format]*wf.TypeDef{}
	m.InvoiceBindings = map[formats.Format]*wf.TypeDef{}
	m.InvoiceAppBindings = map[string]*wf.TypeDef{}
	for _, p := range m.Protocols() {
		pub, err := BuildInvoicePublicProcess(p)
		if err != nil {
			return nil, err
		}
		bind, err := BuildInvoiceBinding(p)
		if err != nil {
			return nil, err
		}
		m.InvoicePublic[p] = pub
		m.InvoiceBindings[p] = bind
		rec.TypesAdded = append(rec.TypesAdded, pub.Name, bind.Name)
	}
	for _, b := range m.Backends {
		ab, err := BuildInvoiceAppBinding(b)
		if err != nil {
			return nil, err
		}
		m.InvoiceAppBindings[b.Name] = ab
		rec.TypesAdded = append(rec.TypesAdded, ab.Name)
	}
	// The new private process brings its business rules: one review rule
	// per partner, reusing the partner's threshold.
	set := m.Rules.Set(InvoiceReviewRuleSet)
	for _, p := range m.Partners {
		if err := set.Add(rules.Rule{
			Name:      fmt.Sprintf("invoice review %s→%s", p.ID, p.Backend),
			Source:    p.ID,
			Target:    p.Backend,
			DocType:   doc.TypeINV,
			Condition: fmt.Sprintf("document.amount >= %v", p.ApprovalThreshold),
		}); err != nil {
			return nil, err
		}
		rec.RulesAdded++
	}
	return rec, nil
}

// EnableInvoicing applies the model change and deploys the new types.
func (h *Hub) EnableInvoicing() (*ChangeRecord, error) {
	rec, err := h.Model.EnableInvoicing()
	if err != nil {
		return nil, err
	}
	h.invalidateRoutes()
	deploy := []*wf.TypeDef{h.Model.InvoicePrivate}
	for _, t := range h.Model.InvoicePublic {
		deploy = append(deploy, t)
	}
	for _, t := range h.Model.InvoiceBindings {
		deploy = append(deploy, t)
	}
	for _, t := range h.Model.InvoiceAppBindings {
		deploy = append(deploy, t)
	}
	for _, t := range deploy {
		if err := h.deployType(t); err != nil {
			return rec, err
		}
	}
	return rec, nil
}

// SendInvoice runs the outbound invoice flow for a fulfilled order: it
// extracts the billing document from the partner's back end, drives it
// through the invoice chain and returns the protocol-native wire bytes
// ready to transmit, plus the exchange record.
//
// Deprecated: use Do with a DocInvoice Request.
func (h *Hub) SendInvoice(ctx context.Context, partnerID, poID string) ([]byte, *Exchange, error) {
	return h.sendInvoice(ctx, partnerID, poID, exchangeOpts{})
}

// sendInvoice is SendInvoice plus the per-exchange options dead-letter
// replays and per-call overrides set; a failed invoice exchange is parked
// on the dead-letter queue keyed by its order identifier.
func (h *Hub) sendInvoice(ctx context.Context, partnerID, poID string, opts exchangeOpts) ([]byte, *Exchange, error) {
	if h.Model.InvoicePrivate == nil {
		return nil, nil, fmt.Errorf("core: invoicing is not enabled")
	}
	route, ok := h.resolveRoute(partnerID)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownPartner, partnerID)
	}
	opts.canaryKey = poID
	ex := h.newExchange(route, obs.FlowInvoice, opts)
	start := time.Now()
	h.emitLifecycle(ex, obs.StepStarted, 0, nil)
	outbound, err := h.runInvoice(ctx, ex, poID)
	err = wrapExchangeErr(ex, obs.StageExchange, "", err)
	h.emitLifecycle(ex, terminalStep(err), time.Since(start), err)
	h.recordCanaryOutcome(ex, err)
	if err != nil {
		h.deadLetter(ex, err, nil, poID)
		return nil, ex, err
	}
	codec, err := h.codecs.Lookup(route.partner.Protocol, doc.TypeINV)
	if err != nil {
		return nil, ex, err
	}
	wire, err := codec.Encode(outbound)
	if err != nil {
		return nil, ex, err
	}
	return wire, ex, nil
}

// runInvoice drives the outbound invoice chain of an already-created
// exchange and returns the protocol-native outbound document.
func (h *Hub) runInvoice(ctx context.Context, ex *Exchange, poID string) (any, error) {
	data := h.exchangeData(ex)
	data["poid"] = poID
	app, err := h.Engine.StartVersion(ctx, ex.route.invAppBinding, h.pinnedVersion(ex, ex.route.invAppBinding), data)
	if err != nil {
		return nil, err
	}
	ex.AppID = app.ID
	h.emitRoute(ex, "invoice flow started from application binding "+app.ID)
	if err := h.pump(ctx, ex); err != nil {
		return nil, err
	}
	h.mu.Lock()
	outbound := ex.Outbound
	h.mu.Unlock()
	if outbound == nil {
		return nil, fmt.Errorf("%w (invoice exchange %s)", ErrNoOutbound, ex.ID)
	}
	return outbound, nil
}
