package core

import (
	"time"

	"repro/internal/cfgstore"
	"repro/internal/health"
	"repro/internal/journal"
	"repro/internal/msg"
	"repro/internal/obs"
)

// Scheduler defaults. A hub constructed without options behaves like the
// former single worker pool: one shard whose worker count is chosen at
// StartWorkers/first-submission time.
const (
	// DefaultShards is the shard count when WithShards is not given.
	DefaultShards = 1
	// DefaultWorkers is the per-shard worker count when WithWorkersPerShard
	// is not given (and the historical default pool size).
	DefaultWorkers = 4
	// DefaultQueueDepthPerWorker sizes each shard's queue at a few jobs per
	// worker: enough to keep workers busy, small enough that submitters
	// feel backpressure.
	DefaultQueueDepthPerWorker = 4
)

// hubConfig collects the scheduler and observability knobs of NewHub.
type hubConfig struct {
	shards          int
	workersPerShard int
	queueDepth      int
	defaultRetry    *RetryPolicy
	bus             *obs.Bus
	health          *health.Config
	journalPath     string
	fsync           journal.FsyncPolicy
	journalFS       journal.FS
	journalScrub    bool
	jrnPolicy       JournalFailurePolicy
	probeInterval   time.Duration
	dlqCap          int
	stepParallelism int
	legacyInterp    bool
	canaryPolicy    cfgstore.CanaryPolicy
	exchIDBase      int
	// schedConfigured records that a scheduler topology option was given
	// explicitly, so compat entry points (ServeConcurrent's workers
	// argument) defer to it instead of imposing the single-pool shape.
	schedConfigured bool
}

// HubOption configures NewHub without growing its signature.
type HubOption func(*hubConfig)

// WithShards sets the scheduler's shard count (minimum 1). Exchanges hash
// by trading partner onto shards, so partners on different shards cannot
// stall each other.
func WithShards(n int) HubOption {
	return func(c *hubConfig) {
		if n >= 1 {
			c.shards = n
		}
		c.schedConfigured = true
	}
}

// WithWorkersPerShard sets how many workers drain each shard's queue
// (minimum 1).
func WithWorkersPerShard(n int) HubOption {
	return func(c *hubConfig) {
		if n >= 1 {
			c.workersPerShard = n
		}
		c.schedConfigured = true
	}
}

// WithQueueDepth bounds each shard's queue (minimum 1). Submitters block
// once a shard's queue is full — admission backpressure.
func WithQueueDepth(n int) HubOption {
	return func(c *hubConfig) {
		if n >= 1 {
			c.queueDepth = n
		}
		c.schedConfigured = true
	}
}

// WithRetryPolicy sets the hub's default retry policy (the policy scopes
// without their own resolve to), equivalent to SetDefaultRetryPolicy at
// construction time.
func WithRetryPolicy(p RetryPolicy) HubOption {
	return func(c *hubConfig) { c.defaultRetry = &p }
}

// WithBus makes the hub emit on an externally owned event bus instead of
// creating its own, so several hubs (or a test harness) can share one
// observer fabric.
func WithBus(b *obs.Bus) HubOption {
	return func(c *hubConfig) {
		if b != nil {
			c.bus = b
		}
	}
}

// WithHealth enables the partner health tracker: a sliding-window
// failure-rate circuit breaker per trading partner (see internal/health)
// consulted at admission. Open circuits fast-fail submissions into the
// dead-letter queue without consuming workers or retry attempts; degraded
// partners have their normal-priority work shed under shard-queue
// pressure. Hubs built without this option track nothing and admit
// everything (the pre-breaker behavior).
func WithHealth(cfg health.Config) HubOption {
	return func(c *hubConfig) { c.health = &cfg }
}

// WithJournal write-ahead-logs the hub's exchange lifecycle to the file at
// path (see internal/journal): every admission through Do/DoAsync is
// journaled before the scheduler sees it, terminal outcomes append
// completion records, and Recover replays the log after a restart —
// unfinished admissions re-run with duplicate tolerance, dead letters come
// back replayable via Resubmit. NewHub fails when the journal cannot be
// opened. The deprecated direct entry points (RoundTrip, ProcessInboundPO,
// SendInvoice) bypass admission and are not journaled.
func WithJournal(path string) HubOption {
	return func(c *hubConfig) { c.journalPath = path }
}

// WithFsyncPolicy selects the journal's durability level (default
// journal.FsyncBatched — group commit). Only meaningful WithJournal.
func WithFsyncPolicy(p journal.FsyncPolicy) HubOption {
	return func(c *hubConfig) { c.fsync = p }
}

// WithJournalFS threads a storage seam (journal.FS) under the hub's
// journal: every file operation of the write-ahead log goes through it.
// The chaos harness injects disk faults with journal.NewFaultFS; nil (the
// default) is the real filesystem. Only meaningful WithJournal.
func WithJournalFS(fs journal.FS) HubOption {
	return func(c *hubConfig) { c.journalFS = fs }
}

// WithJournalFailurePolicy selects what happens to admissions whose
// journal append fails: FailStop (the default) rejects them with
// ErrJournalUnavailable, FailDegraded keeps admitting non-durably while a
// background prober watches for the disk to heal and re-arms journaling
// on a fresh segment once it does. Only meaningful WithJournal.
func WithJournalFailurePolicy(p JournalFailurePolicy) HubOption {
	return func(c *hubConfig) { c.jrnPolicy = p }
}

// WithJournalProbeInterval tunes how often a degraded hub probes the disk
// for recovery (default DefaultJournalProbeInterval). Only meaningful
// with WithJournalFailurePolicy(FailDegraded).
func WithJournalProbeInterval(d time.Duration) HubOption {
	return func(c *hubConfig) {
		if d > 0 {
			c.probeInterval = d
		}
	}
}

// WithJournalScrub runs a scrub-and-repair pass before the journal's
// open-time replay: mid-file corrupt regions (bit rot under valid
// records) are quarantined into the journal's .quarantine sidecar and
// replay proceeds past them, instead of the default torn-tail semantics
// that would truncate everything after the first bad frame. Only
// meaningful WithJournal.
func WithJournalScrub() HubOption {
	return func(c *hubConfig) { c.journalScrub = true }
}

// WithDLQCap bounds the in-memory dead-letter queue at n entries (0, the
// default, is unbounded). When the queue is full, a hub with a journal
// spills its oldest journaled entry to journal-only retention (a later
// Recover restores it); a hub without one rejects the incoming entry.
// Either way a KindHealth dlq-evict event feeds HealthMetrics.
func WithDLQCap(n int) HubOption {
	return func(c *hubConfig) {
		if n >= 0 {
			c.dlqCap = n
		}
	}
}

// WithStepParallelism lets the workflow engine execute independent ready
// steps of one instance concurrently, up to n at a time (minimum 1, the
// default). Parallelism applies within a single advance — two sends on
// disjoint branches go out together — and is safe only because compiled
// plans know each step's declared reads/writes. n == 1 preserves the exact
// legacy step order.
func WithStepParallelism(n int) HubOption {
	return func(c *hubConfig) {
		if n >= 1 {
			c.stepParallelism = n
		}
	}
}

// WithLegacyWorkflowInterpreter makes the hub's engine interpret TypeDefs
// directly instead of executing compiled plans. Deploy-time plan validation
// still runs (broken models are still rejected); only the execution path
// reverts. Kept as an escape hatch and as the oracle for differential
// tests.
func WithLegacyWorkflowInterpreter() HubOption {
	return func(c *hubConfig) { c.legacyInterp = true }
}

// WithCanaryPolicy sets the verdict policy for canary deployments started
// via Hub.Canary: how many candidate samples must accumulate before a
// verdict, and how much worse than the incumbent the candidate's failure
// rate may be before it is rolled back. The zero-valued fields fall back to
// cfgstore.DefaultCanaryPolicy.
func WithCanaryPolicy(p cfgstore.CanaryPolicy) HubOption {
	return func(c *hubConfig) { c.canaryPolicy = p }
}

// WithExchangeIDBase floors the exchange ID sequence at base, so the first
// allocated ID is "ex-<base+1>". Federated hubs give each cluster node a
// disjoint base (node index × a wide stride): exchange IDs stay unique
// across the cluster, and a successor can restore a dead peer's exchanges
// under their original IDs without colliding with its own.
func WithExchangeIDBase(base int) HubOption {
	return func(c *hubConfig) {
		if base > 0 {
			c.exchIDBase = base
		}
	}
}

// queueDepthOrDefault resolves the effective per-shard queue bound.
func (c hubConfig) queueDepthOrDefault() int {
	if c.queueDepth > 0 {
		return c.queueDepth
	}
	return DefaultQueueDepthPerWorker * c.workersPerShard
}

// serverConfig collects NewServer's knobs.
type serverConfig struct {
	reliable msg.ReliableConfig
}

// ServerOption configures NewServer without growing its signature.
type ServerOption func(*serverConfig)

// WithReliableConfig sets the reliable-messaging parameters (retransmit
// timeout, attempt budget) of the server's endpoint.
func WithReliableConfig(cfg msg.ReliableConfig) ServerOption {
	return func(c *serverConfig) { c.reliable = cfg }
}
