package core

import (
	"fmt"
	"strings"

	"repro/internal/cfgstore"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/transform"
	"repro/internal/wf"
)

// Runtime change management (paper Section 4.5/4.6 applied to a live hub):
// every integration artifact — process types, transform programs, rule sets
// — is an immutable versioned record in the config store (internal/cfgstore)
// with a monotonically increasing config epoch. Hot-swaps (SwapBinding,
// SwapTransform, SwapRules) install a new version without draining: every
// exchange carries the config snapshot it admitted under and finishes on
// exactly those versions, while new admissions see the new epoch. Canary
// deployments (Hub.Canary) stage a candidate version, route a deterministic
// hash-based fraction of one partner's traffic to it, compare failure rates
// against the incumbent and promote or roll back automatically. Every
// change is journaled (see journal.go) so recovery restores the exact
// pre-crash config epoch.

// classOf maps a workflow type name ("binding:EDI", "appbinding-inv:SAP")
// to its artifact class in the config store.
func classOf(typeName string) cfgstore.Class {
	prefix := typeName
	if i := strings.Index(typeName, ":"); i >= 0 {
		prefix = typeName[:i]
	}
	switch prefix {
	case "public", "public-inv":
		return cfgstore.ClassPublicProcess
	case "binding", "binding-inv":
		return cfgstore.ClassBinding
	case "private":
		return cfgstore.ClassPrivateProcess
	case "appbinding", "appbinding-inv":
		return cfgstore.ClassAppBinding
	}
	return cfgstore.Class(prefix)
}

// xformKey names a transform artifact exactly as transform.Registry.Keys
// renders its triples.
func xformKey(from, to formats.Format, dt doc.DocType) string {
	return fmt.Sprintf("%s→%s:%s", from, to, dt)
}

// ConfigStore exposes the hub's versioned config store (epoch, histories,
// active versions).
func (h *Hub) ConfigStore() *cfgstore.Store { return h.cfg }

// ConfigMetrics exposes the runtime change-management gauges derived from
// the KindConfig event stream.
//
// Deprecated: use Status().Config.
func (h *Hub) ConfigMetrics() *obs.ConfigMetrics { return h.configMetrics }

// RegisterHandler registers (or replaces) a workflow step handler on the
// hub's engine. Test batteries use it to inject deliberately failing
// handlers into canary candidate types.
func (h *Hub) RegisterHandler(name string, fn wf.Handler) {
	h.handlerReg.Register(name, fn)
}

// emitConfig publishes one config change on the event bus.
func (h *Hub) emitConfig(step, partner string, class cfgstore.Class, name string, version int, epoch int64) {
	h.bus.Emit(obs.Event{
		ExchangeID: fmt.Sprintf("%s:%s@%d", class, name, version),
		Partner:    partner,
		Kind:       obs.KindConfig,
		Stage:      obs.StageConfig,
		Step:       step,
		Epoch:      epoch,
	})
}

// registerArtifact records a new artifact version in the config store,
// journals the change and emits the swap event. It is idempotent per
// version: a version already registered (typically restored from the
// journal before a restart's seed deploys re-ran) is silently skipped, so
// replay plus re-deploy never double-bumps the epoch.
func (h *Hub) registerArtifact(class cfgstore.Class, name string, version int, note string, staged bool) (int64, error) {
	for _, v := range h.cfg.History(class, name) {
		if v.Version == version {
			return h.cfg.Epoch(), nil
		}
	}
	var (
		epoch  int64
		err    error
		action = cfgActionRegister
	)
	if staged {
		action = cfgActionStage
		epoch, err = h.cfg.Stage(class, name, version, note)
	} else {
		epoch, err = h.cfg.Register(class, name, version, note)
	}
	if err != nil {
		return 0, err
	}
	h.journalConfigChange(journalConfig{Epoch: epoch, Action: action, Class: string(class), Name: name, Version: version, Note: note})
	if !staged {
		h.emitConfig(obs.StepSwapped, "", class, name, version, epoch)
	}
	return epoch, nil
}

// activateArtifact moves the active pointer to an already-registered
// version (rollback or canary promotion), journals the change and emits the
// activation event.
func (h *Hub) activateArtifact(class cfgstore.Class, name string, version int, note, partner string) (int64, error) {
	epoch, err := h.cfg.Activate(class, name, version, note)
	if err != nil {
		return 0, err
	}
	h.journalConfigChange(journalConfig{Epoch: epoch, Action: cfgActionActivate, Class: string(class), Name: name, Version: version, Note: note})
	h.emitConfig(obs.StepActivated, partner, class, name, version, epoch)
	return epoch, nil
}

// nextVersion picks the next version number for an artifact: one past the
// highest registered version, floored by the caller's current definition.
func (h *Hub) nextVersion(class cfgstore.Class, name string, current int) int {
	base := current
	if hist := h.cfg.History(class, name); len(hist) > 0 {
		if last := hist[len(hist)-1].Version; last > base {
			base = last
		}
	}
	return base + 1
}

// pinnedVersion resolves the workflow type version an exchange must run a
// stage at: the version from its admission-time snapshot, overridden by the
// canary candidate when this exchange rides the canary arm for exactly this
// artifact. A pinned version whose type body did not survive a restart (the
// type store is in-memory; the journal only restores version numbers) falls
// back to the live latest.
func (h *Hub) pinnedVersion(ex *Exchange, typeName string) int {
	if ex == nil {
		return 0
	}
	v := ex.cfg.Version(classOf(typeName), typeName)
	if ex.canaryArm && ex.canary != nil && ex.canary.c.Name == typeName {
		v = ex.canary.c.Candidate
	}
	if v != 0 && !h.Engine.HasType(typeName, v) {
		return 0
	}
	return v
}

// exchangeOf resolves the exchange a workflow instance belongs to.
func (h *Hub) exchangeOf(in *wf.Instance) *Exchange {
	exID, _ := in.Data["exchange"].(string)
	if exID == "" {
		return nil
	}
	ex, _ := h.ExchangeByID(exID)
	return ex
}

// evalRules evaluates a rule set at the instance's exchange-pinned version:
// a frozen (hot-swapped-away) version if the pin points at one, the live
// registry otherwise.
func (h *Hub) evalRules(in *wf.Instance, set, source, target string, document any) (rules.Decision, error) {
	if ex := h.exchangeOf(in); ex != nil {
		if v := ex.cfg.Version(cfgstore.ClassRules, set); v > 0 {
			h.frozenMu.RLock()
			frozen := h.frozenRules[set][v]
			h.frozenMu.RUnlock()
			if frozen != nil {
				return frozen.Evaluate(source, target, document)
			}
		}
	}
	return h.Model.Rules.Evaluate(set, source, target, document)
}

// applyXform maps a native value between formats at the instance's
// exchange-pinned transform version: a frozen transformer if the pin points
// at one, the live registry (with its program cache) otherwise.
func (h *Hub) applyXform(in *wf.Instance, from, to formats.Format, dt doc.DocType, native any) (any, error) {
	name := xformKey(from, to, dt)
	if ex := h.exchangeOf(in); ex != nil {
		if v := ex.cfg.Version(cfgstore.ClassTransform, name); v > 0 {
			h.frozenMu.RLock()
			frozen := h.frozenXforms[name][v]
			h.frozenMu.RUnlock()
			if frozen != nil {
				return frozen.Apply(native)
			}
		}
	}
	return h.reg.Apply(from, to, dt, native)
}

// SwapBinding hot-swaps one protocol's binding process on the live hub
// without draining: the new version deploys, activates and becomes the
// model's definition; in-flight exchanges finish on the version they
// admitted under, new admissions see the new epoch. Passing a nil TypeDef
// swaps in a freshly generated binding (a pure re-version). The hub assigns
// the version number.
func (h *Hub) SwapBinding(p formats.Format, t *wf.TypeDef) (*wf.TypeDef, error) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	old, ok := h.Model.Bindings[p]
	if !ok {
		return nil, fmt.Errorf("core: no binding for protocol %s", p)
	}
	if t == nil {
		var err error
		if t, err = BuildBinding(p); err != nil {
			return nil, err
		}
	}
	if t.Name != old.Name {
		return nil, fmt.Errorf("core: binding swap for %s must keep the type name %q, got %q", p, old.Name, t.Name)
	}
	t.Version = h.nextVersion(classOf(t.Name), t.Name, old.Version)
	if err := h.deployTypeMode(t, false, "swap"); err != nil {
		return nil, err
	}
	h.Model.Bindings[p] = t
	return t, nil
}

// SwapTransform hot-swaps one transformation program. The displaced
// transformer is frozen under its version so exchanges pinned to it keep
// mapping documents exactly as they admitted.
func (h *Hub) SwapTransform(t transform.Transformer) (int, error) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	name := xformKey(t.From(), t.To(), t.DocType())
	old, ok := h.reg.Lookup(t.From(), t.To(), t.DocType())
	if !ok {
		return 0, fmt.Errorf("core: no transform registered for %s", name)
	}
	cur, _ := h.cfg.Active(cfgstore.ClassTransform, name)
	if cur == 0 {
		cur = 1
	}
	h.freezeXform(name, cur, old)
	next := h.nextVersion(cfgstore.ClassTransform, name, cur)
	h.reg.Register(t)
	if _, err := h.registerArtifact(cfgstore.ClassTransform, name, next, "swap", false); err != nil {
		return 0, err
	}
	return next, nil
}

// SwapRules hot-swaps a rule set: mutate is applied to a clone of the live
// set and the clone is installed atomically, so no exchange ever observes a
// half-applied rule change. The displaced set is frozen under its version
// for pinned evaluation.
func (h *Hub) SwapRules(set string, mutate func(*rules.Set) error) (int, error) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	live, ok := h.Model.Rules.Lookup(set)
	if !ok {
		return 0, fmt.Errorf("core: unknown rule set %q", set)
	}
	clone := live.Clone()
	if err := mutate(clone); err != nil {
		return 0, err
	}
	cur, _ := h.cfg.Active(cfgstore.ClassRules, set)
	if cur == 0 {
		cur = 1
	}
	h.freezeRules(set, cur, live)
	next := h.nextVersion(cfgstore.ClassRules, set, cur)
	h.Model.Rules.Replace(clone)
	if _, err := h.registerArtifact(cfgstore.ClassRules, set, next, "swap", false); err != nil {
		return 0, err
	}
	return next, nil
}

// ChangePartnerThreshold is the versioned runtime form of the model-level
// threshold change: the approval rule set is re-versioned through SwapRules
// (one artifact, zero process recompiles), so in-flight exchanges keep
// evaluating the threshold they admitted under. Unlike the model-level
// mutator, the partner record itself is never written — at runtime the rule
// set is the single source of truth for the threshold (the paper's point:
// thresholds live in rules, not in types), and concurrent admissions read
// the partner slice lock-free.
func (h *Hub) ChangePartnerThreshold(id string, threshold float64) (*ChangeRecord, error) {
	p, ok := h.Model.PartnerByID(id)
	if !ok {
		return nil, fmt.Errorf("core: unknown partner %q", id)
	}
	ruleName := fmt.Sprintf("approval %s→%s", p.ID, p.Backend)
	removed := 0
	if _, err := h.SwapRules(ApprovalRuleSet, func(s *rules.Set) error {
		removed = s.Remove(ruleName)
		return s.Add(rules.Rule{
			Name:      ruleName,
			Source:    p.ID,
			Target:    p.Backend,
			Condition: fmt.Sprintf("document.amount >= %v", threshold),
		})
	}); err != nil {
		return nil, err
	}
	return &ChangeRecord{
		Description:  fmt.Sprintf("change %s approval threshold to %v", id, threshold),
		Local:        true,
		RulesAdded:   1,
		RulesRemoved: removed,
	}, nil
}

// Rollback moves an artifact's active pointer back to an earlier registered
// version — a pure StateStore change, never an un-deploy. Workflow versions
// remain startable in the engine; rules and transforms are re-installed
// from their frozen copies so new admissions evaluate the rolled-back
// version too.
func (h *Hub) Rollback(class cfgstore.Class, name string, version int) (int64, error) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	cur, ok := h.cfg.Active(class, name)
	if !ok {
		return 0, fmt.Errorf("core: unknown artifact %s:%s", class, name)
	}
	switch class {
	case cfgstore.ClassRules:
		if version != cur {
			h.frozenMu.RLock()
			target := h.frozenRules[name][version]
			h.frozenMu.RUnlock()
			if target == nil {
				return 0, fmt.Errorf("core: rule set %q has no frozen version %d to roll back to", name, version)
			}
			if live, ok := h.Model.Rules.Lookup(name); ok {
				h.freezeRules(name, cur, live)
			}
			h.Model.Rules.Replace(target.Clone())
		}
	case cfgstore.ClassTransform:
		if version != cur {
			h.frozenMu.RLock()
			target := h.frozenXforms[name][version]
			h.frozenMu.RUnlock()
			if target == nil {
				return 0, fmt.Errorf("core: transform %q has no frozen version %d to roll back to", name, version)
			}
			if live, ok := h.reg.Lookup(target.From(), target.To(), target.DocType()); ok {
				h.freezeXform(name, cur, live)
			}
			h.reg.Register(target)
		}
	}
	return h.activateArtifact(class, name, version, "rollback", "")
}

// freezeRules retains a displaced rule set under its version (idempotent:
// the first freeze of a version wins — it is the set that was live then).
func (h *Hub) freezeRules(set string, version int, s *rules.Set) {
	h.frozenMu.Lock()
	defer h.frozenMu.Unlock()
	if h.frozenRules[set] == nil {
		h.frozenRules[set] = map[int]*rules.Set{}
	}
	if _, done := h.frozenRules[set][version]; !done {
		h.frozenRules[set][version] = s
	}
}

// freezeXform retains a displaced transformer under its version.
func (h *Hub) freezeXform(name string, version int, t transform.Transformer) {
	h.frozenMu.Lock()
	defer h.frozenMu.Unlock()
	if h.frozenXforms[name] == nil {
		h.frozenXforms[name] = map[int]transform.Transformer{}
	}
	if _, done := h.frozenXforms[name][version]; !done {
		h.frozenXforms[name][version] = t
	}
}

// canaryRun is one live canary deployment: the comparison state plus the
// candidate type, installed into the model on promotion.
type canaryRun struct {
	c   *cfgstore.Canary
	def *wf.TypeDef
}

// Canary stage-deploys a candidate version of one of the partner's workflow
// artifacts and routes a deterministic hash-based fraction of the partner's
// traffic to it. The candidate's failure rate is compared against the
// incumbent's (relative comparison: a fault hitting both arms does not
// blame the candidate); once enough candidate samples accumulate the canary
// settles — promotion activates the candidate for all traffic, a regression
// rolls the partner back to the incumbent automatically. One canary per
// partner at a time. The hub assigns the candidate's version number.
func (h *Hub) Canary(partnerID string, candidate *wf.TypeDef, fraction float64) (*cfgstore.Canary, error) {
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	if candidate == nil {
		return nil, fmt.Errorf("core: canary requires a candidate type")
	}
	route, ok := h.resolveRoute(partnerID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPartner, partnerID)
	}
	class := classOf(candidate.Name)
	switch class {
	case cfgstore.ClassPublicProcess, cfgstore.ClassBinding, cfgstore.ClassPrivateProcess, cfgstore.ClassAppBinding:
	default:
		return nil, fmt.Errorf("core: canary deploys workflow artifacts, not %s", class)
	}
	if !routeUses(route, candidate.Name) {
		return nil, fmt.Errorf("core: %s is not on partner %s's route", candidate.Name, partnerID)
	}
	incumbent, ok := h.cfg.Active(class, candidate.Name)
	if !ok || incumbent == 0 {
		return nil, fmt.Errorf("core: %s:%s has no active incumbent version", class, candidate.Name)
	}
	candidate.Version = h.nextVersion(class, candidate.Name, incumbent)
	c, err := cfgstore.NewCanary(partnerID, class, candidate.Name, incumbent, candidate.Version, fraction, h.canaryPolicy)
	if err != nil {
		return nil, err
	}
	run := &canaryRun{c: c, def: candidate}
	h.canaryMu.Lock()
	if _, exists := h.canaries[partnerID]; exists {
		h.canaryMu.Unlock()
		return nil, fmt.Errorf("core: partner %s already has a canary running", partnerID)
	}
	h.canaries[partnerID] = run
	h.canaryMu.Unlock()
	if err := h.deployTypeMode(candidate, true, "canary"); err != nil {
		h.canaryMu.Lock()
		delete(h.canaries, partnerID)
		h.canaryMu.Unlock()
		return nil, err
	}
	h.emitConfig(obs.StepCanaryStarted, partnerID, class, candidate.Name, candidate.Version, h.cfg.Epoch())
	return c, nil
}

// routeUses reports whether the named workflow type serves the route.
func routeUses(r resolvedRoute, name string) bool {
	switch name {
	case r.publicName, r.bindingName, r.appBinding,
		r.invPublicName, r.invBindingName, r.invAppBinding,
		PrivateProcessName, InvoicePrivateProcessName:
		return true
	}
	return false
}

// ActiveCanary returns the partner's running canary, if any.
func (h *Hub) ActiveCanary(partnerID string) (*cfgstore.Canary, bool) {
	h.canaryMu.Lock()
	defer h.canaryMu.Unlock()
	run, ok := h.canaries[partnerID]
	if !ok {
		return nil, false
	}
	return run.c, true
}

// armCanary attaches the partner's running canary (if any) to a freshly
// admitted exchange and routes the exchange deterministically by its
// business document ID, so a resubmit lands on the same arm as the original
// run. Called under h.mu from newExchange.
func (h *Hub) armCanary(ex *Exchange, key string) {
	h.canaryMu.Lock()
	run := h.canaries[ex.Partner.ID]
	h.canaryMu.Unlock()
	if run == nil {
		return
	}
	if key == "" {
		key = ex.ID
	}
	ex.canary = run
	ex.canaryArm = run.c.RouteCandidate(key)
}

// recordCanaryOutcome feeds one finished exchange into its canary's
// failure-rate comparison and settles the canary when the verdict lands.
// Only endpoint-attributable failures count as samples: infrastructure
// refusals (an open breaker, a cancelled context) say nothing about the
// candidate configuration.
func (h *Hub) recordCanaryOutcome(ex *Exchange, err error) {
	if ex == nil || ex.canary == nil {
		return
	}
	failed := err != nil
	if failed && !endpointFailure(err) {
		return
	}
	verdict, decided := ex.canary.c.Record(ex.canaryArm, failed)
	if decided {
		h.settleCanary(ex.canary, verdict)
	}
}

// settleCanary applies a decided canary verdict exactly once: promotion
// activates the candidate version and installs its type as the model's
// definition; rollback re-activates the incumbent. Either way the canary
// stops routing traffic immediately.
func (h *Hub) settleCanary(run *canaryRun, verdict cfgstore.CanaryVerdict) {
	c := run.c
	h.canaryMu.Lock()
	if h.canaries[c.Partner] != run {
		h.canaryMu.Unlock()
		return
	}
	delete(h.canaries, c.Partner)
	h.canaryMu.Unlock()
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	switch verdict {
	case cfgstore.CanaryPromote:
		if _, err := h.activateArtifact(c.Class, c.Name, c.Candidate, "canary-promote", c.Partner); err == nil {
			h.installTypeDef(run.def)
		}
		h.emitConfig(obs.StepCanaryPromoted, c.Partner, c.Class, c.Name, c.Candidate, h.cfg.Epoch())
	case cfgstore.CanaryRollback:
		h.activateArtifact(c.Class, c.Name, c.Incumbent, "canary-rollback", c.Partner)
		h.emitConfig(obs.StepCanaryRolledBack, c.Partner, c.Class, c.Name, c.Candidate, h.cfg.Epoch())
	}
}

// installTypeDef makes a promoted candidate the model's definition of its
// artifact, so later model-level changes version from it.
func (h *Hub) installTypeDef(t *wf.TypeDef) {
	i := strings.Index(t.Name, ":")
	if i < 0 {
		return
	}
	prefix, rest := t.Name[:i], t.Name[i+1:]
	switch prefix {
	case "public":
		h.Model.PublicProcesses[formats.Format(rest)] = t
	case "binding":
		h.Model.Bindings[formats.Format(rest)] = t
	case "appbinding":
		h.Model.AppBindings[rest] = t
	case "public-inv":
		h.Model.InvoicePublic[formats.Format(rest)] = t
	case "binding-inv":
		h.Model.InvoiceBindings[formats.Format(rest)] = t
	case "appbinding-inv":
		h.Model.InvoiceAppBindings[rest] = t
	case "private":
		if t.Name == PrivateProcessName {
			h.Model.Private = t
		} else {
			h.Model.InvoicePrivate = t
		}
	}
}

// StageVersions reports the workflow type versions the exchange's stage
// instances actually ran at, keyed by pipeline stage. The change-management
// test battery uses it to prove no exchange ever mixes config versions.
func (h *Hub) StageVersions(ex *Exchange) map[obs.Stage]int {
	out := map[obs.Stage]int{}
	for _, id := range []string{ex.PublicID, ex.BindingID, ex.PrivateID, ex.AppID} {
		if id == "" {
			continue
		}
		in, err := h.Engine.Instance(id)
		if err != nil {
			continue
		}
		out[stageOf(in.Type)] = in.Version
	}
	return out
}
