package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/doc"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/wf"
)

// poRouteHops is the number of routing hops of a complete inbound PO
// exchange (public process started, public→binding, binding→private,
// private→app, app→private, private→binding, binding→public,
// public→network); invRouteHops the hops of a complete invoice exchange.
const (
	poRouteHops  = 8
	invRouteHops = 5
)

// TestSubmitStress drives N parallel Hub.DoAsync round trips across all
// three protocols with a mixed invoice load and reconciles the per-partner
// stats and per-exchange event counts exactly. The hub runs the sharded
// scheduler (4 shards x 2 workers). Run with -race.
func TestSubmitStress(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newFig14Hub(t, WithShards(4), WithWorkersPerShard(2))
	if _, err := h.AddPartner(Figure15Partner()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	defer h.StopWorkers()

	const (
		workersPerPartner = 2
		ordersPerWorker   = 10
	)
	parties := []doc.Party{tp1, tp2, tp3}
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, len(parties)*workersPerPartner)
	for pi, party := range parties {
		for w := 0; w < workersPerPartner; w++ {
			wg.Add(1)
			go func(pi int, party doc.Party, w int) {
				defer wg.Done()
				g := doc.NewGenerator(int64(100*pi + w))
				for i := 0; i < ordersPerWorker; i++ {
					po := g.PO(party, seller)
					po.ID = fmt.Sprintf("%s-p%d-w%d-%d", po.ID, pi, w, i)
					fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: po})
					if err != nil {
						errCh <- err
						return
					}
					res := fut.Result(ctx)
					if res.Err != nil {
						errCh <- fmt.Errorf("%s order %d: %w", party.ID, i, res.Err)
						return
					}
					if res.POA == nil || res.POA.POID != po.ID {
						errCh <- fmt.Errorf("%s order %d: wrong acknowledgment %+v", party.ID, i, res.POA)
						return
					}
					// Every completed order is billed: push the invoice
					// through the pool as well.
					ifut, err := h.DoAsync(ctx, Request{Kind: DocInvoice, PartnerID: party.ID, POID: po.ID})
					if err != nil {
						errCh <- err
						return
					}
					if ires := ifut.Result(ctx); ires.Err != nil {
						errCh <- fmt.Errorf("%s invoice %d: %w", party.ID, i, ires.Err)
						return
					}
				}
			}(pi, party, w)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	perPartner := workersPerPartner * ordersPerWorker
	totalPOs := len(parties) * perPartner

	// Stats reconcile exactly: every PO and every invoice exchange landed,
	// nothing failed, and the per-partner counts add up.
	st := h.Stats()
	if st.Exchanges != totalPOs || st.Invoices != totalPOs || st.Failed != 0 {
		t.Fatalf("stats %+v, want %d/%d/0", st, totalPOs, totalPOs)
	}
	for _, party := range parties {
		if st.PerPartner[party.ID] != 2*perPartner {
			t.Fatalf("partner %s count %d, want %d", party.ID, st.PerPartner[party.ID], 2*perPartner)
		}
	}
	cs := h.Counters()
	if cs.Started != int64(2*totalPOs) {
		t.Fatalf("started %d, want %d", cs.Started, 2*totalPOs)
	}
	if cs.ByFlow[obs.FlowPO] != int64(totalPOs) || cs.ByFlow[obs.FlowInvoice] != int64(totalPOs) {
		t.Fatalf("by-flow %+v", cs.ByFlow)
	}

	// Event counts reconcile exactly per exchange: two lifecycle events and
	// the full hop count for the exchange's flow.
	for i := 1; i <= 2*totalPOs; i++ {
		exID := fmt.Sprintf("ex-%06d", i)
		ex, ok := h.ExchangeByID(exID)
		if !ok {
			t.Fatalf("exchange %s missing", exID)
		}
		var lifecycle, routes int
		for _, e := range h.Events(exID) {
			switch e.Kind {
			case obs.KindExchange:
				lifecycle++
				if e.Partner != ex.Partner.ID || e.Flow != ex.Flow {
					t.Fatalf("%s: lifecycle event attribution %+v", exID, e)
				}
			case obs.KindRoute:
				routes++
			}
		}
		if lifecycle != 2 {
			t.Fatalf("%s: %d lifecycle events", exID, lifecycle)
		}
		want := poRouteHops
		if ex.Flow == obs.FlowInvoice {
			want = invRouteHops
		}
		if routes != want {
			t.Fatalf("%s (%s): %d route events, want %d\n%v", exID, ex.Flow, routes, want, h.Trace(exID))
		}
	}

	// The back ends stored exactly the submitted orders.
	stored := 0
	for _, sys := range h.Systems {
		stored += sys.StoredOrders()
	}
	if stored != totalPOs {
		t.Fatalf("backends stored %d, want %d", stored, totalPOs)
	}
}

// TestSubmitCancellationAbortsPipeline cancels the submission context from
// inside the private process (the approval step) and verifies the exchange
// aborts mid-pipeline: the backend is never touched, the pipeline error is
// the context error, and the exchange is counted as failed.
func TestSubmitCancellationAbortsPipeline(t *testing.T) {
	h := newFig14Hub(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The approval step (needsApproval == true for this order) pulls the
	// plug mid-pipeline: the next step is "To application", so a correct
	// abort leaves the backend untouched.
	h.handlerReg.Register("approve", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		in.Data["approved"] = true
		cancel()
		return nil
	})

	g := doc.NewGenerator(7)
	po := g.POWithAmount(tp1, seller, 100000) // above TP1's 55000 threshold
	fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: po})
	if err != nil {
		t.Fatal(err)
	}
	res := fut.Result(context.Background())
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", res.Err)
	}
	if res.Exchange == nil {
		t.Fatal("no exchange record")
	}
	// No backend mutation after cancellation.
	if got := h.Systems["SAP"].StoredOrders(); got != 0 {
		t.Fatalf("backend stored %d orders after cancellation", got)
	}
	// The exchange is counted failed and its terminal event carries the
	// context error.
	if st := h.Stats(); st.Failed != 1 || st.Exchanges != 1 {
		t.Fatalf("stats %+v", st)
	}
	var terminal *obs.Event
	for _, e := range h.Events(res.Exchange.ID) {
		if e.Kind == obs.KindExchange && e.Step == "failed" {
			e := e
			terminal = &e
		}
	}
	if terminal == nil || !errors.Is(terminal.Err, context.Canceled) {
		t.Fatalf("terminal event %+v", terminal)
	}
}

// TestStopWorkersRejectsAndRestarts: submissions against a stopped scheduler
// are rejected with ErrHubStopped, and the scheduler can be restarted.
func TestStopWorkersRejectsAndRestarts(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newFig14Hub(t, WithShards(2), WithWorkersPerShard(1))
	ctx := context.Background()
	g := doc.NewGenerator(9)

	fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)})
	if err != nil {
		t.Fatal(err)
	}
	if res := fut.Result(ctx); res.Err != nil {
		t.Fatal(res.Err)
	}
	h.StopWorkers()
	if _, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)}); !errors.Is(err, ErrHubStopped) {
		t.Fatalf("err %v, want ErrHubStopped", err)
	}
	h.StartScheduler()
	defer h.StopWorkers()
	fut, err = h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)})
	if err != nil {
		t.Fatal(err)
	}
	if res := fut.Result(ctx); res.Err != nil {
		t.Fatal(res.Err)
	}
}
