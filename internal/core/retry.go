package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/formats"
	"repro/internal/obs"
	"repro/internal/wf"
)

// The reliability layer: endpoint failure is a binding-local concern
// (Section 4) — a flaky back end or partner endpoint is absorbed by retry
// policies attached to bindings, and exchanges that exhaust their policy
// are parked on the hub's dead-letter queue instead of being lost. The
// public and private process definitions are untouched, exactly as the
// paper's architecture demands.

// RetryPolicy bounds how a binding retries a failing step: up to
// MaxAttempts total attempts, sleeping BaseBackoff·2^(attempt-1) (capped at
// MaxBackoff) between them, with each attempt's backend work bounded by
// PerAttemptTimeout carved out of the exchange's own context.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (minimum 1; 0 behaves as 1).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff; 0 retries immediately.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means uncapped.
	MaxBackoff time.Duration
	// PerAttemptTimeout bounds each application-binding attempt; 0 leaves
	// attempts bounded only by the exchange's context.
	PerAttemptTimeout time.Duration
}

// BackoffFor returns the pause after the attempt-th failed attempt
// (1-based): BaseBackoff doubled per failure, capped at MaxBackoff.
func (p RetryPolicy) BackoffFor(attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	b := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		b *= 2
		if p.MaxBackoff > 0 && b >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		return p.MaxBackoff
	}
	return b
}

// attempts returns the effective attempt budget, folding in the step's own
// Retries declaration (the engine-level budget that predates policies).
func (p RetryPolicy) attempts(s *wf.StepDef) int {
	n := p.MaxAttempts
	if n < 1 {
		n = 1
	}
	if s != nil && s.Retries+1 > n {
		n = s.Retries + 1
	}
	return n
}

// SetRetryPolicy attaches a retry policy to a binding scope: a backend name
// ("SAP") covers that application binding's steps, a protocol name
// (string(formats.EDI)) covers that protocol binding's and public
// process's steps.
func (h *Hub) SetRetryPolicy(scope string, p RetryPolicy) {
	h.retryMu.Lock()
	defer h.retryMu.Unlock()
	if h.retryPolicies == nil {
		h.retryPolicies = map[string]RetryPolicy{}
	}
	h.retryPolicies[scope] = p
}

// SetDefaultRetryPolicy sets the policy used by scopes without their own.
func (h *Hub) SetDefaultRetryPolicy(p RetryPolicy) {
	h.retryMu.Lock()
	defer h.retryMu.Unlock()
	h.defaultRetry = p
}

// policyForScopes resolves the first configured scope, else the default.
func (h *Hub) policyForScopes(scopes ...string) RetryPolicy {
	h.retryMu.RLock()
	defer h.retryMu.RUnlock()
	for _, sc := range scopes {
		if sc == "" {
			continue
		}
		if p, ok := h.retryPolicies[sc]; ok {
			return p
		}
	}
	return h.defaultRetry
}

// overrideFor returns the exchange's per-call retry override (Request.Retry)
// for the instance, if one was submitted with it.
func (h *Hub) overrideFor(in *wf.Instance) *RetryPolicy {
	exID, _ := in.Data["exchange"].(string)
	if exID == "" {
		return nil
	}
	h.mu.Lock()
	ex := h.exchanges[exID]
	h.mu.Unlock()
	if ex == nil {
		return nil
	}
	return ex.retry
}

// policyFor resolves the retry policy governing one step of an exchange:
// the per-call override wins, then application-binding steps resolve by
// backend name first and everything else by protocol first.
func (h *Hub) policyFor(in *wf.Instance) RetryPolicy {
	if p := h.overrideFor(in); p != nil {
		return *p
	}
	target, _ := in.Data["target"].(string)
	protocol, _ := in.Data["protocol"].(string)
	if stageOf(in.Type) == obs.StageApp {
		return h.policyForScopes(target, protocol)
	}
	return h.policyForScopes(protocol, target)
}

// retryDecider is the hub's wf.RetryDecider: transient failures are retried
// within the binding's policy, with exponential backoff, and every retried
// attempt and backoff pause is emitted as a typed event so retries show up
// in the per-stage histograms and exchange traces.
func (h *Hub) retryDecider(ctx context.Context, in *wf.Instance, s *wf.StepDef, attempt int, err error) (bool, time.Duration) {
	pol := h.policyFor(in)
	if attempt >= pol.attempts(s) || !retryable(err) || ctx.Err() != nil {
		return false, 0
	}
	backoff := pol.BackoffFor(attempt)
	exID, _ := in.Data["exchange"].(string)
	partner, _ := in.Data["source"].(string)
	stage := stageOf(in.Type)
	h.bus.Emit(obs.Event{
		ExchangeID: exID, Partner: partner,
		Kind: obs.KindRetry, Stage: stage, Step: obs.StepAttempt,
		Err: fmt.Errorf("%s attempt %d: %w", s.Name, attempt, err),
	})
	if backoff > 0 {
		h.bus.Emit(obs.Event{
			ExchangeID: exID, Partner: partner,
			Kind: obs.KindRetry, Stage: stage, Step: obs.StepBackoff,
			Elapsed: backoff,
		})
	}
	return true, backoff
}

// retryable reports whether a step failure is worth repeating against the
// same endpoint: injected/transient backend faults and per-attempt
// timeouts are; semantic failures (validation, duplicates, rule errors)
// are not.
func retryable(err error) bool {
	return backend.IsTransient(err)
}

// withAttemptTimeout wraps an application-binding handler so each attempt
// runs under the backend's PerAttemptTimeout (when configured) carved out
// of the exchange's context — a hung backend call unsticks at the attempt
// boundary instead of stalling the exchange until its overall deadline.
func (h *Hub) withAttemptTimeout(bName string, fn wf.Handler) wf.Handler {
	return func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		pol := h.policyForScopes(bName)
		if p := h.overrideFor(in); p != nil {
			pol = *p
		}
		if pol.PerAttemptTimeout <= 0 {
			return fn(ctx, in, s)
		}
		actx, cancel := context.WithTimeout(ctx, pol.PerAttemptTimeout)
		defer cancel()
		return fn(actx, in, s)
	}
}

// WrapBackends replaces every deployed backend system with wrap(system) —
// the seam fault-injection harnesses use to decorate backends without the
// hub knowing (chaos tests wrap with backend.NewFaulty).
func (h *Hub) WrapBackends(wrap func(backend.System) backend.System) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, sys := range h.Systems {
		h.Systems[name] = wrap(sys)
	}
}

// DeadLetter is one exchange parked on the hub's dead-letter queue after
// exhausting its retry policy. The original inbound payload is retained so
// the exchange can be resubmitted once the endpoint heals.
type DeadLetter struct {
	ExchangeID string
	Partner    string
	Flow       obs.Flow
	Protocol   formats.Format
	// Reason is the terminal pipeline error.
	Reason error
	// At is when the exchange was dead-lettered.
	At time.Time

	// journaled marks an entry whose exchange was write-ahead-logged: it
	// survives a restart through the journal, so the bounded queue may
	// spill it from memory without losing it.
	journaled bool

	// native is the decoded native inbound PO (FlowPO); poID identifies the
	// billed order (FlowInvoice).
	native any
	poID   string
	// req is the original submission, retained when the exchange was
	// rejected at admission (circuit fast-fail or shed) and never reached
	// the pipeline: Resubmit simply reruns it.
	req *Request
}

// deadLetter parks a failed exchange on the queue and emits the
// dead-letter lifecycle event.
func (h *Hub) deadLetter(ex *Exchange, reason error, native any, poID string) {
	dl := DeadLetter{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       ex.Flow,
		Protocol:   ex.Protocol,
		Reason:     reason,
		At:         time.Now(),
		journaled:  ex.journaled,
		native:     native,
		poID:       poID,
	}
	ex.deadLettered = true
	h.parkDeadLetter(dl)
	h.emitLifecycle(ex, obs.StepDeadLetter, 0, reason)
}

// deadLetterRequest parks a request rejected at admission (fast-fail or
// shed) on the queue, retaining the request itself: it never touched the
// pipeline or a backend, so Resubmit can rerun it without duplicate risk.
func (h *Hub) deadLetterRequest(ex *Exchange, reason error, req Request) {
	dl := DeadLetter{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       ex.Flow,
		Protocol:   ex.Protocol,
		Reason:     reason,
		At:         time.Now(),
		journaled:  req.journaled,
		req:        &req,
	}
	ex.deadLettered = true
	h.parkDeadLetter(dl)
	h.emitLifecycle(ex, obs.StepDeadLetter, 0, reason)
}

// parkDeadLetter appends one entry to the bounded in-memory queue. At the
// cap (WithDLQCap; 0 = unbounded), a hub with a journal spills its oldest
// journaled entry to journal-only retention — the entry's journal records
// survive (its dead-letter completion, or at worst its admit, which a
// later Recover re-delivers at most once) — and a hub without one (or
// whose oldest entry predates the journal) rejects the incoming entry
// instead. While the journal is degraded (disk down), nothing spills:
// journal-only retention cannot be trusted when the journal cannot be
// written, so the queue falls back to bounded in-memory retention and
// rejects the incoming entry. Either way the pushed-out entry is emitted
// as a KindHealth dlq-evict event, feeding the HealthMetrics DLQEvicted
// gauge.
func (h *Hub) parkDeadLetter(dl DeadLetter) {
	var evicted *DeadLetter
	h.dlqMu.Lock()
	switch {
	case h.dlqCap <= 0 || len(h.dlq) < h.dlqCap:
		h.dlq = append(h.dlq, dl)
	case h.jrn != nil && !h.journalDown() && len(h.dlq) > 0 && h.dlq[0].journaled:
		old := h.dlq[0]
		evicted = &old
		h.dlq = append(h.dlq[1:], dl)
	default:
		evicted = &dl
	}
	h.dlqMu.Unlock()
	if evicted != nil {
		h.bus.Emit(obs.Event{
			ExchangeID: evicted.ExchangeID,
			Partner:    evicted.Partner,
			Flow:       evicted.Flow,
			Kind:       obs.KindHealth,
			Stage:      obs.StageHealth,
			Step:       obs.StepDLQEvict,
			Err:        evicted.Reason,
		})
	}
}

// DeadLetters returns a snapshot of the dead-letter queue.
func (h *Hub) DeadLetters() []DeadLetter {
	h.dlqMu.Lock()
	defer h.dlqMu.Unlock()
	return append([]DeadLetter(nil), h.dlq...)
}

// DrainDeadLetters empties the queue and returns what was on it.
func (h *Hub) DrainDeadLetters() []DeadLetter {
	h.dlqMu.Lock()
	defer h.dlqMu.Unlock()
	out := h.dlq
	h.dlq = nil
	return out
}

// Resubmit reruns a dead-lettered exchange from its retained inbound
// payload as a fresh exchange. Resubmissions tolerate the duplicate-order
// rejection of the back end (the paper's Section 1 duplicate elimination):
// when the dead-lettered run already stored the order, the store step is
// satisfied by the existing copy instead of double-mutating the backend.
func (h *Hub) Resubmit(ctx context.Context, dl DeadLetter) (*Exchange, error) {
	ex, err := h.resubmit(ctx, dl)
	// Settle the journal: a successful rerun resolves the entry for good, a
	// rerun that dead-lettered again takes the original's place, anything
	// else leaves the original recoverable.
	h.journalResubmitOutcome(dl, ex, err)
	return ex, err
}

func (h *Hub) resubmit(ctx context.Context, dl DeadLetter) (*Exchange, error) {
	if dl.req != nil {
		// Rejected at admission (fast-fail or shed) or restored from the
		// journal with its request intact: a plain rerun — health-gated
		// again, and its outcome feeds the breaker like any other exchange.
		req := *dl.req
		partner, probe, rejected := h.healthGate(req)
		if rejected != nil {
			return rejected.Exchange, rejected.Err
		}
		res := h.runTracked(ctx, req, partner, probe)
		return res.Exchange, res.Err
	}
	opts := exchangeOpts{resubmit: true, journaled: dl.journaled && h.jrn != nil}
	switch dl.Flow {
	case obs.FlowInvoice:
		_, ex, err := h.sendInvoice(ctx, dl.Partner, dl.poID, opts)
		return ex, err
	default:
		if dl.native == nil {
			return nil, fmt.Errorf("core: dead letter %s retains no payload", dl.ExchangeID)
		}
		return h.processNativeOpt(ctx, dl.Protocol, dl.native, opts)
	}
}

// tolerateDuplicate converts the backend's duplicate-order rejection into
// success for resubmitted exchanges.
func tolerateDuplicate(in *wf.Instance, err error) error {
	if resub, _ := in.Data["resubmit"].(bool); resub && errors.Is(err, backend.ErrDuplicateOrder) {
		return nil
	}
	return err
}
