package core

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/rules"
)

// ChangeRecord accounts for exactly which artifacts a model change touched
// — the Section 4.5/4.6 evidence. In the advanced architecture every
// routine population change is local: the private process is never touched
// by adding partners, protocols or back ends.
type ChangeRecord struct {
	// Description names the change.
	Description string
	// Local reports whether the change stayed within one artifact class
	// (Section 4.5's classification).
	Local bool
	// TypesAdded and TypesModified list affected workflow types.
	TypesAdded    []string
	TypesModified []string
	// RulesAdded and RulesRemoved count business-rule changes.
	RulesAdded   int
	RulesRemoved int
	// PrivateTouched reports whether the private process changed.
	PrivateTouched bool
}

// AddPartner adds a trading partner to the model (Section 4.6: "adding a
// new trading partner only requires to add business rules … If the new
// trading partner complies to an already implemented B2B protocol" nothing
// else changes; otherwise the protocol's public process and binding are
// added).
func (m *Model) AddPartner(p TradingPartner) (*ChangeRecord, error) {
	rec := &ChangeRecord{
		Description: fmt.Sprintf("add trading partner %s (%s → %s)", p.ID, p.Protocol, p.Backend),
		Local:       true,
	}
	newProtocol, err := m.addPartner(p, m.backendsByName())
	if err != nil {
		return nil, err
	}
	rec.RulesAdded = 1
	if newProtocol {
		rec.TypesAdded = append(rec.TypesAdded, PublicProcessName(p.Protocol), BindingName(p.Protocol))
	}
	return rec, nil
}

// RemovePartner removes a partner and its business rules. The protocol's
// public process and binding remain (other partners may use them); the
// private process is untouched.
func (m *Model) RemovePartner(id string) (*ChangeRecord, error) {
	idx := -1
	for i, p := range m.Partners {
		if p.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("core: unknown partner %q", id)
	}
	p := m.Partners[idx]
	m.Partners = append(m.Partners[:idx], m.Partners[idx+1:]...)
	removed := m.Rules.Set(ApprovalRuleSet).Remove(fmt.Sprintf("approval %s→%s", p.ID, p.Backend))
	return &ChangeRecord{
		Description:  "remove trading partner " + id,
		Local:        true,
		RulesRemoved: removed,
	}, nil
}

// AddBackend adds a back-end application: one application binding, plus
// whatever rules its partners bring later. The private process and every
// public process are untouched (Section 4.6: "adding new back end
// application system is analogous to adding a new B2B protocol standard").
func (m *Model) AddBackend(b Backend) (*ChangeRecord, error) {
	if _, dup := m.backendsByName()[b.Name]; dup {
		return nil, fmt.Errorf("core: duplicate backend %q", b.Name)
	}
	ab, err := BuildAppBinding(b)
	if err != nil {
		return nil, err
	}
	m.Backends = append(m.Backends, b)
	m.AppBindings[b.Name] = ab
	return &ChangeRecord{
		Description: "add backend " + b.Name,
		Local:       true,
		TypesAdded:  []string{AppBindingName(b.Name)},
	}, nil
}

// ChangePartnerThreshold changes one partner's approval threshold — a
// rules-only change, invisible to every process type.
func (m *Model) ChangePartnerThreshold(id string, threshold float64) (*ChangeRecord, error) {
	idx := -1
	for i, p := range m.Partners {
		if p.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("core: unknown partner %q", id)
	}
	p := &m.Partners[idx]
	ruleName := fmt.Sprintf("approval %s→%s", p.ID, p.Backend)
	set := m.Rules.Set(ApprovalRuleSet)
	removed := set.Remove(ruleName)
	if err := set.Add(rules.Rule{
		Name:      ruleName,
		Source:    p.ID,
		Target:    p.Backend,
		Condition: fmt.Sprintf("document.amount >= %v", threshold),
	}); err != nil {
		return nil, err
	}
	p.ApprovalThreshold = threshold
	return &ChangeRecord{
		Description:  fmt.Sprintf("change %s approval threshold to %v", id, threshold),
		Local:        true,
		RulesAdded:   1,
		RulesRemoved: removed,
	}, nil
}

// AddPrivateAuditStep applies the Section 4.5 local private-process change:
// an audit step on the outgoing path. Only the private process changes.
func (m *Model) AddPrivateAuditStep() (*ChangeRecord, error) {
	t, err := BuildPrivateProcessWithAudit()
	if err != nil {
		return nil, err
	}
	t.Version = m.Private.Version + 1
	m.Private = t
	return &ChangeRecord{
		Description:    "add audit step to private process",
		Local:          true,
		TypesModified:  []string{PrivateProcessName},
		PrivateTouched: true,
	}, nil
}

// EnableTransportAcks applies the Section 4.5 local public-process change:
// the protocol's public process models explicit transport acknowledgments.
// The binding and private process are untouched because acknowledgments
// are not passed on.
func (m *Model) EnableTransportAcks(p TradingPartner) (*ChangeRecord, error) {
	old, ok := m.PublicProcesses[p.Protocol]
	if !ok {
		return nil, fmt.Errorf("core: no public process for protocol %s", p.Protocol)
	}
	t, err := BuildPublicProcessWithAcks(p.Protocol)
	if err != nil {
		return nil, err
	}
	t.Version = old.Version + 1
	m.PublicProcesses[p.Protocol] = t
	return &ChangeRecord{
		Description:   fmt.Sprintf("model transport acknowledgments in %s public process", p.Protocol),
		Local:         true,
		TypesModified: []string{PublicProcessName(p.Protocol)},
	}, nil
}

// AddPartner applies the model change and deploys whatever it added, making
// the hub serve the new partner immediately.
func (h *Hub) AddPartner(p TradingPartner) (*ChangeRecord, error) {
	rec, err := h.Model.AddPartner(p)
	if err != nil {
		return nil, err
	}
	h.invalidateRoutes()
	// Deploy (and so recompile) only when the change actually added types:
	// a partner on an existing protocol reuses the deployed plans as-is —
	// the change-impact sweep in the ablation suite counts on this.
	if len(rec.TypesAdded) > 0 {
		if _, ok := h.Model.PublicProcesses[p.Protocol]; ok {
			if err := h.deployType(h.Model.PublicProcesses[p.Protocol]); err != nil {
				return rec, err
			}
			if err := h.deployType(h.Model.Bindings[p.Protocol]); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}

// AddBackend applies the model change and deploys the new system + binding.
func (h *Hub) AddBackend(b Backend) (*ChangeRecord, error) {
	rec, err := h.Model.AddBackend(b)
	if err != nil {
		return nil, err
	}
	if err := h.DeployBackend(b); err != nil {
		return rec, err
	}
	return rec, nil
}

// AddPrivateAuditStep applies and deploys the audit-step change.
func (h *Hub) AddPrivateAuditStep() (*ChangeRecord, error) {
	rec, err := h.Model.AddPrivateAuditStep()
	if err != nil {
		return nil, err
	}
	return rec, h.deployType(h.Model.Private)
}

// EnableTransportAcks applies and deploys the public-process ack change.
func (h *Hub) EnableTransportAcks(p TradingPartner) (*ChangeRecord, error) {
	rec, err := h.Model.EnableTransportAcks(p)
	if err != nil {
		return nil, err
	}
	h.invalidateRoutes()
	return rec, h.deployType(h.Model.PublicProcesses[p.Protocol])
}

// EnableFunctionalAcks switches a protocol's public process to the variant
// that returns an X12 997 functional acknowledgment on receipt — another
// Section 4.5 local public-process change: the binding and private process
// never see the signal.
func (m *Model) EnableFunctionalAcks(p formats.Format) (*ChangeRecord, error) {
	old, ok := m.PublicProcesses[p]
	if !ok {
		return nil, fmt.Errorf("core: no public process for protocol %s", p)
	}
	t, err := BuildPublicProcessWithFunctionalAck(p, old.Version+1)
	if err != nil {
		return nil, err
	}
	m.PublicProcesses[p] = t
	return &ChangeRecord{
		Description:   fmt.Sprintf("return 997 functional acknowledgments in %s public process", p),
		Local:         true,
		TypesModified: []string{PublicProcessName(p)},
	}, nil
}

// EnableFunctionalAcks applies and deploys the 997 change on a live hub.
func (h *Hub) EnableFunctionalAcks(p formats.Format) (*ChangeRecord, error) {
	rec, err := h.Model.EnableFunctionalAcks(p)
	if err != nil {
		return nil, err
	}
	h.invalidateRoutes()
	return rec, h.deployType(h.Model.PublicProcesses[p])
}
