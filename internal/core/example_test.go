package core_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/formats"
)

// ExampleHub_Do builds the minimal advanced model — one EDI partner, one
// SAP back end — and runs one PO/POA exchange through the full
// public-process → binding → private-process → application-binding chain
// with the unified submission API.
func ExampleHub_Do() {
	model, err := core.BuildModel(
		[]core.TradingPartner{{
			ID: "TP1", Name: "Acme Corp", Protocol: formats.EDI,
			Backend: "SAP", ApprovalThreshold: 55000,
		}},
		[]core.Backend{{Name: "SAP", Format: formats.SAPIDoc}},
	)
	if err != nil {
		log.Fatal(err)
	}
	hub, err := core.NewHub(model)
	if err != nil {
		log.Fatal(err)
	}
	po := &doc.PurchaseOrder{
		ID:       "PO-TP1-000001",
		Buyer:    doc.Party{ID: "TP1", Name: "Acme Corp"},
		Seller:   doc.Party{ID: "HUB", Name: "Widget Inc"},
		Currency: "USD",
		Lines:    []doc.Line{{Number: 1, SKU: "LAP-100", Quantity: 40, UnitPrice: 1450}},
	}
	res, err := hub.Do(context.Background(), core.Request{Kind: core.DocPO, PO: po})
	if err != nil {
		log.Fatal(err)
	}
	priv, _ := hub.PrivateInstance(res.Exchange)
	fmt.Println("status:", res.POA.Status)
	fmt.Println("needs approval:", priv.Data["needsApproval"])
	// Output:
	// status: accepted
	// needs approval: true
}

// ExampleModel_AddPartner applies the paper's Figure 15 change: a third
// trading partner with a new protocol adds one public process, one binding
// and one business rule — the private process is untouched.
func ExampleModel_AddPartner() {
	model, err := core.PaperFigure14Model()
	if err != nil {
		log.Fatal(err)
	}
	rec, err := model.AddPartner(core.Figure15Partner())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("types added:", len(rec.TypesAdded))
	fmt.Println("rules added:", rec.RulesAdded)
	fmt.Println("private process touched:", rec.PrivateTouched)
	// Output:
	// types added: 2
	// rules added: 1
	// private process touched: false
}
