package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/backend"
	"repro/internal/doc"
	"repro/internal/obs"
)

// TestExchangeErrorTyped: a failing exchange surfaces a typed *ExchangeError
// carrying the exchange ID, partner and failing stage, with the root cause
// reachable through errors.Is.
func TestExchangeErrorTyped(t *testing.T) {
	h := newFig14Hub(t)
	h.WrapBackends(func(sys backend.System) backend.System {
		return backend.NewFaulty(sys, backend.FaultSchedule{ErrProb: 1, Seed: 7})
	})
	h.SetDefaultRetryPolicy(RetryPolicy{MaxAttempts: 1})

	g := doc.NewGenerator(53)
	po := g.PO(tp1, seller)
	_, ex, err := roundTrip(h, context.Background(), po)
	if err == nil {
		t.Fatal("exchange against an always-failing backend succeeded")
	}
	var xerr *ExchangeError
	if !errors.As(err, &xerr) {
		t.Fatalf("err %T %v is not an *ExchangeError", err, err)
	}
	if xerr.ExchangeID != ex.ID || xerr.Partner != tp1.ID {
		t.Fatalf("attribution %s/%s, want %s/%s", xerr.ExchangeID, xerr.Partner, ex.ID, tp1.ID)
	}
	if xerr.Stage != obs.StageApp {
		t.Fatalf("stage %s, want %s (the backend step failed)", xerr.Stage, obs.StageApp)
	}
	if !errors.Is(err, backend.ErrInjected) {
		t.Fatalf("root cause %v not reachable through errors.Is", err)
	}
}

// TestErrorSentinels: the exported sentinels are reachable with errors.Is
// from the public entry points.
func TestErrorSentinels(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(59)

	ghost := doc.Party{ID: "GHOST", Name: "Nobody", DUNS: "000000000"}
	if _, err := h.Do(ctx, Request{Kind: DocPO, PO: g.PO(ghost, seller)}); !errors.Is(err, ErrUnknownPartner) {
		t.Fatalf("unknown partner: err %v, want ErrUnknownPartner", err)
	}
	if _, err := h.Do(ctx, Request{Kind: DocInvoice, PartnerID: "GHOST", POID: "PO-1"}); err == nil {
		t.Fatal("invoice for unknown partner succeeded")
	}
	if _, err := h.Do(ctx, Request{}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("empty request: err %v, want ErrInvalidRequest", err)
	}
}

// retryEventsFor counts the retry attempts recorded for one exchange.
func retryEventsFor(h *Hub, exID string) int {
	n := 0
	for _, e := range h.Events(exID) {
		if e.Kind == obs.KindRetry && e.Step == obs.StepAttempt {
			n++
		}
	}
	return n
}

// TestRequestRetryOverride: Request.Retry overrides the hub's retry policies
// for that exchange only — a single-attempt override stops immediately where
// the hub default keeps retrying.
func TestRequestRetryOverride(t *testing.T) {
	h := newFig14Hub(t)
	h.WrapBackends(func(sys backend.System) backend.System {
		return backend.NewFaulty(sys, backend.FaultSchedule{ErrProb: 1, Seed: 11})
	})
	h.SetDefaultRetryPolicy(RetryPolicy{MaxAttempts: 4})

	ctx := context.Background()
	g := doc.NewGenerator(61)

	// Default policy: 4 attempts → 3 recorded retries.
	res, err := h.Do(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)})
	if err == nil {
		t.Fatal("exchange against an always-failing backend succeeded")
	}
	defRetries := retryEventsFor(h, res.Exchange.ID)
	if defRetries != 3 {
		t.Fatalf("default policy recorded %d retries, want 3", defRetries)
	}

	// Per-call override: 1 attempt → no retries, everything else unchanged.
	res, err = h.Do(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller), Retry: &RetryPolicy{MaxAttempts: 1}})
	if err == nil {
		t.Fatal("exchange against an always-failing backend succeeded")
	}
	if got := retryEventsFor(h, res.Exchange.ID); got != 0 {
		t.Fatalf("override recorded %d retries, want 0", got)
	}

	// The override did not leak into the hub's configured policies.
	res, err = h.Do(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)})
	if err == nil {
		t.Fatal("exchange against an always-failing backend succeeded")
	}
	if got := retryEventsFor(h, res.Exchange.ID); got != 3 {
		t.Fatalf("post-override default recorded %d retries, want 3", got)
	}
}
