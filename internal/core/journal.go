package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/cfgstore"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/journal"
	"repro/internal/obs"
)

// The durability layer: a hub built WithJournal write-ahead-logs its
// exchange lifecycle (see internal/journal for the file format). The
// protocol is three record kinds plus a compaction checkpoint:
//
//   - "admit": one record per admitted Request, appended in Do/DoAsync
//     before the health gate or the scheduler sees the submission. The
//     payload is the request itself, so a crashed hub can re-run it.
//   - "complete": the terminal outcome of an admitted request, keyed by
//     its admission key. Dead-letter outcomes carry a replayable copy of
//     the request so the queue entry survives a restart; "aborted" marks
//     submissions the scheduler refused, which have nothing to recover.
//   - "resolve": a dead letter left the queue for good (a successful
//     Resubmit), keyed by its exchange ID.
//   - "checkpoint": compaction high-water marks (exchange and admission
//     sequence floors), so IDs are never reused after records that carried
//     them are compacted away.
//
// An admit without a complete is an unfinished admission: Recover re-runs
// it with resubmit tolerance, keyed by exchange identity end to end — when
// the crash hit between "executed" and "journaled-complete", the re-run's
// store step is satisfied by the backend's existing copy (duplicate
// elimination) and anything genuinely unrecoverable re-delivers at most
// once into the dead-letter queue instead of double-executing.

// Journal record kinds.
const (
	recAdmit      = "admit"
	recComplete   = "complete"
	recResolve    = "resolve"
	recCheckpoint = "checkpoint"
	// recConfig is one runtime configuration change (register, stage or
	// activate of an artifact version); replaying the config records restores
	// the exact pre-crash config epoch and active-version set.
	recConfig = "config"
	// recReplay marks one recovery replay attempt of a pending admission
	// (keyed like the admit). Appended before the replay runs, so an
	// admission that crashes the hub during its own replay accumulates
	// attempt records; at poisonThreshold the replay is skipped and the
	// admission parks on the dead-letter queue instead of crash-looping
	// recovery forever.
	recReplay = "replay"
)

// poisonThreshold is how many journaled replay attempts an admission may
// accumulate before Recover stops re-running it and parks it as poisoned.
const poisonThreshold = 3

// Config record actions.
const (
	cfgActionRegister = "register"
	cfgActionStage    = "stage"
	cfgActionActivate = "activate"
)

// journalConfig is the payload of a config record.
type journalConfig struct {
	Epoch   int64  `json:"epoch"`
	Action  string `json:"action"`
	Class   string `json:"class"`
	Name    string `json:"name"`
	Version int    `json:"version"`
	Note    string `json:"note,omitempty"`
}

// decodeConfigRecord parses and validates one config record payload. It is
// the fuzzed decoding surface: arbitrary payloads must either yield a
// well-formed change or an error, never a malformed apply.
func decodeConfigRecord(payload []byte) (journalConfig, error) {
	var jc journalConfig
	if err := json.Unmarshal(payload, &jc); err != nil {
		return journalConfig{}, fmt.Errorf("core: config record: %w", err)
	}
	switch jc.Action {
	case cfgActionRegister, cfgActionStage, cfgActionActivate:
	default:
		return journalConfig{}, fmt.Errorf("core: config record: unknown action %q", jc.Action)
	}
	if jc.Class == "" || jc.Name == "" {
		return journalConfig{}, fmt.Errorf("core: config record: missing artifact key")
	}
	if jc.Version <= 0 {
		return journalConfig{}, fmt.Errorf("core: config record: version %d must be positive", jc.Version)
	}
	if jc.Epoch < 0 {
		return journalConfig{}, fmt.Errorf("core: config record: epoch %d must be non-negative", jc.Epoch)
	}
	return jc, nil
}

// applyConfigRecord replays one config record into the hub's config store.
// Undecodable or unreplayable records are skipped: a torn or corrupt tail
// must not block recovery of the rest of the journal.
func (h *Hub) applyConfigRecord(payload []byte) {
	jc, err := decodeConfigRecord(payload)
	if err != nil {
		return
	}
	activate := jc.Action != cfgActionStage
	_ = h.cfg.Restore(cfgstore.Class(jc.Class), jc.Name, jc.Version, jc.Epoch, activate, jc.Note)
}

// journalConfigChange write-ahead-logs one config change. Append errors are
// swallowed: the change is already applied in memory and a lost record only
// costs epoch exactness after a crash, never correctness of live routing.
func (h *Hub) journalConfigChange(jc journalConfig) {
	if h.jrn == nil || h.journalDown() {
		// Degraded: the config store itself holds the state and the re-arm
		// compaction snapshots it (configLiveRecords), so the skipped
		// record costs nothing once the disk heals.
		return
	}
	payload, err := json.Marshal(jc)
	if err != nil {
		return
	}
	h.jrnMu.Lock()
	_ = h.jrn.Append(journal.Record{Kind: recConfig, Payload: payload})
	h.jrnMu.Unlock()
}

// configLiveRecords exports the config store's current state as replayable
// records for compaction: per-artifact registration records carrying their
// original epochs (staged, so replay does not move pointers prematurely)
// followed by an activation record per artifact carrying the current epoch,
// so replay lands on the exact live epoch and active-version set.
func (h *Hub) configLiveRecords() []journal.Record {
	var out []journal.Record
	epoch := h.cfg.Epoch()
	appendRec := func(jc journalConfig) {
		if payload, err := json.Marshal(jc); err == nil {
			out = append(out, journal.Record{Kind: recConfig, Payload: payload})
		}
	}
	for _, k := range h.cfg.Keys() {
		for _, v := range h.cfg.History(k.Class, k.Name) {
			appendRec(journalConfig{Epoch: v.Epoch, Action: cfgActionStage, Class: string(k.Class), Name: k.Name, Version: v.Version, Note: v.Note})
		}
		if active, ok := h.cfg.Active(k.Class, k.Name); ok && active > 0 {
			appendRec(journalConfig{Epoch: epoch, Action: cfgActionActivate, Class: string(k.Class), Name: k.Name, Version: active, Note: "checkpoint"})
		}
	}
	return out
}

// Terminal outcomes of a complete record.
const (
	outcomeCompleted  = "completed"
	outcomeDeadLetter = "dead-letter"
	outcomeFailed     = "failed"
	outcomeAborted    = "aborted"
)

// ErrNoJournal is returned by journal-only operations on a hub built
// without WithJournal.
var ErrNoJournal = errors.New("core: hub has no journal")

// journalRequest is the serialized form of a Request in admit records and
// dead-letter complete records.
type journalRequest struct {
	Kind      DocKind            `json:"kind"`
	PO        *doc.PurchaseOrder `json:"po,omitempty"`
	Protocol  formats.Format     `json:"protocol,omitempty"`
	Wire      []byte             `json:"wire,omitempty"`
	PartnerID string             `json:"partner,omitempty"`
	POID      string             `json:"poid,omitempty"`
	Priority  Priority           `json:"priority,omitempty"`
	Retry     *RetryPolicy       `json:"retry,omitempty"`
}

func toJournalRequest(r *Request) *journalRequest {
	return &journalRequest{
		Kind:      r.Kind,
		PO:        r.PO,
		Protocol:  r.Protocol,
		Wire:      r.Wire,
		PartnerID: r.PartnerID,
		POID:      r.POID,
		Priority:  r.Priority,
		Retry:     r.Retry,
	}
}

// toRequest rebuilds the submission for a recovery replay: journaled
// requests were admitted through the journal, and replays tolerate the
// backend's duplicate-order rejection because the original run may have
// executed before the crash.
func (jr *journalRequest) toRequest() Request {
	return Request{
		Kind:      jr.Kind,
		PO:        jr.PO,
		Protocol:  jr.Protocol,
		Wire:      jr.Wire,
		PartnerID: jr.PartnerID,
		POID:      jr.POID,
		Priority:  jr.Priority,
		Retry:     jr.Retry,
		resubmit:  true,
		journaled: true,
	}
}

// journalOutcome is the payload of a complete record.
type journalOutcome struct {
	ExchangeID string          `json:"ex,omitempty"`
	Partner    string          `json:"partner,omitempty"`
	Flow       obs.Flow        `json:"flow,omitempty"`
	Protocol   formats.Format  `json:"proto,omitempty"`
	Outcome    string          `json:"outcome"`
	Reason     string          `json:"reason,omitempty"`
	Request    *journalRequest `json:"req,omitempty"`
}

// journalResolve is the payload of a resolve record.
type journalResolvePayload struct {
	ExchangeID string `json:"ex"`
}

// journalCheckpoint is the payload of a checkpoint record.
type journalCheckpoint struct {
	ExchSeq int `json:"exchSeq"`
	JrnSeq  int `json:"jrnSeq"`
}

// journalSnapshot is what the open-time replay derived, consumed once by
// Recover.
type journalSnapshot struct {
	records   int
	tornBytes int64
	// pending maps admission key → request for admits without a complete.
	pending map[string]*journalRequest
	// pendingOrder preserves admission order for deterministic replay.
	pendingOrder []string
	// dead maps exchange ID → outcome for unresolved dead letters.
	dead map[string]journalOutcome
	// deadOrder preserves journal order.
	deadOrder []string
	// finished are completed/failed outcomes, restored as exchange records.
	finished []journalOutcome
	// attempts counts replay-attempt records per pending admission key
	// (poison detection).
	attempts map[string]int
	// dupAdmits counts duplicate admission records that were ignored.
	dupAdmits int
}

// scanJournal derives a replay snapshot from a sequence of journal records:
// unfinished admissions, unresolved dead letters, finished outcomes, plus
// the exchange/admission sequence high-water marks. It is shared by the
// open-time replay of the hub's own journal (initJournal, which also replays
// config records via onConfig) and by the read-only takeover scan of a dead
// peer's journal (TakeOverJournal, which passes a nil onConfig — a peer's
// config history is not replayed into this hub).
func scanJournal(recs []journal.Record, onConfig func([]byte)) (snap *journalSnapshot, maxExch, maxKey int) {
	snap = &journalSnapshot{
		pending:  map[string]*journalRequest{},
		dead:     map[string]journalOutcome{},
		attempts: map[string]int{},
	}
	completedKeys := map[string]bool{}
	snap.records = len(recs)
	noteExch := func(exID string) {
		var n int
		if _, err := fmt.Sscanf(exID, "ex-%d", &n); err == nil && n > maxExch {
			maxExch = n
		}
	}
	for _, rec := range recs {
		switch rec.Kind {
		case recCheckpoint:
			var cp journalCheckpoint
			if json.Unmarshal(rec.Payload, &cp) == nil {
				if cp.ExchSeq > maxExch {
					maxExch = cp.ExchSeq
				}
				if cp.JrnSeq > maxKey {
					maxKey = cp.JrnSeq
				}
			}
		case recAdmit:
			var n int
			if _, err := fmt.Sscanf(rec.Key, "j-%d", &n); err == nil && n > maxKey {
				maxKey = n
			}
			if _, dup := snap.pending[rec.Key]; dup || completedKeys[rec.Key] {
				snap.dupAdmits++
				continue
			}
			var jr journalRequest
			if json.Unmarshal(rec.Payload, &jr) != nil || jr.Kind == "" {
				continue
			}
			snap.pending[rec.Key] = &jr
			snap.pendingOrder = append(snap.pendingOrder, rec.Key)
		case recComplete:
			var out journalOutcome
			if json.Unmarshal(rec.Payload, &out) != nil {
				continue
			}
			if rec.Key != "" {
				completedKeys[rec.Key] = true
				if _, ok := snap.pending[rec.Key]; ok {
					delete(snap.pending, rec.Key)
					snap.pendingOrder = removeKey(snap.pendingOrder, rec.Key)
				}
			}
			noteExch(out.ExchangeID)
			switch out.Outcome {
			case outcomeDeadLetter:
				if out.ExchangeID != "" {
					if _, ok := snap.dead[out.ExchangeID]; !ok {
						snap.deadOrder = append(snap.deadOrder, out.ExchangeID)
					}
					snap.dead[out.ExchangeID] = out
				}
			case outcomeCompleted, outcomeFailed:
				if out.ExchangeID != "" {
					snap.finished = append(snap.finished, out)
				}
			}
		case recResolve:
			var rp journalResolvePayload
			if json.Unmarshal(rec.Payload, &rp) == nil && rp.ExchangeID != "" {
				if _, ok := snap.dead[rp.ExchangeID]; ok {
					delete(snap.dead, rp.ExchangeID)
					snap.deadOrder = removeKey(snap.deadOrder, rp.ExchangeID)
				}
			}
		case recReplay:
			if rec.Key != "" {
				snap.attempts[rec.Key]++
			}
		case recConfig:
			// Replay config changes in journal order so the store converges
			// on the exact pre-crash epoch and active-version set before the
			// seed deploys run (they skip already-restored versions).
			if onConfig != nil {
				onConfig(rec.Payload)
			}
		}
	}
	return snap, maxExch, maxKey
}

// initJournal builds the startup snapshot and the live compaction index
// from the journal's open-time replay, and floors the hub's sequence
// counters so post-restart IDs never collide with journaled ones. Called
// once from NewHub.
func (h *Hub) initJournal() {
	snap, maxExch, maxKey := scanJournal(h.jrn.Records(), h.applyConfigRecord)
	snap.tornBytes = h.jrn.Stats().TornBytes
	h.jrnStartup = snap
	h.jrnSeq = maxKey
	h.mu.Lock()
	if maxExch > h.exchSeq {
		h.exchSeq = maxExch
	}
	h.mu.Unlock()
	// The live compaction index starts as a copy of the snapshot (Recover
	// consumes the snapshot; completions of its replays mutate the index).
	h.jrnPending = make(map[string]*journalRequest, len(snap.pending))
	for k, v := range snap.pending {
		h.jrnPending[k] = v
	}
	h.jrnDead = make(map[string]journalOutcome, len(snap.dead))
	for k, v := range snap.dead {
		h.jrnDead[k] = v
	}
	h.jrnAttempts = make(map[string]int, len(snap.attempts))
	for k, v := range snap.attempts {
		if _, pending := snap.pending[k]; pending {
			h.jrnAttempts[k] = v
		}
	}
}

func removeKey(keys []string, key string) []string {
	for i, k := range keys {
		if k == key {
			return append(keys[:i], keys[i+1:]...)
		}
	}
	return keys
}

// journalAdmit write-ahead-logs one admitted request and returns its
// admission key. With no journal it returns "" and nil. An append error is
// routed through the durability failure policy (see durability.go):
// fail-stop fails the admission with ErrJournalUnavailable — a hub asked
// to be durable must not accept work it cannot log — and degraded admits
// it non-durably (key "", never replayed) while the prober watches for
// the disk to heal. While degraded, appends are skipped outright: writing
// to a disk known broken could tear frames under the live segment for
// nothing.
func (h *Hub) journalAdmit(req *Request) (string, error) {
	if h.jrn == nil {
		return "", nil
	}
	if h.journalDown() {
		h.noteNonDurableAdmit()
		return "", nil
	}
	jr := toJournalRequest(req)
	payload, err := json.Marshal(jr)
	if err != nil {
		return "", fmt.Errorf("core: journal admit: %w", err)
	}
	h.jrnMu.Lock()
	h.jrnSeq++
	key := fmt.Sprintf("j-%08d", h.jrnSeq)
	err = h.jrn.Append(journal.Record{Kind: recAdmit, Key: key, Payload: payload})
	if err == nil {
		h.jrnPending[key] = jr
	}
	h.jrnMu.Unlock()
	if err != nil {
		return "", h.journalAppendFailed(err)
	}
	req.journaled = true
	return key, nil
}

// journalComplete appends the terminal outcome of an admitted request.
// Dead-letter outcomes retain the request so the queue entry survives a
// restart. Append errors are swallowed: the admission stays pending in the
// journal and a future Recover re-delivers it at most once.
func (h *Hub) journalComplete(key string, req *Request, res *Result) {
	if h.jrn == nil || key == "" {
		return
	}
	out := journalOutcome{Outcome: outcomeCompleted}
	if ex := res.Exchange; ex != nil {
		out.ExchangeID = ex.ID
		out.Partner = ex.Partner.ID
		out.Flow = ex.Flow
		out.Protocol = ex.Protocol
	}
	if res.Err != nil {
		out.Reason = res.Err.Error()
		if res.Exchange != nil && res.Exchange.deadLettered {
			out.Outcome = outcomeDeadLetter
			out.Request = toJournalRequest(req)
		} else {
			out.Outcome = outcomeFailed
		}
	}
	h.appendOutcome(key, out)
}

// journalAbort marks an admission the scheduler refused as terminal with
// nothing to recover.
func (h *Hub) journalAbort(key string, reason error) {
	if h.jrn == nil || key == "" {
		return
	}
	out := journalOutcome{Outcome: outcomeAborted}
	if reason != nil {
		out.Reason = reason.Error()
	}
	h.appendOutcome(key, out)
}

func (h *Hub) appendOutcome(key string, out journalOutcome) {
	payload, err := json.Marshal(out)
	if err != nil {
		return
	}
	// While degraded the append is skipped but the live index still moves:
	// the index is what the re-arm compaction writes to the fresh segment,
	// so a completion during the outage is not resurrected after it. (A
	// crash before the re-arm replays the stale journal and re-delivers at
	// most once, as always.)
	down := h.journalDown()
	h.jrnMu.Lock()
	defer h.jrnMu.Unlock()
	if !down && h.jrn.Append(journal.Record{Kind: recComplete, Key: key, Payload: payload}) != nil {
		return
	}
	delete(h.jrnPending, key)
	delete(h.jrnAttempts, key)
	if out.Outcome == outcomeDeadLetter && out.ExchangeID != "" {
		h.jrnDead[out.ExchangeID] = out
	}
}

// journalResubmitOutcome settles a dead letter's journal entry after a
// Resubmit attempt: a successful rerun resolves it for good; a rerun that
// dead-lettered again resolves the old entry and parks the new exchange's
// record in its place; a rerun that never produced a dead letter (unknown
// partner, lost payload) leaves the original entry recoverable.
func (h *Hub) journalResubmitOutcome(dl DeadLetter, ex *Exchange, err error) {
	if h.jrn == nil {
		return
	}
	reparked := err != nil && ex != nil && ex.deadLettered
	if err != nil && !reparked {
		return
	}
	payload, merr := json.Marshal(journalResolvePayload{ExchangeID: dl.ExchangeID})
	if merr != nil {
		return
	}
	down := h.journalDown()
	h.jrnMu.Lock()
	if down || h.jrn.Append(journal.Record{Kind: recResolve, Payload: payload}) == nil {
		// Degraded: the in-memory index is what the re-arm compaction
		// writes, so dropping the entry there resolves it durably enough.
		delete(h.jrnDead, dl.ExchangeID)
	}
	h.jrnMu.Unlock()
	if reparked {
		out := journalOutcome{
			ExchangeID: ex.ID,
			Partner:    ex.Partner.ID,
			Flow:       ex.Flow,
			Protocol:   ex.Protocol,
			Outcome:    outcomeDeadLetter,
			Reason:     err.Error(),
			Request:    h.replayableRequest(dl),
		}
		h.appendOutcome("", out)
	}
}

// replayableRequest derives a Request that re-runs a dead letter: the
// retained request if admission never ran it, the billing identifiers for
// an invoice, or the native PO re-encoded to its wire form.
func (h *Hub) replayableRequest(dl DeadLetter) *journalRequest {
	switch {
	case dl.req != nil:
		return toJournalRequest(dl.req)
	case dl.Flow == obs.FlowInvoice:
		return &journalRequest{Kind: DocInvoice, PartnerID: dl.Partner, POID: dl.poID}
	case dl.native != nil:
		codec, err := h.codecs.Lookup(dl.Protocol, doc.TypePO)
		if err != nil {
			return nil
		}
		wire, err := codec.Encode(dl.native)
		if err != nil {
			return nil
		}
		return &journalRequest{Kind: DocWirePO, Protocol: dl.Protocol, Wire: wire, PartnerID: dl.Partner}
	}
	return nil
}

// RecoveryReport is what one Recover pass did.
type RecoveryReport struct {
	// Records is how many journal records the open-time replay yielded;
	// TornBytes how many trailing bytes of a torn final append were
	// truncated away.
	Records   int
	TornBytes int64
	// Restored counts completed exchanges restored as records.
	Restored int
	// DeadLetters counts dead letters restored to the queue, replayable
	// via Resubmit.
	DeadLetters int
	// Reenqueued counts unfinished admissions re-run through the
	// scheduler; Recovered the replays that completed, Redelivered the
	// replays that dead-lettered again (at-most-once redelivery).
	Reenqueued  int
	Recovered   int
	Redelivered int
	// DuplicateAdmits counts duplicate admission records ignored by the
	// replay (idempotence by admission key).
	DuplicateAdmits int
	// Corrupt counts mid-file corrupt regions the open-time scrub
	// quarantined (WithJournalScrub); QuarantinedBytes their total size.
	Corrupt          int
	QuarantinedBytes int64
	// Poisoned counts admissions parked to the dead-letter queue instead
	// of replayed, after poisonThreshold replay attempts crashed or failed
	// to complete.
	Poisoned int
}

// Recover replays the journal a hub was opened on: completed exchanges
// come back as records (ExchangeByID), unresolved dead letters come back
// on the queue replayable via Resubmit, and unfinished admissions are
// re-enqueued through the scheduler with duplicate tolerance — a crash
// between "executed" and "journaled-complete" re-delivers at most once
// into the dead-letter queue instead of double-executing. Recover blocks
// until the re-enqueued admissions resolve or ctx is done, and is
// idempotent: a second call finds nothing to replay.
//
// Call Recover before submitting new work; replayed admissions share the
// scheduler with live traffic otherwise.
func (h *Hub) Recover(ctx context.Context) (RecoveryReport, error) {
	var rep RecoveryReport
	if h.jrn == nil {
		return rep, ErrNoJournal
	}
	h.jrnMu.Lock()
	snap := h.jrnStartup
	h.jrnStartup = nil
	h.jrnMu.Unlock()
	if snap == nil {
		return rep, nil
	}
	start := time.Now()
	rep.Records = snap.records
	rep.TornBytes = snap.tornBytes
	rep.DuplicateAdmits = snap.dupAdmits
	jst := h.jrn.Stats()
	rep.Corrupt = jst.Corrupt
	rep.QuarantinedBytes = jst.QuarantinedBytes
	h.bus.Emit(obs.Event{Kind: obs.KindRecovery, Stage: obs.StageRecovery, Step: obs.StepStarted})

	// Completed exchanges come back as records so ExchangeByID and audit
	// trails survive the restart.
	for _, out := range snap.finished {
		if h.restoreExchange(out) {
			rep.Restored++
			h.bus.Emit(obs.Event{
				ExchangeID: out.ExchangeID, Partner: out.Partner, Flow: out.Flow,
				Kind: obs.KindRecovery, Stage: obs.StageRecovery, Step: obs.StepRestored,
			})
		}
	}

	// Unresolved dead letters come back on the queue, replayable via
	// Resubmit exactly like entries that never left memory.
	for _, exID := range snap.deadOrder {
		out := snap.dead[exID]
		h.restoreExchange(out)
		dl := DeadLetter{
			ExchangeID: out.ExchangeID,
			Partner:    out.Partner,
			Flow:       out.Flow,
			Protocol:   out.Protocol,
			Reason:     errors.New(out.Reason),
			At:         time.Now(),
			journaled:  true,
		}
		if out.Request != nil {
			req := out.Request.toRequest()
			dl.req = &req
		}
		h.dlqMu.Lock()
		h.dlq = append(h.dlq, dl)
		h.dlqMu.Unlock()
		rep.DeadLetters++
		h.bus.Emit(obs.Event{
			ExchangeID: out.ExchangeID, Partner: out.Partner, Flow: out.Flow,
			Kind: obs.KindRecovery, Stage: obs.StageRecovery, Step: obs.StepDeadLetterRestored,
		})
	}

	// Unfinished admissions re-enter through the front door: health gate,
	// scheduler, journal completion under their original admission key.
	// Each replay is preceded by a journaled attempt record, so an
	// admission that keeps crashing the hub mid-replay accumulates
	// attempts across restarts; at poisonThreshold it is parked on the
	// dead-letter queue instead of crash-looping recovery forever.
	type replay struct {
		key string
		fut *Future
	}
	var replays []replay
	for _, key := range snap.pendingOrder {
		jr := snap.pending[key]
		if snap.attempts[key] >= poisonThreshold {
			h.parkPoisoned(key, jr, snap.attempts[key])
			rep.Poisoned++
			continue
		}
		h.jrnMu.Lock()
		_ = h.jrn.Append(journal.Record{Kind: recReplay, Key: key})
		h.jrnAttempts[key]++
		h.jrnMu.Unlock()
		req := jr.toRequest()
		fut, err := h.doAsync(ctx, req, key)
		if err != nil {
			// The scheduler refused (stopped, ctx done): the admission
			// stays pending in the journal for the next Recover.
			continue
		}
		rep.Reenqueued++
		replays = append(replays, replay{key: key, fut: fut})
	}
	for _, r := range replays {
		res := r.fut.Result(ctx)
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		if res.Err == nil {
			rep.Recovered++
		} else {
			rep.Redelivered++
		}
		var exID string
		if res.Exchange != nil {
			exID = res.Exchange.ID
		}
		h.bus.Emit(obs.Event{
			ExchangeID: exID,
			Kind:       obs.KindRecovery, Stage: obs.StageRecovery, Step: obs.StepReplayed,
			Err: res.Err,
		})
	}
	h.bus.Emit(obs.Event{
		Kind: obs.KindRecovery, Stage: obs.StageRecovery, Step: obs.StepFinished,
		Elapsed: time.Since(start),
	})
	return rep, nil
}

// parkPoisoned terminates a poison admission: instead of a replay, the
// request goes to the dead-letter queue under a fresh exchange ID with a
// journaled dead-letter outcome, still replayable via Resubmit once an
// operator has looked at it. Recovery of everything else proceeds.
func (h *Hub) parkPoisoned(key string, jr *journalRequest, attempts int) {
	h.mu.Lock()
	h.exchSeq++
	exID := fmt.Sprintf("ex-%d", h.exchSeq)
	h.mu.Unlock()
	reason := fmt.Errorf("core: poison admission %s: %d recovery replays did not complete", key, attempts)
	flow := obs.FlowPO
	if jr.Kind == DocInvoice {
		flow = obs.FlowInvoice
	}
	out := journalOutcome{
		ExchangeID: exID,
		Partner:    jr.PartnerID,
		Flow:       flow,
		Protocol:   jr.Protocol,
		Outcome:    outcomeDeadLetter,
		Reason:     reason.Error(),
		Request:    jr,
	}
	h.appendOutcome(key, out)
	req := jr.toRequest()
	h.parkDeadLetter(DeadLetter{
		ExchangeID: exID,
		Partner:    jr.PartnerID,
		Flow:       flow,
		Protocol:   jr.Protocol,
		Reason:     reason,
		At:         time.Now(),
		journaled:  true,
		req:        &req,
	})
	h.dur.mu.Lock()
	h.dur.poisoned++
	h.dur.mu.Unlock()
	h.bus.Emit(obs.Event{
		ExchangeID: exID, Partner: jr.PartnerID, Flow: flow,
		Kind: obs.KindDurability, Stage: obs.StageDurability,
		Step: obs.StepPoisoned, Err: reason,
	})
}

// restoreExchange recreates a journaled exchange's record. The partner
// must still be in the model; records for partners removed since are
// skipped (false).
func (h *Hub) restoreExchange(out journalOutcome) bool {
	if out.ExchangeID == "" {
		return false
	}
	route, ok := h.resolveRoute(out.Partner)
	if !ok {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.exchanges[out.ExchangeID]; exists {
		return false
	}
	h.exchanges[out.ExchangeID] = &Exchange{
		ID:       out.ExchangeID,
		Partner:  route.partner,
		Protocol: route.partner.Protocol,
		Backend:  route.partner.Backend,
		Flow:     out.Flow,
		route:    route,
	}
	return true
}

// CheckpointJournal compacts the journal to its live entries: a checkpoint
// record carrying the sequence floors, every unfinished admission, and
// every unresolved dead letter. Finished exchanges' records are dropped —
// compaction trades restart-time history for a log that grows with live
// state, not with traffic.
func (h *Hub) CheckpointJournal() error {
	if h.jrn == nil {
		return ErrNoJournal
	}
	h.mu.Lock()
	exchSeq := h.exchSeq
	h.mu.Unlock()
	h.jrnMu.Lock()
	defer h.jrnMu.Unlock()
	cp, err := json.Marshal(journalCheckpoint{ExchSeq: exchSeq, JrnSeq: h.jrnSeq})
	if err != nil {
		return err
	}
	live := []journal.Record{{Kind: recCheckpoint, Payload: cp}}
	for key, jr := range h.jrnPending {
		payload, err := json.Marshal(jr)
		if err != nil {
			continue
		}
		live = append(live, journal.Record{Kind: recAdmit, Key: key, Payload: payload})
		// The admission's replay-attempt count survives compaction, or a
		// poison record could reset its own clock every checkpoint.
		for i := 0; i < h.jrnAttempts[key]; i++ {
			live = append(live, journal.Record{Kind: recReplay, Key: key})
		}
	}
	for _, out := range h.jrnDead {
		payload, err := json.Marshal(out)
		if err != nil {
			continue
		}
		live = append(live, journal.Record{Kind: recComplete, Payload: payload})
	}
	// The config store's live state is part of the compacted log: replaying
	// it restores the exact config epoch and active versions.
	live = append(live, h.configLiveRecords()...)
	return h.jrn.Compact(live)
}

// Journal exposes the hub's write-ahead log (nil without WithJournal);
// chaos harnesses arm crash points through it.
func (h *Hub) Journal() *journal.Journal { return h.jrn }

// CloseJournal syncs and closes the journal, stopping the degraded-mode
// disk prober if one is running. The hub must not admit new work
// afterwards.
func (h *Hub) CloseJournal() error {
	if h.jrn == nil {
		return nil
	}
	h.stopDurabilityProbe()
	return h.jrn.Close()
}

// RecoveryMetrics exposes the crash-recovery gauges derived from the
// KindRecovery event stream.
//
// Deprecated: use Status().Recovery.
func (h *Hub) RecoveryMetrics() *obs.RecoveryMetrics { return h.recoveryMetrics }
