package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/obs"
	"repro/internal/wf"
)

// ErrUnknownPartner is returned for documents from unregistered partners.
var ErrUnknownPartner = fmt.Errorf("core: unknown trading partner")

// ProcessInboundPO drives one inbound purchase order (wire bytes in the
// given B2B protocol) through the full chain and returns the outbound POA
// wire bytes plus the completed exchange record.
func (h *Hub) ProcessInboundPO(ctx context.Context, protocol formats.Format, wire []byte) ([]byte, *Exchange, error) {
	poCodec, err := h.codecs.Lookup(protocol, doc.TypePO)
	if err != nil {
		return nil, nil, err
	}
	native, err := poCodec.Decode(wire)
	if err != nil {
		return nil, nil, fmt.Errorf("core: inbound %s PO: %w", protocol, err)
	}
	ex, err := h.processNative(ctx, protocol, native)
	if err != nil {
		return nil, ex, err
	}
	poaCodec, err := h.codecs.Lookup(protocol, doc.TypePOA)
	if err != nil {
		return nil, ex, err
	}
	out, err := poaCodec.Encode(ex.Outbound)
	if err != nil {
		return nil, ex, fmt.Errorf("core: outbound %s POA: %w", protocol, err)
	}
	return out, ex, nil
}

// RoundTrip is the normalized-document convenience: it encodes the PO in
// the buyer's registered protocol, processes it, and decodes the returned
// POA back to the normalized model.
func (h *Hub) RoundTrip(ctx context.Context, po *doc.PurchaseOrder) (*doc.PurchaseOrderAck, *Exchange, error) {
	partner, ok := h.Model.PartnerByID(po.Buyer.ID)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownPartner, po.Buyer.ID)
	}
	native, err := h.reg.FromNormalized(partner.Protocol, doc.TypePO, po)
	if err != nil {
		return nil, nil, err
	}
	ex, err := h.processNative(ctx, partner.Protocol, native)
	if err != nil {
		return nil, ex, err
	}
	nd, err := h.reg.ToNormalized(partner.Protocol, doc.TypePOA, ex.Outbound)
	if err != nil {
		return nil, ex, err
	}
	return nd.(*doc.PurchaseOrderAck), ex, nil
}

// processNative runs the chain for a decoded native PO.
func (h *Hub) processNative(ctx context.Context, protocol formats.Format, native any) (*Exchange, error) {
	return h.processNativeOpt(ctx, protocol, native, false)
}

// processNativeOpt is processNative plus the resubmission flag dead-letter
// replays set: a failed exchange is parked on the dead-letter queue with
// its native payload, and a resubmitted one tolerates the backend's
// duplicate-order rejection.
func (h *Hub) processNativeOpt(ctx context.Context, protocol formats.Format, native any, resubmit bool) (*Exchange, error) {
	// Identify the sending partner from the document itself (buyer ID).
	nd, err := h.reg.ToNormalized(protocol, doc.TypePO, native)
	if err != nil {
		return nil, err
	}
	po := nd.(*doc.PurchaseOrder)
	partner, ok := h.Model.PartnerByID(po.Buyer.ID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPartner, po.Buyer.ID)
	}
	if partner.Protocol != protocol {
		return nil, fmt.Errorf("core: partner %s is registered for %s, not %s", partner.ID, partner.Protocol, protocol)
	}

	ex := h.newExchange(partner, obs.FlowPO)
	ex.resubmit = resubmit
	start := time.Now()
	h.emitLifecycle(ex, obs.StepStarted, 0, nil)
	err = h.runPO(ctx, ex, protocol, native)
	h.emitLifecycle(ex, terminalStep(err), time.Since(start), err)
	if err != nil {
		h.deadLetter(ex, err, native, "")
	}
	return ex, err
}

// runPO drives the inbound PO chain of an already-created exchange.
func (h *Hub) runPO(ctx context.Context, ex *Exchange, protocol formats.Format, native any) error {
	// Start the public process; it parks on its receive step.
	pub, err := h.Engine.Start(ctx, PublicProcessName(protocol), h.exchangeData(ex))
	if err != nil {
		return err
	}
	ex.PublicID = pub.ID
	h.emitRoute(ex, "public process "+pub.ID+" started")
	if err := h.Engine.Deliver(ctx, pub.ID, PortPublicIn, native); err != nil {
		return err
	}
	if err := h.pump(ctx, ex); err != nil {
		return err
	}
	h.mu.Lock()
	done := ex.Outbound != nil
	h.mu.Unlock()
	if !done {
		got, _ := h.Engine.Instance(pub.ID)
		return fmt.Errorf("core: exchange %s produced no outbound document (public instance: %s)", ex.ID, got.Summary())
	}
	return nil
}

// newExchange allocates and registers an exchange record.
func (h *Hub) newExchange(partner TradingPartner, flow obs.Flow) *Exchange {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.exchSeq++
	ex := &Exchange{
		ID:       fmt.Sprintf("ex-%06d", h.exchSeq),
		Partner:  partner,
		Protocol: partner.Protocol,
		Backend:  partner.Backend,
		Flow:     flow,
	}
	h.exchanges[ex.ID] = ex
	return ex
}

// emitRoute records one routing hop of an exchange on the event bus.
func (h *Hub) emitRoute(ex *Exchange, hop string) {
	h.bus.Emit(obs.Event{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       ex.Flow,
		Kind:       obs.KindRoute,
		Stage:      obs.StageRoute,
		Step:       hop,
	})
}

// emitLifecycle records an exchange lifecycle transition ("started",
// "finished", "failed") on the event bus.
func (h *Hub) emitLifecycle(ex *Exchange, step string, elapsed time.Duration, err error) {
	h.bus.Emit(obs.Event{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       ex.Flow,
		Kind:       obs.KindExchange,
		Stage:      obs.StageExchange,
		Step:       step,
		Elapsed:    elapsed,
		Err:        err,
	})
}

func terminalStep(err error) string {
	if err != nil {
		return "failed"
	}
	return "finished"
}

// exchangeData is the instance data every process instance of an exchange
// starts with: the exchange ID plus the rule parameters source and target.
func (h *Hub) exchangeData(ex *Exchange) map[string]any {
	data := map[string]any{
		"exchange": ex.ID,
		"source":   ex.Partner.ID,
		"target":   ex.Backend,
		"protocol": string(ex.Protocol),
	}
	if ex.resubmit {
		data["resubmit"] = true
	}
	return data
}

// pump drains the exchange's routing queue: each task either starts the
// next process of the chain (lazily) and delivers the payload to it, or
// delivers the payload back to an upstream process waiting on a reply
// port. Only the goroutine driving the exchange pumps its queue.
func (h *Hub) pump(ctx context.Context, ex *Exchange) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: exchange %s: %w", ex.ID, err)
		}
		t, ok := h.dequeue(ex)
		if !ok {
			return nil
		}
		if err := h.route(ctx, ex, t); err != nil {
			return fmt.Errorf("core: exchange %s, port %s: %w", ex.ID, t.port, err)
		}
	}
}

func (h *Hub) route(ctx context.Context, ex *Exchange, t routeTask) error {
	switch t.port {
	case PortPublicToBinding:
		id, err := h.ensureInstance(ctx, &ex.BindingID, BindingName(ex.Protocol), ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "public → binding")
		return h.Engine.Deliver(ctx, id, PortBindingFromPublic, t.payload)

	case PortBindingToPrivate:
		id, err := h.ensureInstance(ctx, &ex.PrivateID, PrivateProcessName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "binding → private")
		return h.Engine.Deliver(ctx, id, PortPrivateIn, t.payload)

	case PortPrivateToApp:
		id, err := h.ensureInstance(ctx, &ex.AppID, AppBindingName(ex.Backend), ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "private → application binding")
		return h.Engine.Deliver(ctx, id, PortAppIn, t.payload)

	case PortAppOut:
		h.emitRoute(ex, "application binding → private")
		return h.Engine.Deliver(ctx, ex.PrivateID, PortPrivateFromApp, t.payload)

	case PortPrivateOut:
		h.emitRoute(ex, "private → binding")
		return h.Engine.Deliver(ctx, ex.BindingID, PortBindingFromPrivate, t.payload)

	case PortBindingToPublic:
		h.emitRoute(ex, "binding → public")
		return h.Engine.Deliver(ctx, ex.PublicID, PortPublicFromBinding, t.payload)

	case PortPublicOut:
		h.mu.Lock()
		ex.Outbound = t.payload
		h.mu.Unlock()
		h.emitRoute(ex, "public → network")
		return nil

	case PortInvAppOut:
		id, err := h.ensureInstance(ctx, &ex.PrivateID, InvoicePrivateProcessName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "application binding → invoice private process")
		return h.Engine.Deliver(ctx, id, PortInvPrivIn, t.payload)

	case PortInvPrivOut:
		id, err := h.ensureInstance(ctx, &ex.BindingID, InvoiceBindingName(ex.Protocol), ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "invoice private process → binding")
		return h.Engine.Deliver(ctx, id, PortInvBindIn, t.payload)

	case PortInvBindOut:
		id, err := h.ensureInstance(ctx, &ex.PublicID, InvoicePublicProcessName(ex.Protocol), ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "invoice binding → public")
		return h.Engine.Deliver(ctx, id, PortInvPubIn, t.payload)

	case PortPublicSignal:
		h.mu.Lock()
		ex.Signals = append(ex.Signals, t.payload)
		h.mu.Unlock()
		h.emitRoute(ex, "public → network (protocol signal)")
		return nil
	}
	return fmt.Errorf("core: unrouteable port %q", t.port)
}

// ensureInstance starts the named process for the exchange once and caches
// its instance ID.
func (h *Hub) ensureInstance(ctx context.Context, slot *string, typeName string, ex *Exchange) (string, error) {
	if *slot != "" {
		return *slot, nil
	}
	in, err := h.Engine.Start(ctx, typeName, h.exchangeData(ex))
	if err != nil {
		return "", err
	}
	*slot = in.ID
	return in.ID, nil
}

// ExchangeByID returns a completed exchange record.
func (h *Hub) ExchangeByID(id string) (*Exchange, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ex, ok := h.exchanges[id]
	return ex, ok
}

// PrivateInstance loads the private process instance of an exchange (tests
// inspect approval state through it).
func (h *Hub) PrivateInstance(ex *Exchange) (*wf.Instance, error) {
	if ex.PrivateID == "" {
		return nil, fmt.Errorf("core: exchange %s has no private instance", ex.ID)
	}
	return h.Engine.Instance(ex.PrivateID)
}
