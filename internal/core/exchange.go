package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cfgstore"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/obs"
	"repro/internal/wf"
)

// resolvedRoute is the binding-resolution cache entry for one trading
// partner: the partner record plus every workflow type name its exchanges
// route through, resolved once per deploy instead of per exchange.
type resolvedRoute struct {
	partner TradingPartner

	publicName  string
	bindingName string
	appBinding  string

	invPublicName  string
	invBindingName string
	invAppBinding  string

	// epoch is the engine's plan epoch at resolution time. Every successful
	// deploy advances the epoch, so a cached route older than the current
	// epoch may name type versions whose plans were superseded — it is
	// treated as a miss and re-resolved. This catches deploys that bypass
	// invalidateRoutes (direct Engine.Deploy in tests or embedders).
	epoch int64

	// cfg is the config-store snapshot at resolution time: the config epoch
	// plus every active artifact version. Admissions copy it onto their
	// exchange so all stages resolve versions from one consistent view; a
	// route whose snapshot epoch is behind the store is stale (hot-swaps
	// invalidate cached routes without an explicit invalidateRoutes call).
	cfg cfgstore.Snapshot
}

// resolveRoute returns the partner's route, read-through: a miss resolves
// against the model under the write lock. Deploy-time changes (AddPartner,
// AddBackend, EnableInvoicing, …) invalidate the cache wholesale.
func (h *Hub) resolveRoute(partnerID string) (resolvedRoute, bool) {
	epoch := h.Engine.PlanEpoch()
	cfgEpoch := h.cfg.Epoch()
	h.routeMu.RLock()
	r, ok := h.routes[partnerID]
	h.routeMu.RUnlock()
	if ok && r.epoch == epoch && r.cfg.Epoch == cfgEpoch {
		return r, true
	}
	partner, ok := h.Model.PartnerByID(partnerID)
	if !ok {
		return resolvedRoute{}, false
	}
	r = resolvedRoute{
		partner:        partner,
		publicName:     PublicProcessName(partner.Protocol),
		bindingName:    BindingName(partner.Protocol),
		appBinding:     AppBindingName(partner.Backend),
		invPublicName:  InvoicePublicProcessName(partner.Protocol),
		invBindingName: InvoiceBindingName(partner.Protocol),
		invAppBinding:  InvoiceAppBindingName(partner.Backend),
		epoch:          epoch,
		cfg:            h.cfg.Snapshot(),
	}
	h.routeMu.Lock()
	if h.routes == nil {
		h.routes = map[string]resolvedRoute{}
	}
	h.routes[partnerID] = r
	h.routeMu.Unlock()
	return r, true
}

// invalidateRoutes drops the binding-resolution cache; the next exchange
// re-resolves against the current model. Every deploy-time change calls it.
func (h *Hub) invalidateRoutes() {
	h.routeMu.Lock()
	h.routes = nil
	h.routeMu.Unlock()
}

// CachedRoutes reports the number of cached partner routes (cache
// observability for tests).
func (h *Hub) CachedRoutes() int {
	h.routeMu.RLock()
	defer h.routeMu.RUnlock()
	return len(h.routes)
}

// exchangeOpts carries per-exchange execution options through the pipeline.
type exchangeOpts struct {
	// resubmit marks a dead-letter replay: its app binding tolerates the
	// backend's duplicate-order rejection.
	resubmit bool
	// journaled marks an exchange whose admission was write-ahead-logged.
	journaled bool
	// retry overrides the hub's retry policies for this exchange only.
	retry *RetryPolicy
	// canaryKey is the stable business identifier (PO ID) canary routing
	// hashes on, so a resubmitted document lands on the same arm as its
	// original run. Empty falls back to the exchange ID.
	canaryKey string
}

// ProcessInboundPO drives one inbound purchase order (wire bytes in the
// given B2B protocol) through the full chain and returns the outbound POA
// wire bytes plus the completed exchange record.
//
// Deprecated: use Do with a DocWirePO Request.
func (h *Hub) ProcessInboundPO(ctx context.Context, protocol formats.Format, wire []byte) ([]byte, *Exchange, error) {
	return h.processInboundPO(ctx, protocol, wire, exchangeOpts{})
}

func (h *Hub) processInboundPO(ctx context.Context, protocol formats.Format, wire []byte, opts exchangeOpts) ([]byte, *Exchange, error) {
	poCodec, err := h.codecs.Lookup(protocol, doc.TypePO)
	if err != nil {
		return nil, nil, err
	}
	native, err := poCodec.Decode(wire)
	if err != nil {
		return nil, nil, fmt.Errorf("core: inbound %s PO: %w", protocol, err)
	}
	ex, err := h.processNativeOpt(ctx, protocol, native, opts)
	if err != nil {
		return nil, ex, err
	}
	poaCodec, err := h.codecs.Lookup(protocol, doc.TypePOA)
	if err != nil {
		return nil, ex, err
	}
	out, err := poaCodec.Encode(ex.Outbound)
	if err != nil {
		return nil, ex, fmt.Errorf("core: outbound %s POA: %w", protocol, err)
	}
	return out, ex, nil
}

// RoundTrip is the normalized-document convenience: it encodes the PO in
// the buyer's registered protocol, processes it, and decodes the returned
// POA back to the normalized model.
//
// Deprecated: use Do with a DocPO Request.
func (h *Hub) RoundTrip(ctx context.Context, po *doc.PurchaseOrder) (*doc.PurchaseOrderAck, *Exchange, error) {
	return h.roundTrip(ctx, po, exchangeOpts{})
}

func (h *Hub) roundTrip(ctx context.Context, po *doc.PurchaseOrder, opts exchangeOpts) (*doc.PurchaseOrderAck, *Exchange, error) {
	route, ok := h.resolveRoute(po.Buyer.ID)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownPartner, po.Buyer.ID)
	}
	native, err := h.reg.FromNormalized(route.partner.Protocol, doc.TypePO, po)
	if err != nil {
		return nil, nil, err
	}
	ex, err := h.processNativeOpt(ctx, route.partner.Protocol, native, opts)
	if err != nil {
		return nil, ex, err
	}
	nd, err := h.reg.ToNormalized(route.partner.Protocol, doc.TypePOA, ex.Outbound)
	if err != nil {
		return nil, ex, err
	}
	return nd.(*doc.PurchaseOrderAck), ex, nil
}

// processNative runs the chain for a decoded native PO.
func (h *Hub) processNative(ctx context.Context, protocol formats.Format, native any) (*Exchange, error) {
	return h.processNativeOpt(ctx, protocol, native, exchangeOpts{})
}

// processNativeOpt is processNative plus the per-exchange options: the
// dead-letter resubmission flag and the per-call retry override.
func (h *Hub) processNativeOpt(ctx context.Context, protocol formats.Format, native any, opts exchangeOpts) (*Exchange, error) {
	// Identify the sending partner from the document itself (buyer ID).
	nd, err := h.reg.ToNormalized(protocol, doc.TypePO, native)
	if err != nil {
		return nil, err
	}
	po := nd.(*doc.PurchaseOrder)
	route, ok := h.resolveRoute(po.Buyer.ID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPartner, po.Buyer.ID)
	}
	if route.partner.Protocol != protocol {
		return nil, fmt.Errorf("%w: partner %s is registered for %s, not %s",
			ErrProtocolMismatch, route.partner.ID, route.partner.Protocol, protocol)
	}

	opts.canaryKey = po.ID
	ex := h.newExchange(route, obs.FlowPO, opts)
	start := time.Now()
	h.emitLifecycle(ex, obs.StepStarted, 0, nil)
	err = h.runPO(ctx, ex, native)
	err = wrapExchangeErr(ex, obs.StageExchange, "", err)
	h.emitLifecycle(ex, terminalStep(err), time.Since(start), err)
	h.recordCanaryOutcome(ex, err)
	if err != nil {
		h.deadLetter(ex, err, native, "")
	}
	return ex, err
}

// runPO drives the inbound PO chain of an already-created exchange.
func (h *Hub) runPO(ctx context.Context, ex *Exchange, native any) error {
	// Start the public process at the exchange's pinned version; it parks on
	// its receive step.
	pub, err := h.Engine.StartVersion(ctx, ex.route.publicName, h.pinnedVersion(ex, ex.route.publicName), h.exchangeData(ex))
	if err != nil {
		return err
	}
	ex.PublicID = pub.ID
	h.emitRoute(ex, "public process "+pub.ID+" started")
	if err := h.Engine.Deliver(ctx, pub.ID, PortPublicIn, native); err != nil {
		return err
	}
	if err := h.pump(ctx, ex); err != nil {
		return err
	}
	h.mu.Lock()
	done := ex.Outbound != nil
	h.mu.Unlock()
	if !done {
		got, _ := h.Engine.Instance(pub.ID)
		return fmt.Errorf("%w (exchange %s, public instance: %s)", ErrNoOutbound, ex.ID, got.Summary())
	}
	return nil
}

// newExchange allocates and registers an exchange record.
func (h *Hub) newExchange(route resolvedRoute, flow obs.Flow, opts exchangeOpts) *Exchange {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.exchSeq++
	ex := &Exchange{
		ID:        fmt.Sprintf("ex-%06d", h.exchSeq),
		Partner:   route.partner,
		Protocol:  route.partner.Protocol,
		Backend:   route.partner.Backend,
		Flow:      flow,
		route:     route,
		cfg:       route.cfg,
		resubmit:  opts.resubmit,
		journaled: opts.journaled,
		retry:     opts.retry,
	}
	h.armCanary(ex, opts.canaryKey)
	h.exchanges[ex.ID] = ex
	return ex
}

// emitRoute records one routing hop of an exchange on the event bus.
func (h *Hub) emitRoute(ex *Exchange, hop string) {
	h.bus.Emit(obs.Event{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       ex.Flow,
		Kind:       obs.KindRoute,
		Stage:      obs.StageRoute,
		Step:       hop,
	})
}

// emitLifecycle records an exchange lifecycle transition ("started",
// "finished", "failed") on the event bus.
func (h *Hub) emitLifecycle(ex *Exchange, step string, elapsed time.Duration, err error) {
	h.bus.Emit(obs.Event{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       ex.Flow,
		Kind:       obs.KindExchange,
		Stage:      obs.StageExchange,
		Step:       step,
		Elapsed:    elapsed,
		Err:        err,
	})
}

func terminalStep(err error) string {
	if err != nil {
		return "failed"
	}
	return "finished"
}

// exchangeData is the instance data every process instance of an exchange
// starts with: the exchange ID plus the rule parameters source and target.
func (h *Hub) exchangeData(ex *Exchange) map[string]any {
	data := map[string]any{
		"exchange": ex.ID,
		"source":   ex.Partner.ID,
		"target":   ex.Backend,
		"protocol": string(ex.Protocol),
	}
	if ex.resubmit {
		data["resubmit"] = true
	}
	return data
}

// pump drains the exchange's routing queue: each task either starts the
// next process of the chain (lazily) and delivers the payload to it, or
// delivers the payload back to an upstream process waiting on a reply
// port. Only the goroutine driving the exchange pumps its queue.
func (h *Hub) pump(ctx context.Context, ex *Exchange) error {
	for {
		if err := ctx.Err(); err != nil {
			return wrapExchangeErr(ex, obs.StageExchange, "", err)
		}
		t, ok := h.dequeue(ex)
		if !ok {
			return nil
		}
		if err := h.route(ctx, ex, t); err != nil {
			return wrapExchangeErr(ex, stageForPort(t.port), t.port, err)
		}
	}
}

func (h *Hub) route(ctx context.Context, ex *Exchange, t routeTask) error {
	switch t.port {
	case PortPublicToBinding:
		id, err := h.ensureInstance(ctx, &ex.BindingID, ex.route.bindingName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "public → binding")
		return h.Engine.Deliver(ctx, id, PortBindingFromPublic, t.payload)

	case PortBindingToPrivate:
		id, err := h.ensureInstance(ctx, &ex.PrivateID, PrivateProcessName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "binding → private")
		return h.Engine.Deliver(ctx, id, PortPrivateIn, t.payload)

	case PortPrivateToApp:
		id, err := h.ensureInstance(ctx, &ex.AppID, ex.route.appBinding, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "private → application binding")
		return h.Engine.Deliver(ctx, id, PortAppIn, t.payload)

	case PortAppOut:
		h.emitRoute(ex, "application binding → private")
		return h.Engine.Deliver(ctx, ex.PrivateID, PortPrivateFromApp, t.payload)

	case PortPrivateOut:
		h.emitRoute(ex, "private → binding")
		return h.Engine.Deliver(ctx, ex.BindingID, PortBindingFromPrivate, t.payload)

	case PortBindingToPublic:
		h.emitRoute(ex, "binding → public")
		return h.Engine.Deliver(ctx, ex.PublicID, PortPublicFromBinding, t.payload)

	case PortPublicOut:
		h.mu.Lock()
		ex.Outbound = t.payload
		h.mu.Unlock()
		h.emitRoute(ex, "public → network")
		return nil

	case PortInvAppOut:
		id, err := h.ensureInstance(ctx, &ex.PrivateID, InvoicePrivateProcessName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "application binding → invoice private process")
		return h.Engine.Deliver(ctx, id, PortInvPrivIn, t.payload)

	case PortInvPrivOut:
		id, err := h.ensureInstance(ctx, &ex.BindingID, ex.route.invBindingName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "invoice private process → binding")
		return h.Engine.Deliver(ctx, id, PortInvBindIn, t.payload)

	case PortInvBindOut:
		id, err := h.ensureInstance(ctx, &ex.PublicID, ex.route.invPublicName, ex)
		if err != nil {
			return err
		}
		h.emitRoute(ex, "invoice binding → public")
		return h.Engine.Deliver(ctx, id, PortInvPubIn, t.payload)

	case PortPublicSignal:
		h.mu.Lock()
		ex.Signals = append(ex.Signals, t.payload)
		h.mu.Unlock()
		h.emitRoute(ex, "public → network (protocol signal)")
		return nil
	}
	return fmt.Errorf("core: unrouteable port %q", t.port)
}

// ensureInstance starts the named process for the exchange once — at the
// exchange's pinned version — and caches its instance ID.
func (h *Hub) ensureInstance(ctx context.Context, slot *string, typeName string, ex *Exchange) (string, error) {
	if *slot != "" {
		return *slot, nil
	}
	in, err := h.Engine.StartVersion(ctx, typeName, h.pinnedVersion(ex, typeName), h.exchangeData(ex))
	if err != nil {
		return "", err
	}
	*slot = in.ID
	return in.ID, nil
}

// ExchangeByID returns a completed exchange record.
func (h *Hub) ExchangeByID(id string) (*Exchange, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ex, ok := h.exchanges[id]
	return ex, ok
}

// PrivateInstance loads the private process instance of an exchange (tests
// inspect approval state through it).
func (h *Hub) PrivateInstance(ex *Exchange) (*wf.Instance, error) {
	if ex.PrivateID == "" {
		return nil, fmt.Errorf("core: exchange %s has no private instance", ex.ID)
	}
	return h.Engine.Instance(ex.PrivateID)
}
