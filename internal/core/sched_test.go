package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/doc"
	"repro/internal/leakcheck"
	"repro/internal/obs"
)

// hangBackend wraps one named backend in a Faulty decorator that hangs every
// operation until the caller's context is cancelled; everything else is left
// untouched.
func hangBackend(h *Hub, name string) {
	h.WrapBackends(func(sys backend.System) backend.System {
		if sys.Name() != name {
			return sys
		}
		return backend.NewFaulty(sys, backend.FaultSchedule{HangProb: 1, Seed: 1})
	})
}

// submitHung fires n DocPO submissions for the partner from their own
// goroutines (backpressure blocks some of them) under a dedicated context,
// and returns the cancel that unwedges everything.
func submitHung(h *Hub, party doc.Party, n int) (context.CancelFunc, *sync.WaitGroup) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	g := doc.NewGenerator(41)
	for i := 0; i < n; i++ {
		po := g.PO(party, seller)
		wg.Add(1)
		go func(po *doc.PurchaseOrder) {
			defer wg.Done()
			fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: po})
			if err != nil {
				return // cancelled while blocked on backpressure: fine
			}
			fut.Result(context.Background())
		}(po)
	}
	return cancel, &wg
}

// p99 returns the 99th-percentile (here: near-max) of the samples.
func p99(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := len(samples) * 99 / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// measureLatencies runs n sequential round trips for the partner and
// returns per-call latencies; tag keeps order IDs unique across runs.
func measureLatencies(t *testing.T, h *Hub, party doc.Party, tag string, n int) []time.Duration {
	t.Helper()
	ctx := context.Background()
	g := doc.NewGenerator(23)
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		po := g.PO(party, seller)
		po.ID = fmt.Sprintf("%s-%s", po.ID, tag)
		start := time.Now()
		fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: po})
		if err != nil {
			t.Fatal(err)
		}
		if res := fut.Result(ctx); res.Err != nil {
			t.Fatal(res.Err)
		}
		out = append(out, time.Since(start))
	}
	return out
}

// TestShardIsolationHungPartner: with TP2's backend hung (backend.Faulty
// hang schedule), TP1's exchanges on the other shards keep completing with a
// p99 within 2x of the unloaded baseline — one wedged partner cannot stall
// the rest of the hub.
func TestShardIsolationHungPartner(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newFig14Hub(t, WithShards(4), WithWorkersPerShard(2), WithQueueDepth(2))
	defer h.StopWorkers()
	hangBackend(h, "Oracle") // TP2 → Oracle; TP1 → SAP stays healthy

	const samples = 40
	base := p99(measureLatencies(t, h, tp1, "base", samples))

	// Wedge TP2: its dispatched jobs hang, the rest back up on its shard.
	cancel, wg := submitHung(h, tp2, 12)
	defer func() { cancel(); wg.Wait() }()
	time.Sleep(20 * time.Millisecond) // let the hung jobs reach the workers

	loaded := p99(measureLatencies(t, h, tp1, "loaded", samples))

	// The acceptance bound: healthy partners' p99 within 2x of baseline. The
	// floor absorbs scheduler jitter on sub-millisecond baselines.
	limit := 2 * base
	if floor := 250 * time.Millisecond; limit < floor {
		limit = floor
	}
	if loaded > limit {
		t.Fatalf("TP1 p99 %v under TP2 hang, baseline %v (limit %v)", loaded, base, limit)
	}

	// The gauges agree: every TP1 exchange completed, TP2's hung jobs are
	// either busy on their shard or still queued, and none of them completed.
	snaps := h.SchedMetrics().Snapshot()
	var completed, busy, queued int64
	for _, s := range snaps {
		completed += s.Completed
		busy += s.Busy
		queued += s.Queued
	}
	if completed != 2*samples {
		t.Fatalf("completed %d, want %d", completed, 2*samples)
	}
	if busy == 0 && queued == 0 {
		t.Fatalf("no hung work visible in gauges: %+v", snaps)
	}
	if h.ShardCount() != 4 {
		t.Fatalf("shard count %d", h.ShardCount())
	}
}

// TestSchedulerBackpressure: a full shard queue blocks further submissions
// (bounded admission) and a blocked submission honors its context.
func TestSchedulerBackpressure(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newFig14Hub(t, WithShards(1), WithWorkersPerShard(1), WithQueueDepth(1))
	defer h.StopWorkers()
	hangBackend(h, "SAP") // TP1 → SAP: every dispatched job wedges

	cancelHung, wg := submitHung(h, tp1, 2) // 1 dispatched + 1 queued
	defer func() { cancelHung(); wg.Wait() }()
	time.Sleep(20 * time.Millisecond)

	// The next submission must block on admission, then fail with the
	// submission context's error once cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	g := doc.NewGenerator(31)
	errCh := make(chan error, 1)
	go func() {
		_, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)})
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("submission did not block on a full shard (err %v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked submission ignored its context")
	}
}

// dispatchRecorder is a bus sink collecting the scheduler's dispatch order.
type dispatchRecorder struct {
	mu    sync.Mutex
	order []string
}

func (r *dispatchRecorder) Emit(e obs.Event) {
	if e.Kind == obs.KindSched && e.Step == obs.StepDispatched {
		r.mu.Lock()
		r.order = append(r.order, e.Partner)
		r.mu.Unlock()
	}
}

// TestSchedulerPriorityLane: with the single worker wedged, a high-priority
// job queued after a backlog of normal jobs is dispatched first once the
// worker frees up.
func TestSchedulerPriorityLane(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newFig14Hub(t, WithShards(1), WithWorkersPerShard(1), WithQueueDepth(4))
	defer h.StopWorkers()
	if _, err := h.AddPartner(Figure15Partner()); err != nil {
		t.Fatal(err)
	}

	// Wedge the single worker with one hung TP2 exchange so queued jobs pile
	// up behind it in lane order.
	hangBackend(h, "Oracle")
	cancelHung, wg := submitHung(h, tp2, 1)
	defer func() { cancelHung(); wg.Wait() }()
	time.Sleep(20 * time.Millisecond)

	// Two normal TP1 jobs, then one high-priority TP3 job, all queued while
	// the worker is wedged.
	ctx := context.Background()
	g := doc.NewGenerator(37)
	var futs []*Future
	for i := 0; i < 2; i++ {
		fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	hiFut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp3, seller), Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}

	rec := &dispatchRecorder{}
	h.Bus().Attach(rec)

	cancelHung() // free the worker
	wg.Wait()
	for _, fut := range futs {
		if res := fut.Result(ctx); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if res := hiFut.Result(ctx); res.Err != nil {
		t.Fatal(res.Err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.order) != 3 {
		t.Fatalf("dispatch order %v, want 3 dispatches", rec.order)
	}
	// The first dispatch after the wedge clears is the high lane (TP3), the
	// normal-lane backlog follows.
	if rec.order[0] != tp3.ID || rec.order[1] != tp1.ID || rec.order[2] != tp1.ID {
		t.Fatalf("dispatch order %v, want [TP3 TP1 TP1]", rec.order)
	}
}

// TestRouteCacheInvalidation: the binding-resolution cache fills on use and
// is invalidated wholesale by deploy-time changes.
func TestRouteCacheInvalidation(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(43)

	if got := h.CachedRoutes(); got != 0 {
		t.Fatalf("fresh hub caches %d routes", got)
	}
	if _, _, err := roundTrip(h, ctx, g.PO(tp1, seller)); err != nil {
		t.Fatal(err)
	}
	if got := h.CachedRoutes(); got != 1 {
		t.Fatalf("cached %d routes after one exchange, want 1", got)
	}

	// AddPartner invalidates wholesale.
	if _, err := h.AddPartner(Figure15Partner()); err != nil {
		t.Fatal(err)
	}
	if got := h.CachedRoutes(); got != 0 {
		t.Fatalf("cached %d routes after AddPartner, want 0", got)
	}
	// The cache repopulates, including for the new partner.
	if _, _, err := roundTrip(h, ctx, g.PO(tp3, seller)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := roundTrip(h, ctx, g.PO(tp1, seller)); err != nil {
		t.Fatal(err)
	}
	if got := h.CachedRoutes(); got != 2 {
		t.Fatalf("cached %d routes, want 2", got)
	}

	// EnableInvoicing changes the route shape (invoice type names) and must
	// invalidate too.
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	if got := h.CachedRoutes(); got != 0 {
		t.Fatalf("cached %d routes after EnableInvoicing, want 0", got)
	}
	po := g.PO(tp1, seller)
	if _, _, err := roundTrip(h, ctx, po); err != nil {
		t.Fatal(err)
	}
	if _, _, err := invoiceFor(h, ctx, tp1.ID, po.ID); err != nil {
		t.Fatal(err)
	}
}

// TestTransformProgramCache: transform programs compile once per
// (from, to, doctype) key, are shared across exchanges, and the compile
// cache resets when a new transformer is registered.
func TestTransformProgramCache(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(47)

	if got := h.reg.CompiledPrograms(); got != 0 {
		t.Fatalf("fresh registry caches %d programs", got)
	}
	if _, _, err := roundTrip(h, ctx, g.PO(tp1, seller)); err != nil {
		t.Fatal(err)
	}
	after1 := h.reg.CompiledPrograms()
	if after1 == 0 {
		t.Fatal("no transform programs cached after an exchange")
	}
	if _, _, err := roundTrip(h, ctx, g.PO(tp1, seller)); err != nil {
		t.Fatal(err)
	}
	if got := h.reg.CompiledPrograms(); got != after1 {
		t.Fatalf("second identical exchange grew the cache %d → %d", after1, got)
	}
}
