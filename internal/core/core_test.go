package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/metrics"
	"repro/internal/transform"
	"repro/internal/wf"
)

var (
	tp1    = doc.Party{ID: "TP1", Name: "Trading Partner 1", DUNS: "111111111"}
	tp2    = doc.Party{ID: "TP2", Name: "Trading Partner 2", DUNS: "222222222"}
	tp3    = doc.Party{ID: "TP3", Name: "Trading Partner 3", DUNS: "333333333"}
	seller = doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"}
)

func newFig14Hub(t *testing.T, opts ...HubOption) *Hub {
	t.Helper()
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// roundTrip, inboundPO and invoiceFor drive the unified Do API, returning
// the old entry points' triples so assertions read unchanged.
func roundTrip(h *Hub, ctx context.Context, po *doc.PurchaseOrder) (*doc.PurchaseOrderAck, *Exchange, error) {
	res, err := h.Do(ctx, Request{Kind: DocPO, PO: po})
	return res.POA, res.Exchange, err
}

func inboundPO(h *Hub, ctx context.Context, p formats.Format, wire []byte) ([]byte, *Exchange, error) {
	res, err := h.Do(ctx, Request{Kind: DocWirePO, Protocol: p, Wire: wire})
	return res.Wire, res.Exchange, err
}

func invoiceFor(h *Hub, ctx context.Context, partnerID, poID string) ([]byte, *Exchange, error) {
	res, err := h.Do(ctx, Request{Kind: DocInvoice, PartnerID: partnerID, POID: poID})
	return res.Wire, res.Exchange, err
}

// TestFig11PublicProcesses checks the public process shape: protocol
// receive/send plus connection steps, nothing else — no transformations,
// no business rules.
func TestFig11PublicProcesses(t *testing.T) {
	for _, p := range []formats.Format{formats.EDI, formats.RosettaNet, formats.OAGIS} {
		def, err := BuildPublicProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		if def.CountSteps() != 4 {
			t.Fatalf("%s public process has %d steps", p, def.CountSteps())
		}
		for _, s := range def.Steps {
			if strings.Contains(s.Name, "Transform") {
				t.Fatalf("public process contains a transformation step %q", s.Name)
			}
		}
		for _, a := range def.Arcs {
			if a.Condition != "" {
				t.Fatalf("public process contains a business rule condition %q", a.Condition)
			}
		}
	}
}

// TestFig12BindingsContainTheTransformations checks that transformations
// live in bindings and only in bindings.
func TestFig12BindingsContainTheTransformations(t *testing.T) {
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	for p, b := range m.Bindings {
		n := 0
		for _, s := range b.Steps {
			if strings.Contains(s.Name, "Transform") {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("binding %s has %d transformation steps, want 2", p, n)
		}
	}
	// The private process has none.
	for _, s := range m.Private.Steps {
		if strings.Contains(s.Name, "Transform") {
			t.Fatalf("private process contains transformation step %q", s.Name)
		}
	}
}

// TestFig13PrivateProcessIsPartnerIndependent checks the paper's central
// design invariant: the private process mentions no partner, protocol,
// backend or threshold anywhere.
func TestFig13PrivateProcessIsPartnerIndependent(t *testing.T) {
	def, err := BuildPrivateProcess()
	if err != nil {
		t.Fatal(err)
	}
	forbidden := []string{"TP1", "TP2", "TP3", "EDI", "RosettaNet", "OAGIS", "SAP", "Oracle", "55000", "40000"}
	check := func(s string) {
		for _, f := range forbidden {
			if strings.Contains(s, f) {
				t.Errorf("private process leaks %q in %q", f, s)
			}
		}
	}
	for _, s := range def.Steps {
		check(s.Name)
		check(s.Handler)
		check(s.Port)
	}
	for _, a := range def.Arcs {
		check(a.Condition)
	}
}

// TestFig14EndToEnd drives both partners through the full advanced stack.
func TestFig14EndToEnd(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(1)

	// TP1 via EDI to SAP, above threshold.
	po := g.POWithAmount(tp1, seller, 60000)
	poa, ex, err := roundTrip(h, ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID || poa.Status != doc.AckAccepted {
		t.Fatalf("poa %+v", poa)
	}
	priv, err := h.PrivateInstance(ex)
	if err != nil {
		t.Fatal(err)
	}
	if priv.Data["needsApproval"] != true || priv.Data["approved"] != true {
		t.Fatalf("approval not run: %v", priv.Data)
	}
	if priv.Data["ruleApplied"] != "approval TP1→SAP" {
		t.Fatalf("rule %v", priv.Data["ruleApplied"])
	}
	if h.Systems["SAP"].StoredOrders() != 1 || h.Systems["Oracle"].StoredOrders() != 0 {
		t.Fatal("order stored in wrong backend")
	}

	// TP2 via RosettaNet to Oracle, below threshold.
	po2 := g.POWithAmount(tp2, seller, 1000)
	poa2, ex2, err := roundTrip(h, ctx, po2)
	if err != nil {
		t.Fatal(err)
	}
	if poa2.POID != po2.ID {
		t.Fatal("wrong correlation")
	}
	priv2, err := h.PrivateInstance(ex2)
	if err != nil {
		t.Fatal(err)
	}
	if priv2.Data["needsApproval"] != false {
		t.Fatal("1000 < 40000 should not need approval")
	}
	if priv2.StepStateOf("Approve PO") != wf.StepSkipped {
		t.Fatalf("approve state %s", priv2.StepStateOf("Approve PO"))
	}
	if h.Systems["Oracle"].StoredOrders() != 1 {
		t.Fatal("TP2 order not stored in Oracle")
	}
	// The exchange trace covers the full chain.
	want := []string{"public → binding", "binding → private", "private → application binding",
		"application binding → private", "private → binding", "binding → public", "public → network"}
	joined := strings.Join(h.Trace(ex2.ID), ";")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Fatalf("trace missing %q: %v", w, h.Trace(ex2.ID))
		}
	}
}

// TestFig14WireLevel drives the EDI partner through the codec layer: wire
// in, wire out.
func TestFig14WireLevel(t *testing.T) {
	h := newFig14Hub(t)
	g := doc.NewGenerator(2)
	po := g.POWithAmount(tp1, seller, 100)
	reg := &transform.Registry{}
	transform.RegisterAll(reg)
	native, err := reg.FromNormalized(formats.EDI, doc.TypePO, po)
	if err != nil {
		t.Fatal(err)
	}
	codecs := NewCodecRegistry()
	poCodec, err := codecs.Lookup(formats.EDI, doc.TypePO)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := poCodec.Encode(native)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := inboundPO(h, context.Background(), formats.EDI, wire)
	if err != nil {
		t.Fatal(err)
	}
	poaCodec, err := codecs.Lookup(formats.EDI, doc.TypePOA)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := poaCodec.Decode(out)
	if err != nil {
		t.Fatalf("outbound POA not valid EDI: %v\n%s", err, out)
	}
	nd, err := reg.ToNormalized(formats.EDI, doc.TypePOA, nat)
	if err != nil {
		t.Fatal(err)
	}
	if nd.(*doc.PurchaseOrderAck).POID != po.ID {
		t.Fatal("wire-level round trip lost correlation")
	}
}

// TestFig15AddThirdPartner applies the Figure 15 change to a live hub:
// adding TP3 with a new protocol (OAGIS) adds one public process, one
// binding and one rule — and the private process is untouched.
func TestFig15AddThirdPartner(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()

	before := h.Model.AllTypes()
	beforeClones := make([]*wf.TypeDef, len(before))
	for i, d := range before {
		beforeClones[i] = d.Clone()
	}

	rec, err := h.AddPartner(Figure15Partner())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Local || rec.PrivateTouched {
		t.Fatalf("record %+v", rec)
	}
	if len(rec.TypesAdded) != 2 || rec.RulesAdded != 1 {
		t.Fatalf("record %+v", rec)
	}

	impact := metrics.Diff(beforeClones, h.Model.AllTypes())
	if len(impact.Modified) != 0 {
		t.Fatalf("existing types modified: %v", impact.Modified)
	}
	if len(impact.Added) != 2 {
		t.Fatalf("added %v", impact.Added)
	}
	if impact.Untouched != len(beforeClones) {
		t.Fatalf("untouched %d of %d", impact.Untouched, len(beforeClones))
	}

	// TP3 works end to end right away.
	g := doc.NewGenerator(3)
	po := g.POWithAmount(tp3, seller, 15000)
	poa, ex, err := roundTrip(h, ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.Status != doc.AckAccepted {
		t.Fatalf("status %s", poa.Status)
	}
	priv, _ := h.PrivateInstance(ex)
	if priv.Data["needsApproval"] != true {
		t.Fatal("15000 >= 10000 should need approval for TP3")
	}
	// And existing partners still work.
	if _, _, err := roundTrip(h, ctx, g.POWithAmount(tp1, seller, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestAddPartnerExistingProtocol(t *testing.T) {
	h := newFig14Hub(t)
	rec, err := h.AddPartner(TradingPartner{
		ID: "TP4", Name: "Trading Partner 4", Protocol: formats.EDI,
		Backend: "SAP", ApprovalThreshold: 70000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.TypesAdded) != 0 || rec.RulesAdded != 1 {
		t.Fatalf("existing protocol should add no types: %+v", rec)
	}
	g := doc.NewGenerator(4)
	po := g.POWithAmount(doc.Party{ID: "TP4", Name: "TP4", DUNS: "4"}, seller, 75000)
	_, ex, err := roundTrip(h, context.Background(), po)
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := h.PrivateInstance(ex)
	if priv.Data["needsApproval"] != true {
		t.Fatal("TP4 threshold not effective")
	}
}

func TestUnknownPartnerRejected(t *testing.T) {
	h := newFig14Hub(t)
	g := doc.NewGenerator(5)
	po := g.POWithAmount(doc.Party{ID: "GHOST", Name: "?"}, seller, 1)
	if _, _, err := roundTrip(h, context.Background(), po); !errors.Is(err, ErrUnknownPartner) {
		t.Fatalf("err %v", err)
	}
}

func TestProtocolMismatchRejected(t *testing.T) {
	h := newFig14Hub(t)
	g := doc.NewGenerator(6)
	po := g.POWithAmount(tp1, seller, 1) // TP1 is an EDI partner
	reg := &transform.Registry{}
	transform.RegisterAll(reg)
	native, err := reg.FromNormalized(formats.RosettaNet, doc.TypePO, po)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.processNative(context.Background(), formats.RosettaNet, native); err == nil {
		t.Fatal("protocol mismatch accepted")
	}
}

func TestChangeLocalityAudit(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(7)

	rec, err := h.AddPrivateAuditStep()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Local || !rec.PrivateTouched {
		t.Fatalf("record %+v", rec)
	}
	if len(rec.TypesModified) != 1 || rec.TypesModified[0] != PrivateProcessName {
		t.Fatalf("record %+v", rec)
	}
	// Next exchange runs the audited private process.
	po := g.POWithAmount(tp1, seller, 100)
	_, ex, err := roundTrip(h, ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := h.PrivateInstance(ex)
	if priv.Data["audited"] != true {
		t.Fatal("audit step did not run")
	}
	if priv.Version != 2 {
		t.Fatalf("private version %d", priv.Version)
	}
}

func TestChangeLocalityTransportAcks(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(8)
	p1, _ := h.Model.PartnerByID("TP1")
	rec, err := h.EnableTransportAcks(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Local || rec.PrivateTouched {
		t.Fatalf("record %+v", rec)
	}
	// Exchanges still complete; the ack steps are internal to the public
	// process.
	po := g.POWithAmount(tp1, seller, 100)
	poa, ex, err := roundTrip(h, ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID {
		t.Fatal("wrong correlation")
	}
	pub, err := h.Engine.Instance(ex.PublicID)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Version != 2 {
		t.Fatalf("public process version %d", pub.Version)
	}
	if pub.StepStateOf("Send transport ack") != wf.StepCompleted {
		t.Fatal("transport ack step did not run")
	}
}

func TestChangeThresholdIsRulesOnly(t *testing.T) {
	h := newFig14Hub(t)
	ctx := context.Background()
	g := doc.NewGenerator(9)

	before := h.Model.AllTypes()
	clones := make([]*wf.TypeDef, len(before))
	for i, d := range before {
		clones[i] = d.Clone()
	}
	rec, err := h.Model.ChangePartnerThreshold("TP1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RulesAdded != 1 || rec.RulesRemoved != 1 {
		t.Fatalf("record %+v", rec)
	}
	impact := metrics.Diff(clones, h.Model.AllTypes())
	if impact.TouchedTypes() != 0 {
		t.Fatalf("rule change touched types: %+v", impact)
	}
	// The new threshold is live immediately — no redeployment needed.
	po := g.POWithAmount(tp1, seller, 200)
	_, ex, err := roundTrip(h, ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := h.PrivateInstance(ex)
	if priv.Data["needsApproval"] != true {
		t.Fatal("lowered threshold not effective")
	}
}

func TestRemovePartner(t *testing.T) {
	h := newFig14Hub(t)
	rec, err := h.Model.RemovePartner("TP1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.RulesRemoved != 1 {
		t.Fatalf("record %+v", rec)
	}
	g := doc.NewGenerator(10)
	if _, _, err := roundTrip(h, context.Background(), g.POWithAmount(tp1, seller, 1)); !errors.Is(err, ErrUnknownPartner) {
		t.Fatalf("err %v", err)
	}
	if _, err := h.Model.RemovePartner("GHOST"); err == nil {
		t.Fatal("unknown partner removed")
	}
}

func TestAddBackendLive(t *testing.T) {
	m, err := BuildModel(
		[]TradingPartner{{ID: "TP1", Name: "T", Protocol: formats.EDI, Backend: "SAP", ApprovalThreshold: 55000}},
		[]Backend{{Name: "SAP", Format: formats.SAPIDoc}},
	)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := h.AddBackend(Backend{Name: "Oracle", Format: formats.OracleOIF})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.TypesAdded) != 1 || rec.TypesAdded[0] != AppBindingName("Oracle") {
		t.Fatalf("record %+v", rec)
	}
	// A partner targeting the new backend works.
	if _, err := h.AddPartner(TradingPartner{
		ID: "TP2", Name: "T2", Protocol: formats.EDI, Backend: "Oracle", ApprovalThreshold: 40000,
	}); err != nil {
		t.Fatal(err)
	}
	g := doc.NewGenerator(11)
	po := g.POWithAmount(doc.Party{ID: "TP2", Name: "T2", DUNS: "2"}, seller, 10)
	if _, _, err := roundTrip(h, context.Background(), po); err != nil {
		t.Fatal(err)
	}
	if h.Systems["Oracle"].StoredOrders() != 1 {
		t.Fatal("order not stored in new backend")
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := BuildModel(
		[]TradingPartner{{ID: "TP1", Protocol: formats.EDI, Backend: "ghost"}},
		[]Backend{{Name: "SAP", Format: formats.SAPIDoc}},
	); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := BuildModel(
		[]TradingPartner{
			{ID: "TP1", Protocol: formats.EDI, Backend: "SAP"},
			{ID: "TP1", Protocol: formats.EDI, Backend: "SAP"},
		},
		[]Backend{{Name: "SAP", Format: formats.SAPIDoc}},
	); err == nil {
		t.Fatal("duplicate partner accepted")
	}
	if _, err := BuildModel(nil, []Backend{{Name: "SAP"}}); err == nil {
		t.Fatal("incomplete backend accepted")
	}
}

// TestModelGrowthIsAdditive is the Section 4.6 shape at the model level.
func TestModelGrowthIsAdditive(t *testing.T) {
	m2, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	st2 := metrics.StatsOf(m2.AllTypes())

	m3, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m3.AddPartner(Figure15Partner()); err != nil {
		t.Fatal(err)
	}
	st3 := metrics.StatsOf(m3.AllTypes())

	// One more protocol adds exactly one public process (4 steps) and one
	// binding (6 steps).
	if st3.Types != st2.Types+2 {
		t.Fatalf("types %d → %d", st2.Types, st3.Types)
	}
	if st3.Steps != st2.Steps+10 {
		t.Fatalf("steps %d → %d", st2.Steps, st3.Steps)
	}
	// Condition terms stay constant: thresholds live in rules, not types.
	if st3.ConditionTerms != st2.ConditionTerms {
		t.Fatalf("condition terms changed %d → %d", st2.ConditionTerms, st3.ConditionTerms)
	}
}

func TestHubStats(t *testing.T) {
	h := newFig14Hub(t)
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := doc.NewGenerator(20)
	po := g.PO(tp1, seller)
	if _, _, err := roundTrip(h, ctx, po); err != nil {
		t.Fatal(err)
	}
	if _, _, err := roundTrip(h, ctx, g.PO(tp2, seller)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := invoiceFor(h, ctx, "TP1", po.ID); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Exchanges != 2 || st.Invoices != 1 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.PerPartner["TP1"] != 2 || st.PerPartner["TP2"] != 1 {
		t.Fatalf("per-partner %+v", st.PerPartner)
	}
	// A failed invoice (unbilled order) counts as failed.
	if _, _, err := invoiceFor(h, ctx, "TP1", "PO-NOPE"); err == nil {
		t.Fatal("expected failure")
	}
	if st := h.Stats(); st.Failed != 1 {
		t.Fatalf("failed %d", st.Failed)
	}
	// Snapshot is a copy: mutating it does not affect the hub.
	snap := h.Stats()
	snap.PerPartner["TP1"] = 999
	if h.Stats().PerPartner["TP1"] == 999 {
		t.Fatal("Stats returned shared map")
	}
}
