package core

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The sharded scheduler: per-trading-partner shards, each with its own
// bounded queue and workers. An exchange's shard is the hash of its partner
// ID, so one partner's work lands on one queue and a hung partner (a
// backend.Faulty hang schedule) backs up only its own shard. The admission
// layer adds two behaviors on top of plain hashing:
//
//   - Backpressure: a submission blocks once its shard's queue is full, so
//     producers feel the hub falling behind instead of growing an unbounded
//     backlog.
//   - Slow-shard bypass: before blocking, a submission may divert to the
//     least-loaded shard — but only while its own key has fewer jobs in
//     flight than one shard's worker complement. The cap is what keeps a
//     hung partner from poisoning the other shards: its first few jobs
//     bypass and wedge, then the cap forces the rest to wait at home.
//
// Every admission, dispatch and completion is emitted as a KindSched event
// on the hub's bus; obs.SchedMetrics derives the per-shard gauges.

// schedJob is one queued submission.
type schedJob struct {
	ctx   context.Context
	key   string
	shard int
	run   func(ctx context.Context) Result
	// onShed, when set, resolves the job as shed instead of running it —
	// the admission layer's escape hatch for degraded partners under
	// queue pressure.
	onShed func() Result
	// onDrop, when set, is called when the scheduler resolves the job
	// with ErrHubStopped instead of running it, so admission-time state
	// (a half-open probe slot) is released even though run never fired.
	onDrop func()
	fut    *Future
}

// shard is one scheduler partition: a two-lane bounded queue (high-priority
// lane drained first) and the gauges admission reads.
type shard struct {
	id   int
	high chan schedJob
	norm chan schedJob
	// load is the shard's queued + running job count, read by the bypass
	// to pick the least-loaded shard.
	load atomic.Int64
}

// scheduler runs the shards. It is created started and stopped once; the
// hub creates a fresh scheduler on restart.
type scheduler struct {
	hub             *Hub
	shards          []*shard
	workersPerShard int

	quit chan struct{}

	mu       sync.Mutex
	closed   bool
	inflight map[string]int // per shard-key admitted-but-unfinished jobs

	senderWG sync.WaitGroup
	workerWG sync.WaitGroup
}

// newScheduler starts nShards shards with workersPerShard workers each and
// per-shard queues bounded at queueDepth.
func newScheduler(h *Hub, nShards, workersPerShard, queueDepth int) *scheduler {
	if nShards < 1 {
		nShards = 1
	}
	if workersPerShard < 1 {
		workersPerShard = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &scheduler{
		hub:             h,
		workersPerShard: workersPerShard,
		quit:            make(chan struct{}),
		inflight:        map[string]int{},
	}
	for i := 0; i < nShards; i++ {
		sh := &shard{
			id:   i,
			high: make(chan schedJob, queueDepth),
			norm: make(chan schedJob, queueDepth),
		}
		s.shards = append(s.shards, sh)
		for w := 0; w < workersPerShard; w++ {
			s.workerWG.Add(1)
			go s.worker(sh)
		}
	}
	return s
}

// shardFor hashes a shard key (normally the trading partner ID) to its home
// shard.
func (s *scheduler) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// emit publishes one scheduler event for a job.
func (s *scheduler) emit(j schedJob, step string, elapsed time.Duration, err error) {
	s.hub.bus.Emit(obs.Event{
		Partner: j.key,
		Kind:    obs.KindSched,
		Stage:   obs.StageSched,
		Step:    step,
		Shard:   j.shard,
		Elapsed: elapsed,
		Err:     err,
	})
}

// admit registers a submission attempt; it fails once the scheduler closed.
func (s *scheduler) admit(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight[key]++
	s.senderWG.Add(1)
	return true
}

// release undoes admit's accounting (failed enqueue or finished job).
func (s *scheduler) release(key string) {
	s.mu.Lock()
	if s.inflight[key]--; s.inflight[key] <= 0 {
		delete(s.inflight, key)
	}
	s.mu.Unlock()
}

// keyLoad reports how many admitted-but-unfinished jobs a key has.
func (s *scheduler) keyLoad(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[key]
}

// leastLoaded returns the shard with the lowest queued+running load,
// excluding the given one.
func (s *scheduler) leastLoaded(except *shard) *shard {
	var best *shard
	var bestLoad int64
	for _, sh := range s.shards {
		if sh == except {
			continue
		}
		l := sh.load.Load()
		if best == nil || l < bestLoad {
			best, bestLoad = sh, l
		}
	}
	return best
}

// lane picks the job's queue lane on a shard.
func lane(sh *shard, priority Priority) chan schedJob {
	if priority == PriorityHigh {
		return sh.high
	}
	return sh.norm
}

// submit admits one job: non-blocking enqueue on the home shard, adaptive
// shed for degraded partners, bypass to the least-loaded shard while the
// key is under its fair share, else a blocking wait on the home shard
// (backpressure). It returns ErrHubStopped after stop and ctx.Err() on
// cancellation while blocked. onShed (optional) resolves the job as shed
// when the shedder drops it; onDrop (optional) runs when the scheduler
// resolves the enqueued job with ErrHubStopped instead of running it.
func (s *scheduler) submit(ctx context.Context, key string, priority Priority, run func(context.Context) Result, onShed func() Result, onDrop func()) (*Future, error) {
	if !s.admit(key) {
		return nil, ErrHubStopped
	}
	defer s.senderWG.Done()

	home := s.shardFor(key)
	fut := &Future{done: make(chan struct{})}
	j := schedJob{ctx: ctx, key: key, shard: home.id, run: run, onShed: onShed, onDrop: onDrop, fut: fut}

	// Fast path: room on the home shard.
	select {
	case lane(home, priority) <- j:
		home.load.Add(1)
		s.emit(j, obs.StepEnqueued, 0, nil)
		return fut, nil
	default:
	}

	// Adaptive shed: the home shard is backed up and this partner is
	// degraded — drop the submission now (it resolves as dead-lettered
	// via onShed) rather than let a sick partner's work bypass into
	// healthy shards or block the producer. The high-priority lane is
	// never shed; it falls through to bypass and backpressure.
	if onShed != nil && priority != PriorityHigh && s.hub.healthDegraded(key) {
		fut.res = onShed()
		close(fut.done)
		s.release(key)
		return fut, nil
	}

	// Home shard is backed up. Divert to the least-loaded shard — but only
	// while this key's in-flight count is within one shard's worker
	// complement, so a hung partner's overflow cannot wedge every shard.
	if len(s.shards) > 1 && s.keyLoad(key) <= s.workersPerShard {
		if alt := s.leastLoaded(home); alt != nil {
			bj := j
			bj.shard = alt.id
			select {
			case lane(alt, priority) <- bj:
				alt.load.Add(1)
				s.emit(bj, obs.StepBypassed, 0, nil)
				return fut, nil
			default:
			}
		}
	}

	// Backpressure: block until the home shard has room.
	select {
	case lane(home, priority) <- j:
		home.load.Add(1)
		s.emit(j, obs.StepEnqueued, 0, nil)
		return fut, nil
	case <-s.quit:
		s.release(key)
		return nil, ErrHubStopped
	case <-ctx.Done():
		s.release(key)
		return nil, ctx.Err()
	}
}

// worker drains one shard, preferring the high-priority lane.
func (s *scheduler) worker(sh *shard) {
	defer s.workerWG.Done()
	for {
		// Prefer high-priority work without starving the normal lane.
		select {
		case j := <-sh.high:
			s.runJob(sh, j)
			continue
		default:
		}
		select {
		case j := <-sh.high:
			s.runJob(sh, j)
		case j := <-sh.norm:
			s.runJob(sh, j)
		case <-s.quit:
			// Drain jobs admitted before the stop.
			for {
				select {
				case j := <-sh.high:
					s.runJob(sh, j)
				case j := <-sh.norm:
					s.runJob(sh, j)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one job and resolves its future.
func (s *scheduler) runJob(sh *shard, j schedJob) {
	s.emit(j, obs.StepDispatched, 0, nil)
	start := time.Now()
	j.fut.res = j.run(j.ctx)
	close(j.fut.done)
	sh.load.Add(-1)
	s.release(j.key)
	s.emit(j, obs.StepCompleted, time.Since(start), j.fut.res.Err)
}

// stop shuts the scheduler down: no new admissions, in-flight and queued
// jobs finish (workers drain their queues on quit), stragglers that raced
// past the drain resolve with ErrHubStopped.
func (s *scheduler) stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	close(s.quit)
	// After senderWG drains no submission can still be placing a job (new
	// ones are rejected via closed), so the final sweep below sees
	// everything the workers' drain missed.
	s.senderWG.Wait()
	s.workerWG.Wait()
	for _, sh := range s.shards {
		for {
			select {
			case j := <-sh.high:
				s.drop(j)
			case j := <-sh.norm:
				s.drop(j)
			default:
			}
			if len(sh.high) == 0 && len(sh.norm) == 0 {
				break
			}
		}
	}
}

// drop resolves a job the stopped scheduler will never run. onDrop lets
// the admission layer release state it committed when the job was
// enqueued (a half-open probe slot), since run will never report back.
func (s *scheduler) drop(j schedJob) {
	if j.onDrop != nil {
		j.onDrop()
	}
	j.fut.res = Result{Err: ErrHubStopped}
	close(j.fut.done)
}

// ShardCount reports the number of scheduler shards currently running (0
// when the scheduler is stopped).
func (h *Hub) ShardCount() int {
	h.schedMu.Lock()
	defer h.schedMu.Unlock()
	if h.sched == nil {
		return 0
	}
	return len(h.sched.shards)
}

// SchedMetrics exposes the per-shard scheduler gauges (queue depth, busy
// workers, completed throughput, bypass admissions).
//
// Deprecated: use Status().Sched.PerShard.
func (h *Hub) SchedMetrics() *obs.SchedMetrics { return h.schedMetrics }
