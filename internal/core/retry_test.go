package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/obs"
)

// faultyHub builds a Figure 14 hub with every backend wrapped in a Faulty
// decorator under the given schedule, returning the wrappers by name.
func faultyHub(t *testing.T, s backend.FaultSchedule) (*Hub, map[string]*backend.Faulty) {
	t.Helper()
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := map[string]*backend.Faulty{}
	h.WrapBackends(func(sys backend.System) backend.System {
		f := backend.NewFaulty(sys, s)
		wrapped[f.Name()] = f
		return f
	})
	return h, wrapped
}

// TestRetryRecoversTransientFaults: with a generous retry budget, every
// exchange completes despite a high injected backend error rate, and the
// retries surface as typed attempt events in the counters.
func TestRetryRecoversTransientFaults(t *testing.T) {
	h, _ := faultyHub(t, backend.FaultSchedule{ErrProb: 0.4, Seed: 7})
	h.SetDefaultRetryPolicy(RetryPolicy{MaxAttempts: 25, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g := doc.NewGenerator(1)
	for i := 0; i < 20; i++ {
		po := g.PO(tp1, seller)
		poa, _, err := roundTrip(h, ctx, po)
		if err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
		if poa.POID != po.ID {
			t.Fatalf("order %d: correlation %q != %q", i, poa.POID, po.ID)
		}
	}
	c := h.Counters()
	if c.Retries == 0 {
		t.Fatal("no retry events despite 40% injected error rate")
	}
	if c.Failed != 0 || c.DeadLettered != 0 {
		t.Fatalf("failed=%d deadLettered=%d, want 0/0", c.Failed, c.DeadLettered)
	}
}

// TestDeadLetterAndResubmit: an always-failing backend dead-letters the
// exchange; after the fault heals, resubmitting the dead letter completes
// it without double-storing the order.
func TestDeadLetterAndResubmit(t *testing.T) {
	h, wrapped := faultyHub(t, backend.FaultSchedule{ErrProb: 1, Seed: 3})
	h.SetDefaultRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g := doc.NewGenerator(2)
	po := g.PO(tp1, seller)
	_, ex, err := roundTrip(h, ctx, po)
	if err == nil {
		t.Fatal("round trip succeeded against an always-failing backend")
	}
	if !errors.Is(err, backend.ErrInjected) {
		t.Fatalf("terminal error %v does not wrap the injected fault", err)
	}

	dls := h.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters: %d, want 1", len(dls))
	}
	dl := dls[0]
	if dl.ExchangeID != ex.ID || dl.Partner != tp1.ID || dl.Flow != obs.FlowPO {
		t.Fatalf("dead letter %+v does not match exchange %s", dl, ex.ID)
	}
	if dl.Reason == nil {
		t.Fatal("dead letter has no reason")
	}
	// The terminal event stream records the dead-lettering.
	var sawDL bool
	for _, e := range h.Events(ex.ID) {
		if e.Kind == obs.KindExchange && e.Step == obs.StepDeadLetter {
			sawDL = true
		}
	}
	if !sawDL {
		t.Fatal("no dead-letter event in the exchange's stream")
	}
	c := h.Counters()
	if c.DeadLettered != 1 || c.Failed != 1 {
		t.Fatalf("counters deadLettered=%d failed=%d, want 1/1", c.DeadLettered, c.Failed)
	}
	// The failed attempts never mutated the backend.
	if n := wrapped["SAP"].Inner().StoredOrders(); n != 0 {
		t.Fatalf("backend stored %d orders during injected failures", n)
	}

	// Heal and resubmit: the drained dead letter replays to completion.
	wrapped["SAP"].SetSchedule(backend.FaultSchedule{})
	drained := h.DrainDeadLetters()
	if len(drained) != 1 || len(h.DeadLetters()) != 0 {
		t.Fatalf("drain left %d/%d entries", len(drained), len(h.DeadLetters()))
	}
	ex2, err := h.Resubmit(ctx, drained[0])
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if ex2.ID == ex.ID {
		t.Fatal("resubmission reused the dead exchange ID")
	}
	if n := wrapped["SAP"].Inner().StoredOrders(); n != 1 {
		t.Fatalf("backend stored %d orders after resubmit, want 1", n)
	}
}

// TestResubmitToleratesStoredOrder: when a dead-lettered exchange already
// stored its order, the replay must not double-store — the backend's
// duplicate elimination satisfies the store step instead.
func TestResubmitToleratesStoredOrder(t *testing.T) {
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g := doc.NewGenerator(4)
	po := g.PO(tp2, seller)

	// Pre-store the order directly, simulating a first run that died after
	// its store step.
	native, err := h.reg.FromNormalized(formats.OracleOIF, doc.TypePO, po)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := h.codecs.Lookup(formats.OracleOIF, doc.TypePO)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := codec.Encode(native)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Systems["Oracle"].Submit(ctx, wire); err != nil {
		t.Fatal(err)
	}

	// A fresh run of the same order dies at the store step on the
	// duplicate rejection (not transient, so no retry) and dead-letters.
	_, _, err = roundTrip(h, ctx, po)
	if !errors.Is(err, backend.ErrDuplicateOrder) {
		t.Fatalf("round trip error %v, want duplicate-order rejection", err)
	}
	dls := h.DrainDeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters: %d, want 1", len(dls))
	}

	// The replay tolerates the duplicate, processes the stored copy and
	// completes; the backend still holds exactly one copy.
	ex, err := h.Resubmit(ctx, dls[0])
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if ex.Outbound == nil {
		t.Fatal("resubmitted exchange produced no outbound document")
	}
	if got := h.Systems["Oracle"].StoredOrders(); got != 1 {
		t.Fatalf("stored %d copies, want 1", got)
	}
}

// TestPerAttemptTimeoutUnsticksHangs: a hang-prone backend is unstuck by
// the per-attempt timeout and the exchange still completes within its
// retry budget.
func TestPerAttemptTimeoutUnsticksHangs(t *testing.T) {
	h, _ := faultyHub(t, backend.FaultSchedule{HangProb: 0.5, Seed: 11})
	h.SetRetryPolicy("SAP", RetryPolicy{
		MaxAttempts: 10, BaseBackoff: time.Millisecond,
		PerAttemptTimeout: 30 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g := doc.NewGenerator(6)
	for i := 0; i < 5; i++ {
		po := g.PO(tp1, seller)
		if _, _, err := roundTrip(h, ctx, po); err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
	}
	if c := h.Counters(); c.Retries == 0 {
		t.Fatal("no retries recorded despite 50% hang probability")
	}
}

// TestRetryEventsInTrace: attempt and backoff events appear in the
// exchange's retained event stream, attributed to the app stage.
func TestRetryEventsInTrace(t *testing.T) {
	h, _ := faultyHub(t, backend.FaultSchedule{ErrProb: 0.3, Seed: 13})
	h.SetDefaultRetryPolicy(RetryPolicy{MaxAttempts: 20, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g := doc.NewGenerator(8)
	var attempts, backoffs int
	for i := 0; i < 10; i++ {
		po := g.PO(tp1, seller)
		_, ex, err := roundTrip(h, ctx, po)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		for _, e := range h.Events(ex.ID) {
			if e.Kind != obs.KindRetry {
				continue
			}
			if e.Stage != obs.StageApp {
				t.Fatalf("retry event in stage %s, want app", e.Stage)
			}
			switch e.Step {
			case obs.StepAttempt:
				if e.Err == nil {
					t.Fatal("attempt event carries no error")
				}
				attempts++
			case obs.StepBackoff:
				if e.Elapsed <= 0 {
					t.Fatal("backoff event carries no duration")
				}
				backoffs++
			}
		}
	}
	if attempts == 0 || attempts != backoffs {
		t.Fatalf("attempt/backoff events %d/%d, want equal and positive", attempts, backoffs)
	}
}

// TestBackoffFor: the exponential schedule doubles from the base and caps.
func TestBackoffFor(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if got := p.BackoffFor(i + 1); got != w*time.Millisecond {
			t.Fatalf("BackoffFor(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := (RetryPolicy{}).BackoffFor(3); got != 0 {
		t.Fatalf("zero policy backoff %v, want 0", got)
	}
}
