package core

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/wf"
)

// Port names of the process chain. Within one exchange the hub routes each
// outbound connection port to the next process's inbound port.
const (
	PortPublicIn          = "pub.in"           // network → public process
	PortPublicToBinding   = "pub.to-binding"   // public → binding
	PortPublicFromBinding = "pub.from-binding" // binding → public
	PortPublicOut         = "pub.out"          // public process → network
	PortPublicSignal      = "pub.signal"       // public process → network (protocol signal)

	PortBindingFromPublic  = "bind.from-public"
	PortBindingToPrivate   = "bind.to-private"
	PortBindingFromPrivate = "bind.from-private"
	PortBindingToPublic    = "bind.to-public"

	PortPrivateIn      = "priv.in"
	PortPrivateToApp   = "priv.to-app"
	PortPrivateFromApp = "priv.from-app"
	PortPrivateOut     = "priv.out"

	PortAppIn  = "app.in"
	PortAppOut = "app.out"
)

// Type-name helpers.
func PublicProcessName(p formats.Format) string { return "public:" + string(p) }
func BindingName(p formats.Format) string       { return "binding:" + string(p) }
func AppBindingName(backend string) string      { return "appbinding:" + backend }

// PrivateProcessName is the single private process type (Figure 13): it is
// deliberately free of any partner, protocol or backend identifier.
const PrivateProcessName = "private:po-handling"

// BuildPublicProcess generates the Figure 11 public process for one B2B
// protocol: receive the protocol's PO, pass document and control to the
// binding, wait for the response document from the binding, send the
// protocol's POA. The process operates purely on the protocol's native
// document format.
func BuildPublicProcess(p formats.Format) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: PublicProcessName(p), Version: 1,
		Steps: []wf.StepDef{
			{Name: fmt.Sprintf("Receive %s PO", p), Kind: wf.StepReceive, Port: PortPublicIn, DataKey: "document", Message: "PO"},
			{Name: "To binding", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortPublicToBinding},
			{Name: "From binding", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortPublicFromBinding, DataKey: "document"},
			{Name: fmt.Sprintf("Send %s POA", p), Kind: wf.StepSend, Port: PortPublicOut, Message: "POA"},
		},
		Arcs: []wf.Arc{
			{From: fmt.Sprintf("Receive %s PO", p), To: "To binding"},
			{From: "To binding", To: "From binding"},
			{From: "From binding", To: fmt.Sprintf("Send %s POA", p)},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildPublicProcessWithAcks generates the Section 4.5 local-change variant
// of a public process: the protocol requires explicit transport
// acknowledgments after the receive and before the send. The change is
// local to the public process — the binding and private process are
// untouched because acknowledgments are never passed on.
func BuildPublicProcessWithAcks(p formats.Format) (*wf.TypeDef, error) {
	recv := fmt.Sprintf("Receive %s PO", p)
	send := fmt.Sprintf("Send %s POA", p)
	t := &wf.TypeDef{
		Name: PublicProcessName(p), Version: 2,
		Steps: []wf.StepDef{
			{Name: recv, Kind: wf.StepReceive, Port: PortPublicIn, DataKey: "document", Message: "PO"},
			{Name: "Send transport ack", Kind: wf.StepTask, Handler: "transport-ack"},
			{Name: "To binding", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortPublicToBinding},
			{Name: "From binding", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortPublicFromBinding, DataKey: "document"},
			{Name: send, Kind: wf.StepSend, Port: PortPublicOut, Message: "POA"},
			{Name: "Await transport ack", Kind: wf.StepTask, Handler: "transport-ack"},
		},
		Arcs: []wf.Arc{
			{From: recv, To: "Send transport ack"},
			{From: "Send transport ack", To: "To binding"},
			{From: "To binding", To: "From binding"},
			{From: "From binding", To: send},
			{From: send, To: "Await transport ack"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildPublicProcessWithFunctionalAck generates the EDI public-process
// variant that returns an X12 997 functional acknowledgment immediately
// after receiving the purchase order — a protocol-level signal produced by
// the public process itself (the "produce-997" handler builds it from the
// received interchange) and sent on the signal port. Like the Section 4.5
// transport-ack example, this is a local public-process change: the 997 is
// never passed to the binding or the private process.
func BuildPublicProcessWithFunctionalAck(p formats.Format, version int) (*wf.TypeDef, error) {
	recv := fmt.Sprintf("Receive %s PO", p)
	send := fmt.Sprintf("Send %s POA", p)
	t := &wf.TypeDef{
		Name: PublicProcessName(p), Version: version,
		Steps: []wf.StepDef{
			{Name: recv, Kind: wf.StepReceive, Port: PortPublicIn, DataKey: "document", Message: "PO"},
			{Name: "Produce 997", Kind: wf.StepTask, Handler: "produce-997"},
			{Name: "Send 997", Kind: wf.StepSend, Port: PortPublicSignal, DataKey: "signal"},
			{Name: "To binding", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortPublicToBinding},
			{Name: "From binding", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortPublicFromBinding, DataKey: "document"},
			{Name: send, Kind: wf.StepSend, Port: PortPublicOut, Message: "POA"},
		},
		Arcs: []wf.Arc{
			{From: recv, To: "Produce 997"},
			{From: "Produce 997", To: "Send 997"},
			{From: "Send 997", To: "To binding"},
			{From: "To binding", To: "From binding"},
			{From: "From binding", To: send},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildPartnerPublicProcess generates the trading partner's side of the
// exchange: the mirror of BuildPublicProcess (send the PO, receive the
// POA). Two enterprises agree on the exchange by checking that their
// public processes are complementary (package conformance) — which is all
// they ever have to show each other.
func BuildPartnerPublicProcess(p formats.Format) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: "partner-" + PublicProcessName(p), Version: 1,
		Steps: []wf.StepDef{
			{Name: "To binding", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortPublicToBinding},
			{Name: fmt.Sprintf("Send %s PO", p), Kind: wf.StepSend, Port: PortPublicOut, Message: "PO"},
			{Name: fmt.Sprintf("Receive %s POA", p), Kind: wf.StepReceive, Port: PortPublicIn, DataKey: "document", Message: "POA"},
			{Name: "From binding", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortPublicFromBinding, DataKey: "document"},
		},
		Arcs: []wf.Arc{
			{From: "To binding", To: fmt.Sprintf("Send %s PO", p)},
			{From: fmt.Sprintf("Send %s PO", p), To: fmt.Sprintf("Receive %s POA", p)},
			{From: fmt.Sprintf("Receive %s POA", p), To: "From binding"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildBinding generates the Figure 12 binding for one B2B protocol: it
// receives the protocol-native PO from the public process, transforms it to
// the normalized format, passes it to the private process, and transforms
// the normalized POA coming back into the protocol's native format for the
// public process. Transformations live here and only here.
func BuildBinding(p formats.Format) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: BindingName(p), Version: 1,
		Steps: []wf.StepDef{
			{Name: "From public", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortBindingFromPublic, DataKey: "document"},
			{Name: "Transform to normalized PO", Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "bind-xform-in:" + string(p)},
			{Name: "To private", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortBindingToPrivate},
			{Name: "From private", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortBindingFromPrivate, DataKey: "document"},
			{Name: fmt.Sprintf("Transform to %s POA", p), Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "bind-xform-out:" + string(p)},
			{Name: "To public", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortBindingToPublic},
		},
		Arcs: []wf.Arc{
			{From: "From public", To: "Transform to normalized PO"},
			{From: "Transform to normalized PO", To: "To private"},
			{From: "To private", To: "From private"},
			{From: "From private", To: fmt.Sprintf("Transform to %s POA", p)},
			{From: fmt.Sprintf("Transform to %s POA", p), To: "To public"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildPrivateProcess generates the Figure 13 private process. It operates
// on the normalized format only and contains no trading partner, protocol
// or backend reference: the approval decision is delegated to the external
// rule set through the generic rule-binding step, and routing to the right
// application binding is the hub's concern.
func BuildPrivateProcess() (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: PrivateProcessName, Version: 1,
		Steps: []wf.StepDef{
			{Name: "From binding", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortPrivateIn, DataKey: "document"},
			{Name: "Check need for approval", Kind: wf.StepTask, Handler: "rule:" + ApprovalRuleSet},
			{Name: "Approve PO", Kind: wf.StepTask, Handler: "approve"},
			{Name: "To application", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortPrivateToApp, Join: wf.JoinAny},
			{Name: "From application", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortPrivateFromApp, DataKey: "document"},
			{Name: "To binding", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortPrivateOut},
		},
		Arcs: []wf.Arc{
			{From: "From binding", To: "Check need for approval"},
			{From: "Check need for approval", To: "Approve PO", Condition: "needsApproval == true"},
			{From: "Check need for approval", To: "To application", Condition: "needsApproval == false"},
			{From: "Approve PO", To: "To application"},
			{From: "To application", To: "From application"},
			{From: "From application", To: "To binding"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildPrivateProcessWithAudit generates the Section 4.5 local-change
// variant of the private process: an audit step added to the outgoing POA
// path. The change is local — no binding or public process is affected.
func BuildPrivateProcessWithAudit() (*wf.TypeDef, error) {
	t, err := BuildPrivateProcess()
	if err != nil {
		return nil, err
	}
	t.Version = 2
	t.Steps = append(t.Steps, wf.StepDef{Name: "Audit POA", Kind: wf.StepTask, Handler: "audit"})
	// Rewire From application → Audit POA → To binding.
	for i := range t.Arcs {
		if t.Arcs[i].From == "From application" && t.Arcs[i].To == "To binding" {
			t.Arcs[i].To = "Audit POA"
		}
	}
	t.Arcs = append(t.Arcs, wf.Arc{From: "Audit POA", To: "To binding"})
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildAppBinding generates the Figure 14 application binding for one back
// end: transform the normalized PO into the application's format, store it,
// extract the acknowledgment, transform it back to normalized. Back-end
// formats are confined here exactly as protocol formats are confined to
// public bindings.
func BuildAppBinding(b Backend) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: AppBindingName(b.Name), Version: 1,
		Steps: []wf.StepDef{
			{Name: "From private", Kind: wf.StepConnection, Dir: wf.DirIn, Port: PortAppIn, DataKey: "document"},
			{Name: fmt.Sprintf("Transform to %s PO", b.Name), Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "app-xform-in:" + b.Name},
			{Name: fmt.Sprintf("Store %s PO", b.Name), Kind: wf.StepTask, Handler: "app-store:" + b.Name},
			{Name: fmt.Sprintf("Extract %s POA", b.Name), Kind: wf.StepTask, Handler: "app-extract:" + b.Name},
			{Name: "Transform to normalized POA", Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "app-xform-out:" + b.Name},
			{Name: "To private", Kind: wf.StepConnection, Dir: wf.DirOut, Port: PortAppOut},
		},
		Arcs: []wf.Arc{
			{From: "From private", To: fmt.Sprintf("Transform to %s PO", b.Name)},
			{From: fmt.Sprintf("Transform to %s PO", b.Name), To: fmt.Sprintf("Store %s PO", b.Name)},
			{From: fmt.Sprintf("Store %s PO", b.Name), To: fmt.Sprintf("Extract %s POA", b.Name)},
			{From: fmt.Sprintf("Extract %s POA", b.Name), To: "Transform to normalized POA"},
			{From: "Transform to normalized POA", To: "To private"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
