package core

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Sentinel errors of the hub's package boundary, matchable with errors.Is.
var (
	// ErrHubStopped is returned for submissions against a stopped
	// scheduler, and resolves futures whose jobs were still queued when the
	// scheduler stopped.
	ErrHubStopped = errors.New("core: hub scheduler stopped")
	// ErrUnknownPartner is returned for documents from unregistered
	// trading partners.
	ErrUnknownPartner = errors.New("core: unknown trading partner")
	// ErrProtocolMismatch is returned when an inbound document arrives in a
	// protocol other than the one its partner is registered for.
	ErrProtocolMismatch = errors.New("core: partner protocol mismatch")
	// ErrInvalidRequest is returned by Do/DoAsync for requests missing the
	// fields their Kind demands.
	ErrInvalidRequest = errors.New("core: invalid request")
	// ErrNoOutbound is returned when an exchange's chain completes without
	// producing an outbound document.
	ErrNoOutbound = errors.New("core: exchange produced no outbound document")
	// ErrPartnerUnavailable is returned when the partner's circuit breaker
	// rejects an exchange at admission: the circuit is open (fast-fail) or
	// the adaptive shedder dropped the submission under queue pressure.
	// Rejected exchanges are parked on the dead-letter queue and become
	// eligible for Resubmit once the circuit closes.
	ErrPartnerUnavailable = errors.New("core: partner unavailable")
	// ErrPeerUnavailable is returned when a federated exchange could not be
	// forwarded to the cluster node owning its partner: every forward
	// attempt was exhausted or the peer's circuit breaker is open. The
	// exchange is parked on the local dead-letter queue and becomes
	// eligible for Resubmit once the peer recovers (or ownership moves).
	ErrPeerUnavailable = errors.New("core: peer node unavailable")
	// ErrJournalUnavailable is returned under the fail-stop durability
	// policy (the default) for admissions whose journal append failed: a
	// hub asked to be durable rejects work it cannot log. Resubmitting
	// after the disk heals succeeds; WithJournalFailurePolicy(FailDegraded)
	// trades the rejection for non-durable admission instead.
	ErrJournalUnavailable = errors.New("core: journal unavailable")
)

// ExchangeError is the typed pipeline error of the hub boundary: it locates
// a failure in the pipeline (stage), attributes it to a trading partner and
// exchange, and wraps the cause so errors.Is/As see through it.
type ExchangeError struct {
	// ExchangeID names the failed exchange ("" when the failure precedes
	// exchange creation, e.g. an unknown partner).
	ExchangeID string
	// Partner is the trading partner of the exchange, when known.
	Partner string
	// Stage locates the failure in the pipeline. Failures between stages
	// (decode, admission, partner resolution) report obs.StageExchange.
	Stage obs.Stage
	// Port is the routing port being served when the failure occurred ("",
	// when the failure was not a routing hop).
	Port string
	// Attempt is the delivery attempt of the exchange: 1 for the original
	// submission, 2 for a dead-letter resubmission.
	Attempt int
	// Err is the wrapped cause.
	Err error
}

// Error implements error.
func (e *ExchangeError) Error() string {
	msg := "core: exchange"
	if e.ExchangeID != "" {
		msg += " " + e.ExchangeID
	}
	if e.Partner != "" {
		msg += " (partner " + e.Partner + ")"
	}
	if e.Stage != "" && e.Stage != obs.StageExchange {
		msg += fmt.Sprintf(" stage %s", e.Stage)
	}
	if e.Port != "" {
		msg += fmt.Sprintf(", port %s", e.Port)
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ExchangeError) Unwrap() error { return e.Err }

// wrapExchangeErr wraps err as an *ExchangeError for the exchange unless it
// already is one (the innermost wrap, closest to the failing stage, wins).
func wrapExchangeErr(ex *Exchange, stage obs.Stage, port string, err error) error {
	if err == nil {
		return nil
	}
	var ee *ExchangeError
	if errors.As(err, &ee) {
		return err
	}
	e := &ExchangeError{Stage: stage, Port: port, Attempt: 1, Err: err}
	if ex != nil {
		e.ExchangeID = ex.ID
		e.Partner = ex.Partner.ID
		if ex.resubmit {
			e.Attempt = 2
		}
	}
	return e
}

// stageForPort maps a routing port to the pipeline stage receiving the
// delivery, so routing failures report where they landed.
func stageForPort(port string) obs.Stage {
	switch port {
	case PortPublicToBinding, PortPrivateOut, PortInvPrivOut:
		return obs.StageBinding
	case PortBindingToPrivate, PortAppOut, PortInvAppOut:
		return obs.StagePrivate
	case PortPrivateToApp:
		return obs.StageApp
	case PortBindingToPublic, PortInvBindOut, PortPublicOut, PortPublicSignal:
		return obs.StagePublic
	}
	return obs.StageRoute
}
