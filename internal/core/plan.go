package core

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/wf"
)

// routablePorts are the outbound ports the hub's router (route, exchange.go)
// knows how to move a document out of; deliverablePorts are the inbound
// ports ensureDelivery and the routing fabric know how to deliver into. A
// send or receive step on any other port would only fail mid-exchange, so
// the plan compiler checks membership at deploy time.
var routablePorts = map[string]bool{
	PortPublicToBinding:  true,
	PortBindingToPrivate: true,
	PortPrivateToApp:     true,
	PortAppOut:           true,
	PortPrivateOut:       true,
	PortBindingToPublic:  true,
	PortPublicOut:        true,
	PortPublicSignal:     true,
	PortInvAppOut:        true,
	PortInvPrivOut:       true,
	PortInvBindOut:       true,
}

var deliverablePorts = map[string]bool{
	PortPublicIn:           true,
	PortBindingFromPublic:  true,
	PortPrivateIn:          true,
	PortAppIn:              true,
	PortPrivateFromApp:     true,
	PortBindingFromPrivate: true,
	PortPublicFromBinding:  true,
	PortInvPrivIn:          true,
	PortInvBindIn:          true,
	PortInvPubIn:           true,
}

// checkPort is the hub's wf.PortChecker: it validates each messaging step's
// port against the routing fabric, turning what used to be a runtime
// "unrouteable port" exchange failure into a deploy-time PlanError.
func (h *Hub) checkPort(s *wf.StepDef) error {
	if s.Port == "" {
		return nil // structural validation (wf.Validate) reports missing ports
	}
	switch {
	case s.Kind == wf.StepSend || (s.Kind == wf.StepConnection && s.Dir == wf.DirOut):
		if !routablePorts[s.Port] {
			return fmt.Errorf("hub cannot route outbound port %q", s.Port)
		}
	case s.Kind == wf.StepReceive || (s.Kind == wf.StepConnection && s.Dir == wf.DirIn):
		if !deliverablePorts[s.Port] {
			return fmt.Errorf("hub cannot deliver to inbound port %q", s.Port)
		}
	}
	return nil
}

// deployType deploys one workflow type through the engine's compiling
// Deploy, adding the hub-level outbound check: a public process (PO or
// invoice flow) must send on PortPublicOut, or every exchange through it
// would end in ErrNoOutbound. Catching that shape here makes the runtime
// ErrNoOutbound path unreachable for compiled deployments.
func (h *Hub) deployType(t *wf.TypeDef) error {
	return h.deployTypeMode(t, false, "deploy")
}

// deployTypeMode is deployType with the version-management mode explicit:
// staged deploys (canary candidates) register the version in the config
// store without moving the active pointer.
func (h *Hub) deployTypeMode(t *wf.TypeDef, staged bool, note string) error {
	if isPublicProcess(t.Name) && !sendsOnPublicOut(t) {
		perr := wf.PlanErrors{{
			Class:  wf.PlanUnroutablePort,
			Type:   t.Key(),
			Step:   "",
			Detail: fmt.Sprintf("public process has no send on %q: every exchange would fail with %v", PortPublicOut, ErrNoOutbound),
		}}
		return fmt.Errorf("core: deploy %s: %w", t.Name, perr)
	}
	if err := h.Engine.Deploy(t); err != nil {
		return err
	}
	// Every deployed type joins version management. A version already in the
	// store (restored from the journal before the seed deploys re-ran) is
	// skipped inside registerArtifact so restarts do not re-bump the epoch.
	_, err := h.registerArtifact(classOf(t.Name), t.Name, t.Version, note, staged)
	return err
}

// isPublicProcess reports whether the type name identifies a public process
// of either flow ("public:<protocol>" or "public-inv:<protocol>").
func isPublicProcess(name string) bool {
	return strings.HasPrefix(name, "public:") || strings.HasPrefix(name, "public-inv:")
}

// sendsOnPublicOut reports whether any send step (or outbound connection)
// of the type targets the network-facing port.
func sendsOnPublicOut(t *wf.TypeDef) bool {
	for i := range t.Steps {
		s := &t.Steps[i]
		if s.Port != PortPublicOut {
			continue
		}
		if s.Kind == wf.StepSend || (s.Kind == wf.StepConnection && s.Dir == wf.DirOut) {
			return true
		}
	}
	return false
}

// PlanMetrics exposes the hub's deploy-time compilation gauges.
//
// Deprecated: use Status().Plans.
func (h *Hub) PlanMetrics() *obs.PlanMetrics { return h.planMetrics }
