package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/doc"
)

// TestStatusSnapshot pins the unified Status surface: it agrees with the
// accessors it replaces, carries the schema version, and serializes with
// the stable JSON keys remote clients depend on.
func TestStatusSnapshot(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "hub.journal")
	h := newFig14Hub(t, WithShards(2), WithWorkersPerShard(1), WithJournal(jpath))
	defer h.StopWorkers()
	defer h.CloseJournal()
	ctx := context.Background()

	g := doc.NewGenerator(1)
	for i := 0; i < 3; i++ {
		if _, err := h.Do(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)}); err != nil {
			t.Fatal(err)
		}
	}
	// One async exchange so the scheduler section is live.
	fut, err := h.DoAsync(ctx, Request{Kind: DocPO, PO: g.PO(tp2, seller)})
	if err != nil {
		t.Fatal(err)
	}
	if res := fut.Result(ctx); res.Err != nil {
		t.Fatal(res.Err)
	}

	st := h.Status()
	if st.Version != StatusVersion {
		t.Fatalf("version %d, want %d", st.Version, StatusVersion)
	}
	if st.Time.IsZero() || time.Since(st.Time) > time.Minute {
		t.Fatalf("implausible snapshot time %v", st.Time)
	}
	if got, want := st.Exchanges, h.Counters(); got.Started != want.Started ||
		got.Failed != want.Failed || got.ByPartner["TP1"] != want.ByPartner["TP1"] {
		t.Fatalf("Exchanges diverges from Counters: %+v vs %+v", got, want)
	}
	if st.Exchanges.Started != 4 {
		t.Fatalf("started %d, want 4", st.Exchanges.Started)
	}
	if !st.Sched.Running || st.Sched.Shards != 2 || len(st.Sched.PerShard) == 0 {
		t.Fatalf("sched section: %+v", st.Sched)
	}
	if len(st.Stages) == 0 {
		t.Fatal("stages section empty after exchanges")
	}
	if !st.Journal.Enabled || st.Journal.PendingAdmits != 0 {
		t.Fatalf("journal section: %+v", st.Journal)
	}
	if st.DLQ.Depth != 0 {
		t.Fatalf("dlq depth %d, want 0", st.DLQ.Depth)
	}

	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"version", "time", "exchanges", "stages", "sched", "dlq",
		"journal", "recovery", "config", "plans",
	} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("stable key %q missing from %s", k, raw)
		}
	}
	// The versioned schema round-trips.
	var back StatusSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != StatusVersion || back.Exchanges.Started != 4 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestTakeDeadLetter pins the ID-addressed DLQ removal the wire protocol's
// resubmit op uses: take removes exactly one entry, a second take misses,
// and a failed resubmission of the taken entry re-parks automatically.
func TestTakeDeadLetter(t *testing.T) {
	h := newFig14Hub(t)
	defer h.StopWorkers()
	ctx := context.Background()

	var faults []*backend.Faulty
	h.WrapBackends(func(sys backend.System) backend.System {
		f := backend.NewFaulty(sys, backend.FaultSchedule{ErrProb: 1.0, Seed: 5})
		faults = append(faults, f)
		return f
	})
	h.SetDefaultRetryPolicy(RetryPolicy{MaxAttempts: 2})

	g := doc.NewGenerator(2)
	if _, err := h.Do(ctx, Request{Kind: DocPO, PO: g.PO(tp1, seller)}); err == nil {
		t.Fatal("hard-down backend succeeded")
	}
	dls := h.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dlq %d, want 1", len(dls))
	}
	exID := dls[0].ExchangeID

	if _, ok := h.TakeDeadLetter("ex-does-not-exist"); ok {
		t.Fatal("took a nonexistent entry")
	}
	dl, ok := h.TakeDeadLetter(exID)
	if !ok || dl.ExchangeID != exID {
		t.Fatalf("take %q: ok=%v dl=%+v", exID, ok, dl)
	}
	if len(h.DeadLetters()) != 0 {
		t.Fatal("take left the entry queued")
	}
	if _, ok := h.TakeDeadLetter(exID); ok {
		t.Fatal("second take succeeded")
	}

	// A failed rerun of the taken entry re-parks a fresh entry.
	if _, err := h.Resubmit(ctx, dl); err == nil {
		t.Fatal("resubmit against hard-down backend succeeded")
	}
	if len(h.DeadLetters()) != 1 {
		t.Fatal("failed resubmit did not re-park")
	}

	// Heal, take, rerun: the queue ends empty.
	for _, f := range faults {
		f.SetSchedule(backend.FaultSchedule{})
	}
	dl, ok = h.TakeDeadLetter(h.DeadLetters()[0].ExchangeID)
	if !ok {
		t.Fatal("take after re-park failed")
	}
	if _, err := h.Resubmit(ctx, dl); err != nil {
		t.Fatal(err)
	}
	if len(h.DeadLetters()) != 0 {
		t.Fatal("healed resubmit left the queue non-empty")
	}
}
