package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
	"repro/internal/msg"
	"repro/internal/transform"
)

// Server fronts a Hub with the reliable messaging layer: it receives
// protocol documents from trading partners over the network, runs the
// exchange, and sends the response back — the full deployment of Figure 14
// with the "Network" cloud in between.
type Server struct {
	Hub *Hub
	rel *msg.Reliable
}

// NewServer attaches the hub to a network endpoint. Options configure the
// reliable-messaging layer (WithReliableConfig); the zero configuration is
// used without options.
func NewServer(h *Hub, ep msg.Endpoint, opts ...ServerOption) *Server {
	var cfg serverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Server{Hub: h, rel: msg.NewReliable(ep, cfg.reliable)}
}

// Close shuts the server's endpoint down.
func (s *Server) Close() error { return s.rel.Close() }

// Stats exposes the server's reliable-messaging counters.
func (s *Server) Stats() msg.ReliableStats { return s.rel.Stats() }

// ServeOne receives one inbound purchase order, processes it, and sends
// the acknowledgment back to the sender. It returns the completed exchange.
func (s *Server) ServeOne(ctx context.Context) (*Exchange, error) {
	m, err := s.rel.Recv(ctx)
	if err != nil {
		return nil, err
	}
	if m.DocType != string(doc.TypePO) {
		return nil, fmt.Errorf("core: server expected a purchase order, got %q", m.DocType)
	}
	res, err := s.Hub.Do(ctx, Request{Kind: DocWirePO, Protocol: formats.Format(m.Protocol), Wire: m.Body, PartnerID: m.From})
	if err != nil {
		return res.Exchange, err
	}
	return res.Exchange, s.respond(ctx, m, res.Exchange, res.Wire)
}

// respond sends an exchange's outcome back to the requester: first any
// protocol-level signals (e.g. 997 functional acknowledgments), in the
// order the exchange emitted them, then the POA reply itself.
func (s *Server) respond(ctx context.Context, m *msg.Message, ex *Exchange, out []byte) error {
	for _, sig := range ex.Signals {
		dt, ok := nativeDocType(sig)
		if !ok {
			return fmt.Errorf("core: cannot determine document type of signal %T", sig)
		}
		codec, err := s.Hub.codecs.Lookup(formats.Format(m.Protocol), dt)
		if err != nil {
			return err
		}
		wire, err := codec.Encode(sig)
		if err != nil {
			return err
		}
		if err := s.rel.Send(ctx, m.From, &msg.Message{
			CorrelationID: m.CorrelationID,
			Protocol:      m.Protocol,
			DocType:       string(dt),
			Body:          wire,
		}); err != nil {
			return err
		}
	}
	return s.rel.Send(ctx, m.From, &msg.Message{
		CorrelationID: m.CorrelationID,
		Protocol:      m.Protocol,
		DocType:       string(doc.TypePOA),
		Body:          out,
	})
}

// PushInvoice runs the outbound invoice flow for a fulfilled order and
// sends the resulting protocol-native invoice to the partner — the server
// side of the one-way message pattern.
func (s *Server) PushInvoice(ctx context.Context, partnerID, poID string) (*Exchange, error) {
	res, err := s.Hub.Do(ctx, Request{Kind: DocInvoice, PartnerID: partnerID, POID: poID})
	if err != nil {
		return res.Exchange, err
	}
	return res.Exchange, s.rel.Send(ctx, partnerID, &msg.Message{
		CorrelationID: poID,
		Protocol:      string(res.Exchange.Protocol),
		DocType:       string(doc.TypeINV),
		Body:          res.Wire,
	})
}

// nativeDocType maps a native signal value to its normalized document type.
func nativeDocType(v any) (doc.DocType, bool) {
	switch v.(type) {
	case *edi.FA997:
		return doc.TypeFA, true
	}
	return "", false
}

// Serve processes inbound purchase orders until the context is done or the
// endpoint closes. Per-exchange errors are sent to errs if non-nil and do
// not stop the loop.
func (s *Server) Serve(ctx context.Context, errs chan<- error) {
	for {
		_, err := s.ServeOne(ctx)
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, msg.ErrClosed) {
			return
		}
		if errs != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
}

// ServeConcurrent processes inbound purchase orders with up to `workers`
// exchanges in flight at once: the receive loop submits each inbound order
// to the hub's sharded scheduler (the sender's partner ID is the shard
// key) and a reply goroutine per exchange sends the response as soon as
// its future resolves — replies are not serialized behind slower
// exchanges. A hub configured with WithShards/WithWorkersPerShard runs its
// configured topology; otherwise a single shard with `workers` workers
// preserves the old pool semantics. It returns when the context is done or
// the endpoint closes, after in-flight replies finish. Per-exchange errors
// are sent to errs if non-nil and do not stop the loop.
func (s *Server) ServeConcurrent(ctx context.Context, workers int, errs chan<- error) {
	if workers < 1 {
		workers = 1
	}
	if s.Hub.schedCfg.schedConfigured {
		s.Hub.StartScheduler()
	} else {
		s.Hub.startSingleShard(workers)
	}
	report := func(err error) {
		if errs != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		m, err := s.rel.Recv(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, msg.ErrClosed) {
				return
			}
			report(err)
			continue
		}
		if m.DocType != string(doc.TypePO) {
			report(fmt.Errorf("core: server expected a purchase order, got %q", m.DocType))
			continue
		}
		fut, err := s.Hub.DoAsync(ctx, Request{Kind: DocWirePO, Protocol: formats.Format(m.Protocol), Wire: m.Body, PartnerID: m.From})
		if err != nil {
			report(err)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return
			}
			continue
		}
		wg.Add(1)
		go func(m *msg.Message, fut *Future) {
			defer wg.Done()
			res := fut.Result(ctx)
			if res.Err != nil {
				report(res.Err)
				return
			}
			if err := s.respond(ctx, m, res.Exchange, res.Wire); err != nil {
				report(err)
			}
		}(m, fut)
	}
}

// Client is a trading partner's side of the exchange: it encodes normalized
// purchase orders into the partner's protocol, sends them to the hub, and
// decodes the acknowledgment that comes back.
type Client struct {
	Partner TradingPartner
	rel     *msg.Reliable
	hubAddr string
	reg     *transform.Registry
	codecs  *formats.Registry

	mu       sync.Mutex
	signals  []*doc.FunctionalAck
	invoices []*doc.Invoice
}

// NewClient attaches a partner to a network endpoint, targeting hubAddr.
func NewClient(p TradingPartner, ep msg.Endpoint, cfg msg.ReliableConfig, hubAddr string) *Client {
	reg := &transform.Registry{}
	transform.RegisterAll(reg)
	return &Client{
		Partner: p,
		rel:     msg.NewReliable(ep, cfg),
		hubAddr: hubAddr,
		reg:     reg,
		codecs:  NewCodecRegistry(),
	}
}

// Close shuts the client's endpoint down.
func (c *Client) Close() error { return c.rel.Close() }

// Stats exposes the client's reliable-messaging counters.
func (c *Client) Stats() msg.ReliableStats { return c.rel.Stats() }

// FunctionalAcks returns the protocol-level receipt acknowledgments the
// client has received (997s, when the hub's public process issues them).
func (c *Client) FunctionalAcks() []*doc.FunctionalAck {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*doc.FunctionalAck(nil), c.signals...)
}

// stashInvoice decodes and queues an inbound one-way invoice.
func (c *Client) stashInvoice(wire []byte) error {
	codec, err := c.codecs.Lookup(c.Partner.Protocol, doc.TypeINV)
	if err != nil {
		return err
	}
	native, err := codec.Decode(wire)
	if err != nil {
		return err
	}
	nd, err := c.reg.ToNormalized(c.Partner.Protocol, doc.TypeINV, native)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.invoices = append(c.invoices, nd.(*doc.Invoice))
	c.mu.Unlock()
	return nil
}

// ReceiveInvoice blocks until a one-way invoice arrives (or returns one
// already received while waiting for something else).
func (c *Client) ReceiveInvoice(ctx context.Context) (*doc.Invoice, error) {
	for {
		c.mu.Lock()
		if len(c.invoices) > 0 {
			inv := c.invoices[0]
			c.invoices = c.invoices[1:]
			c.mu.Unlock()
			return inv, nil
		}
		c.mu.Unlock()
		m, err := c.rel.Recv(ctx)
		if err != nil {
			return nil, err
		}
		if m.DocType != string(doc.TypeINV) {
			continue // unrelated traffic while waiting for the invoice
		}
		if err := c.stashInvoice(m.Body); err != nil {
			return nil, err
		}
	}
}

// RoundTrip sends the purchase order in the partner's protocol and waits
// for the matching acknowledgment.
func (c *Client) RoundTrip(ctx context.Context, po *doc.PurchaseOrder) (*doc.PurchaseOrderAck, error) {
	native, err := c.reg.FromNormalized(c.Partner.Protocol, doc.TypePO, po)
	if err != nil {
		return nil, err
	}
	codec, err := c.codecs.Lookup(c.Partner.Protocol, doc.TypePO)
	if err != nil {
		return nil, err
	}
	wire, err := codec.Encode(native)
	if err != nil {
		return nil, err
	}
	if err := c.rel.Send(ctx, c.hubAddr, &msg.Message{
		CorrelationID: po.ID,
		Protocol:      string(c.Partner.Protocol),
		DocType:       string(doc.TypePO),
		Body:          wire,
	}); err != nil {
		return nil, err
	}
	for {
		m, err := c.rel.Recv(ctx)
		if err != nil {
			return nil, err
		}
		if m.CorrelationID != po.ID {
			continue // a reply for a different in-flight order of this client
		}
		if m.DocType == string(doc.TypeINV) {
			if err := c.stashInvoice(m.Body); err != nil {
				return nil, err
			}
			continue
		}
		if m.DocType == string(doc.TypeFA) {
			// A protocol-level receipt signal: record it and keep waiting
			// for the business response.
			faCodec, err := c.codecs.Lookup(c.Partner.Protocol, doc.TypeFA)
			if err != nil {
				return nil, err
			}
			nativeFA, err := faCodec.Decode(m.Body)
			if err != nil {
				return nil, err
			}
			nd, err := c.reg.ToNormalized(c.Partner.Protocol, doc.TypeFA, nativeFA)
			if err != nil {
				return nil, err
			}
			c.mu.Lock()
			c.signals = append(c.signals, nd.(*doc.FunctionalAck))
			c.mu.Unlock()
			continue
		}
		poaCodec, err := c.codecs.Lookup(c.Partner.Protocol, doc.TypePOA)
		if err != nil {
			return nil, err
		}
		nativePOA, err := poaCodec.Decode(m.Body)
		if err != nil {
			return nil, err
		}
		nd, err := c.reg.ToNormalized(c.Partner.Protocol, doc.TypePOA, nativePOA)
		if err != nil {
			return nil, err
		}
		return nd.(*doc.PurchaseOrderAck), nil
	}
}
