package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/msg"
)

// deployment wires a hub server and one client per partner over the
// in-process network with the given fault schedule.
type deployment struct {
	server  *Server
	clients map[string]*Client
	network *msg.InProcNetwork
}

func newDeployment(t *testing.T, faults msg.Faults, rcfg msg.ReliableConfig) *deployment {
	t.Helper()
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	n := msg.NewInProcNetwork(faults)
	hubEP, err := n.Endpoint("hub")
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{
		server:  NewServer(h, hubEP, WithReliableConfig(rcfg)),
		clients: map[string]*Client{},
		network: n,
	}
	for _, p := range m.Partners {
		ep, err := n.Endpoint(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		d.clients[p.ID] = NewClient(p, ep, rcfg, "hub")
	}
	t.Cleanup(func() {
		for _, c := range d.clients {
			c.Close()
		}
		d.server.Close()
		d.network.Close()
	})
	return d
}

func TestServerClientRoundTrip(t *testing.T) {
	d := newDeployment(t, msg.Faults{}, msg.ReliableConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	go d.server.Serve(ctx, nil)

	g := doc.NewGenerator(1)
	po := g.POWithAmount(tp1, seller, 60000)
	poa, err := d.clients["TP1"].RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID || poa.Status != doc.AckAccepted {
		t.Fatalf("poa %+v", poa)
	}

	po2 := g.POWithAmount(tp2, seller, 500)
	poa2, err := d.clients["TP2"].RoundTrip(ctx, po2)
	if err != nil {
		t.Fatal(err)
	}
	if poa2.POID != po2.ID {
		t.Fatal("wrong correlation")
	}
}

func TestServerClientUnderFaults(t *testing.T) {
	d := newDeployment(t,
		msg.Faults{LossProb: 0.3, DupProb: 0.15, Seed: 21},
		msg.ReliableConfig{RetryInterval: 10 * time.Millisecond, MaxAttempts: 80})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	go d.server.Serve(ctx, nil)

	g := doc.NewGenerator(2)
	for i := 0; i < 8; i++ {
		po := g.PO(tp1, seller)
		poa, err := d.clients["TP1"].RoundTrip(ctx, po)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if poa.POID != po.ID {
			t.Fatalf("round trip %d: wrong correlation", i)
		}
	}
	if st := d.clients["TP1"].Stats(); st.Retries == 0 {
		t.Fatal("expected retries on a lossy network")
	}
	// Duplicate inbound POs were suppressed by the reliable layer, so the
	// backend saw each order exactly once.
	if got := d.server.Hub.Systems["SAP"].StoredOrders(); got != 8 {
		t.Fatalf("SAP stored %d orders, want 8 (duplicate suppression failed)", got)
	}
}

func TestServeOneRejectsWrongDocType(t *testing.T) {
	d := newDeployment(t, msg.Faults{}, msg.ReliableConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		_, err := d.server.ServeOne(ctx)
		errCh <- err
	}()
	c := d.clients["TP1"]
	if err := c.rel.Send(ctx, "hub", &msg.Message{
		DocType: "SomethingElse", Protocol: "EDI-X12", Body: []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("wrong doc type accepted")
	}
}

// TestServerSurvivesMalformedContent: the paper's "incorrect message
// content" error case. A garbage purchase order is rejected, reported on
// the error channel, and the server keeps serving valid exchanges.
func TestServerSurvivesMalformedContent(t *testing.T) {
	d := newDeployment(t, msg.Faults{}, msg.ReliableConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make(chan error, 4)
	go d.server.Serve(ctx, errs)

	c := d.clients["TP1"]
	if err := c.rel.Send(ctx, "hub", &msg.Message{
		CorrelationID: "bogus",
		Protocol:      "EDI-X12",
		DocType:       string(doc.TypePO),
		Body:          []byte("ISA*this is not a valid interchange"),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error reported")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("malformed message produced no error report")
	}

	// The hub still works.
	g := doc.NewGenerator(41)
	po := g.PO(tp1, seller)
	poa, err := c.RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID {
		t.Fatal("wrong correlation after recovery")
	}
}

// TestAuthenticatedDeployment: server and clients share a channel secret;
// exchanges work, and raw unsigned traffic is dropped at the messaging
// layer before it can reach the hub.
func TestAuthenticatedDeployment(t *testing.T) {
	secret := []byte("cpa-shared-secret")
	rcfg := msg.ReliableConfig{
		RetryInterval: 10 * time.Millisecond, MaxAttempts: 5, Secret: secret,
	}
	d := newDeployment(t, msg.Faults{}, rcfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go d.server.Serve(ctx, nil)

	g := doc.NewGenerator(43)
	po := g.PO(tp1, seller)
	poa, err := d.clients["TP1"].RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID {
		t.Fatal("wrong correlation")
	}

	// An attacker without the secret cannot get anything processed.
	attackerEP, err := d.network.Endpoint("attacker")
	if err != nil {
		t.Fatal(err)
	}
	attacker := msg.NewReliable(attackerEP, msg.ReliableConfig{
		RetryInterval: 5 * time.Millisecond, MaxAttempts: 3, // no secret
	})
	defer attacker.Close()
	err = attacker.Send(ctx, "hub", &msg.Message{
		Protocol: "EDI-X12", DocType: string(doc.TypePO), Body: []byte("forged"),
	})
	if err == nil {
		t.Fatal("unsigned message was acknowledged by an authenticated hub")
	}
	if st := d.server.Stats(); st.Rejected == 0 {
		t.Fatal("forgery not rejected at the messaging layer")
	}
}
