package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/msg"
)

// TestConcurrentExchanges drives many exchanges through one hub from
// parallel goroutines: every exchange completes with the right
// correlation, and the back ends see each order exactly once.
func TestConcurrentExchanges(t *testing.T) {
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const perWorker = 25
	workers := []struct {
		buyer doc.Party
	}{
		{tp1}, {tp2}, {tp1}, {tp2},
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(workers)*perWorker)
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, buyer doc.Party) {
			defer wg.Done()
			g := doc.NewGenerator(int64(100 + wi))
			for i := 0; i < perWorker; i++ {
				po := g.PO(buyer, seller)
				// Two workers share a buyer; uniquify the order numbers
				// they generate independently.
				po.ID = fmt.Sprintf("%s-w%d", po.ID, wi)
				poa, _, err := roundTrip(h, ctx, po)
				if err != nil {
					errCh <- fmt.Errorf("worker %d order %d: %w", wi, i, err)
					return
				}
				if poa.POID != po.ID {
					errCh <- fmt.Errorf("worker %d order %d: correlation %q != %q", wi, i, poa.POID, po.ID)
					return
				}
			}
		}(wi, w.buyer)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	wantSAP, wantOracle := 2*perWorker, 2*perWorker
	if got := h.Systems["SAP"].StoredOrders(); got != wantSAP {
		t.Errorf("SAP stored %d, want %d", got, wantSAP)
	}
	if got := h.Systems["Oracle"].StoredOrders(); got != wantOracle {
		t.Errorf("Oracle stored %d, want %d", got, wantOracle)
	}
}

// TestConcurrentClientsOverNetwork runs multiple partners concurrently
// against a served hub over a mildly faulty network.
func TestConcurrentClientsOverNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("network sweep")
	}
	m, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	n := msg.NewInProcNetwork(msg.Faults{LossProb: 0.1, Seed: 5})
	defer n.Close()
	rcfg := msg.ReliableConfig{RetryInterval: 10 * time.Millisecond, MaxAttempts: 80}
	hubEP, err := n.Endpoint("hub")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(h, hubEP, WithReliableConfig(rcfg))
	defer server.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// Several serving goroutines so exchanges overlap.
	for i := 0; i < 4; i++ {
		go server.Serve(ctx, nil)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for _, p := range m.Partners {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep, err := n.Endpoint(p.ID)
			if err != nil {
				errCh <- err
				return
			}
			client := NewClient(p, ep, rcfg, "hub")
			defer client.Close()
			g := doc.NewGenerator(int64(len(p.ID)))
			buyer := doc.Party{ID: p.ID, Name: p.Name, DUNS: p.DUNS}
			for i := 0; i < 10; i++ {
				po := g.PO(buyer, seller)
				poa, err := client.RoundTrip(ctx, po)
				if err != nil {
					errCh <- fmt.Errorf("%s order %d: %w", p.ID, i, err)
					return
				}
				if poa.POID != po.ID {
					errCh <- fmt.Errorf("%s order %d: wrong correlation", p.ID, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := h.Systems["SAP"].StoredOrders() + h.Systems["Oracle"].StoredOrders(); got != 20 {
		t.Errorf("back ends stored %d orders, want 20", got)
	}
}
