package core

import (
	"encoding/json"
	"testing"

	"repro/internal/cfgstore"
)

// FuzzConfigRecordDecode feeds arbitrary payloads through the config-record
// decoding surface (the same harness shape as internal/journal.FuzzDecode):
// decodeConfigRecord must never panic and must either return a well-formed
// change — valid action, non-empty artifact key, positive version,
// non-negative epoch — or an error, never a malformed apply. Accepted
// records must round-trip through re-marshaling, and replaying any accepted
// record into a fresh config store must keep the store's invariants (epoch
// never negative, restore never panics).
func FuzzConfigRecordDecode(f *testing.F) {
	seed := func(jc journalConfig) []byte {
		b, err := json.Marshal(jc)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add([]byte{})
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`null`))
	f.Add(seed(journalConfig{Epoch: 1, Action: cfgActionRegister, Class: string(cfgstore.ClassBinding), Name: "binding:EDI-X12", Version: 2, Note: "swap"}))
	f.Add(seed(journalConfig{Epoch: 2, Action: cfgActionStage, Class: string(cfgstore.ClassBinding), Name: "binding:EDI-X12", Version: 3, Note: "canary"}))
	f.Add(seed(journalConfig{Epoch: 3, Action: cfgActionActivate, Class: string(cfgstore.ClassRules), Name: ApprovalRuleSet, Version: 1, Note: "rollback"}))
	f.Add(seed(journalConfig{Epoch: -1, Action: cfgActionRegister, Class: "rules", Name: "x", Version: 1}))
	f.Add(seed(journalConfig{Epoch: 0, Action: "promote", Class: "rules", Name: "x", Version: 1}))
	f.Add(seed(journalConfig{Epoch: 0, Action: cfgActionRegister, Class: "", Name: "", Version: 0}))
	f.Add([]byte(`{"epoch":9007199254740993,"action":"register","class":"binding","name":"b","version":2147483647}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		jc, err := decodeConfigRecord(data)
		if err != nil {
			return // rejected: the replay path skips it, nothing else to hold
		}
		// The validity contract: only well-formed changes decode.
		switch jc.Action {
		case cfgActionRegister, cfgActionStage, cfgActionActivate:
		default:
			t.Fatalf("accepted unknown action %q", jc.Action)
		}
		if jc.Class == "" || jc.Name == "" {
			t.Fatalf("accepted record without an artifact key: %+v", jc)
		}
		if jc.Version <= 0 {
			t.Fatalf("accepted non-positive version %d", jc.Version)
		}
		if jc.Epoch < 0 {
			t.Fatalf("accepted negative epoch %d", jc.Epoch)
		}
		// Round-trip: an accepted record re-marshals and re-decodes to itself.
		reenc, err := json.Marshal(jc)
		if err != nil {
			t.Fatalf("re-marshal accepted record: %v", err)
		}
		jc2, err := decodeConfigRecord(reenc)
		if err != nil {
			t.Fatalf("re-decode of accepted record rejected: %v", err)
		}
		if jc2 != jc {
			t.Fatalf("round trip changed the record: %+v != %+v", jc2, jc)
		}
		// Replaying into a fresh store must preserve store invariants
		// regardless of the record's content.
		s := cfgstore.New()
		_ = s.Restore(cfgstore.Class(jc.Class), jc.Name, jc.Version, jc.Epoch, jc.Action != cfgActionStage, jc.Note)
		if s.Epoch() < 0 {
			t.Fatalf("restore drove the epoch negative: %d", s.Epoch())
		}
		if v, ok := s.Active(cfgstore.Class(jc.Class), jc.Name); ok && v < 0 {
			t.Fatalf("restore produced negative active version %d", v)
		}
	})
}
