package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/health"
	"repro/internal/obs"
)

// Partner health integration: the hub consults the partner's circuit
// breaker (internal/health) at admission, before a submission can occupy
// a scheduler slot or a worker. Exchanges for an open partner fast-fail
// with ErrPartnerUnavailable and are parked on the dead-letter queue with
// their original Request retained, so a heal + Resubmit replays them
// exactly once. Half-open partners admit a bounded number of probe
// exchanges whose real outcomes close or re-open the circuit — there is
// no separate probe traffic and no background goroutine.

// Health exposes the hub's partner health tracker (nil when the hub was
// built without WithHealth).
func (h *Hub) Health() *health.Tracker { return h.health }

// HealthMetrics exposes the per-partner breaker gauges derived from the
// KindHealth event stream.
//
// Deprecated: use Status().Partners.
func (h *Hub) HealthMetrics() *obs.HealthMetrics { return h.healthMetrics }

// breakerStep maps the state a breaker transitioned into onto its
// KindHealth event step.
func breakerStep(to health.State) string {
	switch to {
	case health.StateOpen:
		return obs.StepBreakerOpen
	case health.StateHalfOpen:
		return obs.StepBreakerHalfOpen
	default:
		return obs.StepBreakerClosed
	}
}

// healthKey names the trading partner a request is bound for, when the
// request carries it ahead of decoding ("" otherwise — such requests are
// not health-gated because their partner is unknown until the pipeline
// decodes them).
func (r *Request) healthKey() string {
	switch r.Kind {
	case DocPO:
		if r.PO != nil {
			return r.PO.Buyer.ID
		}
	case DocInvoice:
		return r.PartnerID
	case DocWirePO:
		return r.PartnerID
	}
	return ""
}

// healthGate consults the partner's circuit breaker at admission. It
// returns the breaker key ("" when health is not consulted), whether the
// admitted exchange is a half-open probe, and — when the circuit rejects
// the exchange — the fast-fail result, already dead-lettered.
func (h *Hub) healthGate(req Request) (partner string, probe bool, rejected *Result) {
	if h.health == nil {
		return "", false, nil
	}
	partner = req.healthKey()
	if partner == "" {
		return "", false, nil
	}
	if _, ok := h.resolveRoute(partner); !ok {
		// Unknown partner: let the pipeline fail with ErrUnknownPartner
		// instead of growing a breaker for a partner that does not exist.
		return "", false, nil
	}
	probe, admitted := h.health.Breaker(partner).Allow()
	if admitted {
		return partner, probe, nil
	}
	res := h.fastFail(req, partner, obs.StepFastFail)
	return partner, false, &res
}

// fastFail terminates a request at admission without consuming a worker
// or any retry attempts: an exchange record is created and immediately
// failed with ErrPartnerUnavailable, the request itself is retained on
// the dead-letter queue for Resubmit, and a KindHealth event (fast-fail
// or shed) attributes the rejection to the partner's breaker.
func (h *Hub) fastFail(req Request, partner string, step string) Result {
	route, ok := h.resolveRoute(partner)
	if !ok {
		err := fmt.Errorf("%w: %q", ErrUnknownPartner, partner)
		return Result{Err: err}
	}
	flow := obs.FlowPO
	if req.Kind == DocInvoice {
		flow = obs.FlowInvoice
	}
	ex := h.newExchange(route, flow, exchangeOpts{journaled: req.journaled})
	cause := fmt.Errorf("%w: circuit %s", ErrPartnerUnavailable, h.health.StateOf(partner))
	err := wrapExchangeErr(ex, obs.StageExchange, "", cause)
	h.emitLifecycle(ex, obs.StepStarted, 0, nil)
	h.emitLifecycle(ex, obs.StepFailed, 0, err)
	h.deadLetterRequest(ex, err, req)
	h.bus.Emit(obs.Event{
		ExchangeID: ex.ID,
		Partner:    partner,
		Flow:       flow,
		Kind:       obs.KindHealth,
		Stage:      obs.StageHealth,
		Step:       step,
		Err:        err,
	})
	if step == obs.StepShed {
		h.shed.Add(1)
	}
	return Result{Exchange: ex, Err: err}
}

// runTracked executes a request and feeds its outcome to the partner's
// breaker: probe outcomes close or re-open a half-open circuit, normal
// outcomes drive the sliding failure window. Only outcomes attributable
// to the endpoint are recorded — a cancellation or deadline expiry of the
// submission's own context is the caller's doing, and a pipeline failure
// (malformed document, protocol mismatch, codec error) says nothing about
// the partner's availability; such outcomes release a probe's slot
// without a verdict so the half-open circuit can admit a fresh probe.
func (h *Hub) runTracked(ctx context.Context, req Request, partner string, probe bool) Result {
	res := h.run(ctx, req)
	if h.health == nil || partner == "" {
		return res
	}
	br := h.health.Breaker(partner)
	if probe {
		var exID string
		if res.Exchange != nil {
			exID = res.Exchange.ID
		}
		h.bus.Emit(obs.Event{
			ExchangeID: exID,
			Partner:    partner,
			Kind:       obs.KindHealth,
			Stage:      obs.StageHealth,
			Step:       obs.StepProbe,
			Err:        res.Err,
		})
	}
	switch {
	case res.Err == nil:
		if probe {
			br.RecordProbe(false)
		} else {
			br.Record(false)
		}
	case ctx.Err() != nil || errors.Is(res.Err, context.Canceled):
		// The submission's own context was cancelled or expired: the
		// caller's doing, not the endpoint's. No verdict.
		if probe {
			br.ReleaseProbe()
		}
	case !endpointFailure(res.Err):
		// Pipeline/document failure: one client repeatedly submitting a
		// malformed document must not open a healthy partner's circuit.
		if probe {
			br.ReleaseProbe()
		}
	case res.Exchange != nil && res.Exchange.canaryArm:
		// The exchange rode a canary candidate: its failure indicts the
		// candidate configuration, which the canary comparison handles
		// (rollback), not the partner's endpoint. Feeding it to the breaker
		// would open the circuit and take down the incumbent's traffic too.
		if probe {
			br.ReleaseProbe()
		}
	default:
		if probe {
			br.RecordProbe(true)
		} else {
			br.Record(true)
		}
	}
	return res
}

// endpointFailure reports whether an exchange error is attributable to
// the partner's endpoint — a failure of a delivery/step stage of the
// pipeline (a backend fault, a hung or refusing endpoint, a per-attempt
// timeout) — rather than to the document or the hub itself. Decode and
// normalization errors, admission sentinels and "no outbound produced"
// never carry a step stage, so they do not feed the breaker.
func endpointFailure(err error) bool {
	var ee *ExchangeError
	if !errors.As(err, &ee) {
		// Raw errors (decode, codec lookup, normalization) precede any
		// pipeline step and are never the endpoint's fault.
		return false
	}
	switch ee.Stage {
	case obs.StagePublic, obs.StageBinding, obs.StagePrivate, obs.StageApp:
		return true
	}
	return false
}

// releaseProbe frees a half-open probe slot admitted by healthGate when
// the admitted exchange will never run and report an outcome (the
// scheduler refused or dropped it).
func (h *Hub) releaseProbe(partner string, probe bool) {
	if !probe || h.health == nil || partner == "" {
		return
	}
	h.health.Breaker(partner).ReleaseProbe()
}

// healthDegraded reports whether the adaptive shedder should drop
// normal-priority work for the scheduler key (a trading partner) under
// queue pressure.
func (h *Hub) healthDegraded(key string) bool {
	return h.health != nil && h.health.Breaker(key).Degraded()
}
