package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cfgstore"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/journal"
)

// configTestHub builds a journaled Figure 14 hub for the recovery drills.
func configTestHub(t *testing.T, path string) *Hub {
	t.Helper()
	model, err := PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(model, WithJournal(path), WithFsyncPolicy(journal.FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	return hub
}

// activeSet captures every managed artifact's active version.
func activeSet(h *Hub) map[cfgstore.Key]int {
	out := map[cfgstore.Key]int{}
	for _, k := range h.ConfigStore().Keys() {
		if v, ok := h.ConfigStore().Active(k.Class, k.Name); ok {
			out[k] = v
		}
	}
	return out
}

// TestConfigRecoveryRestoresEpoch is the crash-point drill of the change
// journal: a hub applies a run of hot-swaps and crashes (abandoned
// un-closed, exactly as a dead process leaves its journal); the next
// incarnation must restore the exact pre-crash config epoch and
// active-version set before Recover even runs, and still serve exchanges —
// pinned versions whose type bodies did not survive the restart fall back
// to the live latest instead of dangling.
func TestConfigRecoveryRestoresEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hub.wal")
	hub1 := configTestHub(t, path)
	if _, err := hub1.SwapBinding(formats.EDI, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hub1.SwapBinding(formats.EDI, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hub1.ChangePartnerThreshold("TP2", 90000); err != nil {
		t.Fatal(err)
	}
	wantEpoch := hub1.ConfigStore().Epoch()
	wantActive := activeSet(hub1)
	if wantEpoch == 0 || len(wantActive) == 0 {
		t.Fatalf("precondition: epoch %d, %d artifacts", wantEpoch, len(wantActive))
	}
	// hub1 is abandoned un-closed, as a crash would leave it.

	hub2 := configTestHub(t, path)
	defer hub2.StopWorkers()
	defer hub2.CloseJournal()
	if got := hub2.ConfigStore().Epoch(); got != wantEpoch {
		t.Fatalf("restored config epoch %d, want pre-crash %d", got, wantEpoch)
	}
	for k, want := range wantActive {
		if got, _ := hub2.ConfigStore().Active(k.Class, k.Name); got != want {
			t.Fatalf("artifact %s restored at v%d, want pre-crash v%d", k, got, want)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := hub2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	// The swapped binding's v3 body is gone with the old process; the pin
	// falls back to the live latest and the hub still serves.
	g := doc.NewGenerator(41)
	po := g.PO(doc.Party{ID: "TP1", Name: "Trading Partner 1", DUNS: "111111111"},
		doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"})
	if _, err := hub2.Do(ctx, Request{Kind: DocPO, PO: po}); err != nil {
		t.Fatalf("round trip after config recovery: %v", err)
	}
	// A further swap continues the version and epoch sequences monotonically.
	nt, err := hub2.SwapBinding(formats.EDI, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Version != 4 {
		t.Fatalf("post-recovery swap assigned v%d, want v4 (history v1..v3 restored)", nt.Version)
	}
	if got := hub2.ConfigStore().Epoch(); got != wantEpoch+1 {
		t.Fatalf("post-recovery swap moved the epoch to %d, want %d", got, wantEpoch+1)
	}
}

// TestConfigRecoveryCheckpointPreservesEpoch: compaction exports the config
// store's live state as replayable records, so a checkpoint followed by
// more swaps and a crash still recovers the exact epoch — the compacted
// history is not an epoch reset.
func TestConfigRecoveryCheckpointPreservesEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hub.wal")
	hub1 := configTestHub(t, path)
	if _, err := hub1.SwapBinding(formats.RosettaNet, nil); err != nil {
		t.Fatal(err)
	}
	if err := hub1.CheckpointJournal(); err != nil {
		t.Fatal(err)
	}
	if _, err := hub1.SwapBinding(formats.RosettaNet, nil); err != nil {
		t.Fatal(err)
	}
	wantEpoch := hub1.ConfigStore().Epoch()
	wantActive := activeSet(hub1)
	// Crash: abandoned un-closed.

	hub2 := configTestHub(t, path)
	defer hub2.StopWorkers()
	defer hub2.CloseJournal()
	if got := hub2.ConfigStore().Epoch(); got != wantEpoch {
		t.Fatalf("epoch %d after checkpoint+swap crash, want %d", got, wantEpoch)
	}
	for k, want := range wantActive {
		if got, _ := hub2.ConfigStore().Active(k.Class, k.Name); got != want {
			t.Fatalf("artifact %s restored at v%d, want v%d", k, got, want)
		}
	}
}

// TestConfigRecoveryTornTail: a config record torn mid-frame at the journal
// tail (the crash hit during the write) must not block recovery — the torn
// bytes are dropped, the store converges on the last intact record's state,
// and the hub keeps serving and swapping.
func TestConfigRecoveryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hub.wal")
	hub1 := configTestHub(t, path)
	if _, err := hub1.SwapBinding(formats.EDI, nil); err != nil {
		t.Fatal(err)
	}
	midEpoch := hub1.ConfigStore().Epoch()
	// The RosettaNet swap is the journal's final record; tearing its frame
	// simulates a crash mid-append.
	if _, err := hub1.SwapBinding(formats.RosettaNet, nil); err != nil {
		t.Fatal(err)
	}
	hub1.CloseJournal()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	hub2 := configTestHub(t, path)
	defer hub2.StopWorkers()
	defer hub2.CloseJournal()
	if hub2.Journal().Stats().TornBytes == 0 {
		t.Fatal("reopen reported no torn bytes from a torn tail")
	}
	if got := hub2.ConfigStore().Epoch(); got != midEpoch {
		t.Fatalf("epoch %d after torn tail, want %d (the last intact record)", got, midEpoch)
	}
	// The torn swap never happened: RosettaNet's binding is active at v1 and
	// the version number is free for the next swap.
	if got, _ := hub2.ConfigStore().Active(cfgstore.ClassBinding, BindingName(formats.RosettaNet)); got != 1 {
		t.Fatalf("RosettaNet binding active at v%d after torn tail, want v1", got)
	}
	nt, err := hub2.SwapBinding(formats.RosettaNet, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Version != 2 {
		t.Fatalf("post-tear swap assigned v%d, want v2", nt.Version)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	g := doc.NewGenerator(43)
	po := g.PO(doc.Party{ID: "TP2", Name: "Trading Partner 2", DUNS: "222222222"},
		doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"})
	if _, err := hub2.Do(ctx, Request{Kind: DocPO, PO: po}); err != nil {
		t.Fatalf("round trip after torn-tail recovery: %v", err)
	}
}
