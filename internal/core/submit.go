package core

import (
	"context"
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/obs"
)

// The unified submission API: every way into the hub — normalized PO round
// trips, protocol-native wire documents, outbound invoices — is one Request
// run by Do (synchronous, on the caller's goroutine) or DoAsync (queued
// onto the sharded scheduler, resolved through a Future). The legacy
// Submit/SubmitWire/SubmitInvoice and RoundTrip/ProcessInboundPO/SendInvoice
// entry points survive as thin deprecated wrappers.

// DocKind selects the business flow of a Request.
type DocKind string

// Request kinds.
const (
	// DocPO runs the normalized purchase order round trip (the RoundTrip
	// flow): Request.PO is required.
	DocPO DocKind = "po"
	// DocWirePO runs an inbound protocol-native purchase order (the
	// ProcessInboundPO flow): Request.Protocol and Request.Wire are
	// required; Request.PartnerID is an optional scheduler shard-key hint
	// for async submissions (the partner is not known until decode).
	DocWirePO DocKind = "wire-po"
	// DocInvoice runs the outbound invoice flow (the SendInvoice flow):
	// Request.PartnerID and Request.POID are required.
	DocInvoice DocKind = "invoice"
)

// Priority selects a Request's scheduler queue lane.
type Priority int

// Priorities. The high lane of each shard is drained before the normal one.
const (
	PriorityNormal Priority = iota
	PriorityHigh
)

// Request describes one submission to the hub.
type Request struct {
	// Kind selects the flow; the zero value with PO set behaves as DocPO.
	Kind DocKind

	// PO is the normalized purchase order (DocPO).
	PO *doc.PurchaseOrder
	// Protocol and Wire are the inbound protocol document (DocWirePO).
	Protocol formats.Format
	Wire     []byte
	// PartnerID identifies the billed partner (DocInvoice) and, for
	// DocWirePO, optionally hints the scheduler shard key.
	PartnerID string
	// POID identifies the fulfilled order to bill (DocInvoice).
	POID string

	// Priority selects the scheduler lane (DoAsync only).
	Priority Priority
	// Retry overrides the hub's retry policies for this exchange only.
	Retry *RetryPolicy

	// resubmit marks a recovery replay or dead-letter rerun: its app
	// binding tolerates the backend's duplicate-order rejection (the
	// original run may have executed before a crash or downstream failure).
	resubmit bool
	// journaled marks a request whose admission was write-ahead-logged.
	journaled bool
}

// normalize fills derivable fields and validates the request.
func (r *Request) normalize() error {
	if r.Kind == "" {
		switch {
		case r.PO != nil:
			r.Kind = DocPO
		case len(r.Wire) > 0:
			r.Kind = DocWirePO
		case r.POID != "":
			r.Kind = DocInvoice
		}
	}
	switch r.Kind {
	case DocPO:
		if r.PO == nil {
			return fmt.Errorf("%w: DocPO requires PO", ErrInvalidRequest)
		}
	case DocWirePO:
		if r.Protocol == "" || len(r.Wire) == 0 {
			return fmt.Errorf("%w: DocWirePO requires Protocol and Wire", ErrInvalidRequest)
		}
	case DocInvoice:
		if r.PartnerID == "" || r.POID == "" {
			return fmt.Errorf("%w: DocInvoice requires PartnerID and POID", ErrInvalidRequest)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalidRequest, r.Kind)
	}
	return nil
}

// shardKey is the scheduler key the request hashes to its shard by: the
// trading partner wherever it is known before decode.
func (r *Request) shardKey() string {
	switch r.Kind {
	case DocPO:
		if r.PO != nil {
			return r.PO.Buyer.ID
		}
	case DocInvoice:
		return r.PartnerID
	case DocWirePO:
		if r.PartnerID != "" {
			return r.PartnerID
		}
		return string(r.Protocol)
	}
	return string(r.Kind)
}

// Result is the outcome of a submitted exchange.
type Result struct {
	// POA is the normalized acknowledgment (DocPO).
	POA *doc.PurchaseOrderAck
	// Wire is the outbound wire document (DocWirePO, DocInvoice).
	Wire []byte
	// Exchange is the exchange record; it may be non-nil even on error.
	Exchange *Exchange
	// Err is the pipeline error, if any.
	Err error
}

// Future resolves to the Result of a submitted exchange.
type Future struct {
	done chan struct{}
	res  Result
}

// Done returns a channel that is closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the exchange completes or ctx is done. A context
// error only abandons the wait; the exchange itself keeps running under the
// context it was submitted with.
func (f *Future) Result(ctx context.Context) Result {
	select {
	case <-f.done:
		return f.res
	case <-ctx.Done():
		return Result{Err: ctx.Err()}
	}
}

// Do runs one request synchronously on the caller's goroutine and returns
// its result. The returned error equals Result.Err; the Result additionally
// carries the exchange record and payloads even on failure.
func (h *Hub) Do(ctx context.Context, req Request) (*Result, error) {
	if err := req.normalize(); err != nil {
		return &Result{Err: err}, err
	}
	key, err := h.journalAdmit(&req)
	if err != nil {
		return &Result{Err: err}, err
	}
	partner, probe, rejected := h.healthGate(req)
	if rejected != nil {
		h.journalComplete(key, &req, rejected)
		return rejected, rejected.Err
	}
	res := h.runTracked(ctx, req, partner, probe)
	h.journalComplete(key, &req, &res)
	return &res, res.Err
}

// DoAsync queues one request onto the sharded scheduler and returns a
// future for its result. The scheduler is started lazily with the hub's
// configured shard/worker options on first use. Cancelling ctx abandons a
// queued request and aborts a running exchange between steps.
func (h *Hub) DoAsync(ctx context.Context, req Request) (*Future, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	key, err := h.journalAdmit(&req)
	if err != nil {
		return nil, err
	}
	return h.doAsync(ctx, req, key)
}

// doAsync queues an already-admitted (normalized, journaled) request; key
// is its journal admission key ("" without a journal). Recovery replays
// re-enter here under their original key. When the scheduler refuses the
// submission, the admission is left pending in the journal — it never ran,
// so a later Recover re-delivers it.
func (h *Hub) doAsync(ctx context.Context, req Request, key string) (*Future, error) {
	partner, probe, rejected := h.healthGate(req)
	if rejected != nil {
		// Open circuit: resolve immediately without touching the scheduler.
		h.journalComplete(key, &req, rejected)
		fut := &Future{done: make(chan struct{}), res: *rejected}
		close(fut.done)
		return fut, nil
	}
	s, err := h.ensureScheduler()
	if err != nil {
		// The breaker already admitted this exchange: free a probe's slot
		// or the half-open circuit would wait forever for its verdict.
		h.releaseProbe(partner, probe)
		return nil, err
	}
	// The shedder may drop normal-priority work for a degraded partner
	// when its home shard is backed up — but never probes (they are the
	// recovery signal) and never requests without a health-gated partner.
	var onShed func() Result
	if partner != "" && !probe {
		onShed = func() Result {
			res := h.fastFail(req, partner, obs.StepShed)
			h.journalComplete(key, &req, &res)
			return res
		}
	}
	// onDrop releases the probe slot when the scheduler resolves the job
	// with ErrHubStopped instead of running it (stop raced the enqueue).
	var onDrop func()
	if probe {
		onDrop = func() { h.releaseProbe(partner, probe) }
	}
	fut, err := s.submit(ctx, req.shardKey(), req.Priority, func(ctx context.Context) Result {
		res := h.runTracked(ctx, req, partner, probe)
		h.journalComplete(key, &req, &res)
		return res
	}, onShed, onDrop)
	if err != nil {
		// Rejected or abandoned before the job could run (scheduler
		// stopped, ctx cancelled while blocked on backpressure).
		h.releaseProbe(partner, probe)
		return nil, err
	}
	return fut, nil
}

// run executes a normalized request.
func (h *Hub) run(ctx context.Context, req Request) Result {
	opts := exchangeOpts{retry: req.Retry, resubmit: req.resubmit, journaled: req.journaled}
	switch req.Kind {
	case DocPO:
		poa, ex, err := h.roundTrip(ctx, req.PO, opts)
		return Result{POA: poa, Exchange: ex, Err: err}
	case DocWirePO:
		out, ex, err := h.processInboundPO(ctx, req.Protocol, req.Wire, opts)
		return Result{Wire: out, Exchange: ex, Err: err}
	case DocInvoice:
		wire, ex, err := h.sendInvoice(ctx, req.PartnerID, req.POID, opts)
		return Result{Wire: wire, Exchange: ex, Err: err}
	}
	err := fmt.Errorf("%w: unknown kind %q", ErrInvalidRequest, req.Kind)
	return Result{Err: err}
}

// ensureScheduler starts the scheduler with the hub's configured options if
// it is not already running.
func (h *Hub) ensureScheduler() (*scheduler, error) {
	h.schedMu.Lock()
	defer h.schedMu.Unlock()
	if h.schedClosed {
		return nil, ErrHubStopped
	}
	if h.sched == nil {
		cfg := h.schedCfg
		h.sched = newScheduler(h, cfg.shards, cfg.workersPerShard, cfg.queueDepthOrDefault())
	}
	return h.sched, nil
}

// StartWorkers starts the scheduler as a single shard with n workers — the
// semantics of the former global worker pool. It is a no-op when the
// scheduler is already running; to resize, StopWorkers first.
//
// Deprecated: configure the scheduler with NewHub(m, WithShards(…),
// WithWorkersPerShard(…)) and let DoAsync start it, or call StartScheduler.
func (h *Hub) StartWorkers(n int) {
	h.startSingleShard(n)
}

// startSingleShard starts the scheduler as one shard with n workers — the
// compat topology behind StartWorkers and ServeConcurrent's workers
// argument.
func (h *Hub) startSingleShard(n int) {
	if n < 1 {
		n = 1
	}
	h.schedMu.Lock()
	defer h.schedMu.Unlock()
	if h.sched == nil {
		h.schedClosed = false
		h.sched = newScheduler(h, 1, n, DefaultQueueDepthPerWorker*n)
	}
}

// StartScheduler starts the sharded scheduler with the hub's configured
// options (WithShards, WithWorkersPerShard, WithQueueDepth). It is a no-op
// when the scheduler is already running.
func (h *Hub) StartScheduler() {
	h.schedMu.Lock()
	defer h.schedMu.Unlock()
	if h.sched == nil {
		h.schedClosed = false
		cfg := h.schedCfg
		h.sched = newScheduler(h, cfg.shards, cfg.workersPerShard, cfg.queueDepthOrDefault())
	}
}

// StopWorkers stops the scheduler and waits for in-flight exchanges to
// finish. Jobs still queued when it stops resolve with ErrHubStopped. The
// scheduler can be restarted with StartWorkers/StartScheduler.
func (h *Hub) StopWorkers() {
	h.schedMu.Lock()
	s := h.sched
	if s == nil {
		h.schedMu.Unlock()
		return
	}
	h.schedClosed = true
	h.schedMu.Unlock()

	s.stop()

	h.schedMu.Lock()
	h.sched = nil
	h.schedMu.Unlock()
}

// DrainSummary reports what a graceful Drain delivered.
type DrainSummary struct {
	// Completed counts exchanges that finished successfully over the hub's
	// lifetime, including those completed during the drain itself.
	Completed int64
	// Failed counts exchanges that ended in error (fast-fails and sheds
	// included).
	Failed int64
	// Shed counts submissions dropped by the adaptive load shedder.
	Shed int64
	// DeadLettered is the number of dead letters flushed by this drain.
	DeadLettered int64
	// DeadLetters are the flushed dead letters, handed to the caller for
	// offline replay; the hub's queue is empty afterwards.
	DeadLetters []DeadLetter
}

// Drain gracefully shuts the scheduler down: admission stops immediately
// (new submissions get ErrHubStopped), queued and in-flight exchanges run
// to completion, and the dead-letter queue is flushed into the returned
// summary. ctx bounds the wait: on expiry Drain returns ctx.Err() with a
// summary of what had finished by then, while the shutdown continues in
// the background — dead letters are left queued for a later flush
// (DrainDeadLetters or another Drain), and once the background shutdown
// completes the hub can be restarted with StartScheduler/StartWorkers.
func (h *Hub) Drain(ctx context.Context) (DrainSummary, error) {
	h.schedMu.Lock()
	s := h.sched
	h.schedClosed = true
	h.schedMu.Unlock()
	if s != nil {
		done := make(chan struct{})
		go func() {
			s.stop()
			// Clear the slot here, not on Drain's goroutine: when ctx
			// expired before the stop finished, the hub would otherwise
			// keep the dead scheduler forever and could never restart
			// (StartScheduler only re-opens admission once h.sched is nil).
			h.schedMu.Lock()
			if h.sched == s {
				h.sched = nil
			}
			h.schedMu.Unlock()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			return h.drainSummary(nil), ctx.Err()
		}
	}
	return h.drainSummary(h.DrainDeadLetters()), nil
}

// drainSummary derives the drain outcome from the lifecycle counters.
func (h *Hub) drainSummary(dls []DeadLetter) DrainSummary {
	c := h.Counters()
	var terminal int64
	for _, n := range c.ByFlow {
		terminal += n
	}
	return DrainSummary{
		Completed:    terminal - c.Failed,
		Failed:       c.Failed,
		Shed:         h.shed.Load(),
		DeadLettered: int64(len(dls)),
		DeadLetters:  dls,
	}
}

// Submit enqueues a normalized purchase order for a full round trip through
// the exchange pipeline and returns a future for its acknowledgment.
//
// Deprecated: use DoAsync with a DocPO Request.
func (h *Hub) Submit(ctx context.Context, po *doc.PurchaseOrder) (*Future, error) {
	return h.DoAsync(ctx, Request{Kind: DocPO, PO: po})
}

// SubmitWire enqueues an inbound protocol-native purchase order and returns
// a future for the outbound POA wire bytes.
//
// Deprecated: use DoAsync with a DocWirePO Request.
func (h *Hub) SubmitWire(ctx context.Context, protocol formats.Format, wire []byte) (*Future, error) {
	return h.DoAsync(ctx, Request{Kind: DocWirePO, Protocol: protocol, Wire: wire})
}

// SubmitInvoice enqueues the outbound invoice flow for a fulfilled order
// and returns a future for the protocol-native invoice wire bytes.
//
// Deprecated: use DoAsync with a DocInvoice Request.
func (h *Hub) SubmitInvoice(ctx context.Context, partnerID, poID string) (*Future, error) {
	return h.DoAsync(ctx, Request{Kind: DocInvoice, PartnerID: partnerID, POID: poID})
}
