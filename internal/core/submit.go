package core

import (
	"context"
	"errors"

	"repro/internal/doc"
	"repro/internal/formats"
)

// The concurrent submission API: exchanges are enqueued onto a bounded
// worker pool and resolve through futures. The pool gives the hub a fixed
// degree of pipeline parallelism (exchanges overlap while each one's own
// chain stays strictly sequential) and the bounded queue gives natural
// backpressure: submitters block once workers fall behind.

// ErrHubStopped is returned for submissions against a stopped worker pool,
// and resolves futures whose jobs were still queued when the pool stopped.
var ErrHubStopped = errors.New("core: hub worker pool stopped")

// DefaultWorkers is the pool size when Submit is called without an explicit
// StartWorkers.
const DefaultWorkers = 4

// Result is the outcome of an asynchronously submitted exchange.
type Result struct {
	// POA is the normalized acknowledgment (Submit).
	POA *doc.PurchaseOrderAck
	// Wire is the outbound wire document (SubmitWire, SubmitInvoice).
	Wire []byte
	// Exchange is the exchange record; it may be non-nil even on error.
	Exchange *Exchange
	// Err is the pipeline error, if any.
	Err error
}

// Future resolves to the Result of a submitted exchange.
type Future struct {
	done chan struct{}
	res  Result
}

// Done returns a channel that is closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the exchange completes or ctx is done. A context
// error only abandons the wait; the exchange itself keeps running under the
// context it was submitted with.
func (f *Future) Result(ctx context.Context) Result {
	select {
	case <-f.done:
		return f.res
	case <-ctx.Done():
		return Result{Err: ctx.Err()}
	}
}

// job is one queued submission.
type job struct {
	ctx context.Context
	run func(ctx context.Context) Result
	fut *Future
}

// StartWorkers starts the submission pool with n workers (minimum 1). It is
// a no-op when the pool is already running; to resize, StopWorkers first.
func (h *Hub) StartWorkers(n int) {
	h.poolMu.Lock()
	defer h.poolMu.Unlock()
	h.startWorkersLocked(n)
}

func (h *Hub) startWorkersLocked(n int) {
	if h.jobs != nil {
		return
	}
	if n < 1 {
		n = 1
	}
	h.poolClosed = false
	// The queue bounds admission at a few jobs per worker: enough to keep
	// workers busy, small enough that submitters feel backpressure.
	h.jobs = make(chan job, 4*n)
	h.quit = make(chan struct{})
	for i := 0; i < n; i++ {
		h.workerWG.Add(1)
		go h.worker(h.jobs, h.quit)
	}
}

func (h *Hub) worker(jobs chan job, quit chan struct{}) {
	defer h.workerWG.Done()
	for {
		select {
		case j := <-jobs:
			h.runJob(j)
		case <-quit:
			// Drain jobs that were admitted before the stop.
			for {
				select {
				case j := <-jobs:
					h.runJob(j)
				default:
					return
				}
			}
		}
	}
}

func (h *Hub) runJob(j job) {
	j.fut.res = j.run(j.ctx)
	close(j.fut.done)
}

// StopWorkers stops the pool and waits for in-flight exchanges to finish.
// Jobs still queued when the pool stops resolve with ErrHubStopped. The
// pool can be restarted with StartWorkers.
func (h *Hub) StopWorkers() {
	h.poolMu.Lock()
	if h.jobs == nil || h.poolClosed {
		h.poolMu.Unlock()
		return
	}
	h.poolClosed = true
	jobs := h.jobs
	quit := h.quit
	h.poolMu.Unlock()

	close(quit)
	// After senderWG drains no submission can still be placing a job (new
	// ones are rejected via poolClosed), so the final drain below sees
	// everything.
	h.senderWG.Wait()
	h.workerWG.Wait()
	for {
		select {
		case j := <-jobs:
			j.fut.res = Result{Err: ErrHubStopped}
			close(j.fut.done)
		default:
			h.poolMu.Lock()
			h.jobs, h.quit = nil, nil
			h.poolMu.Unlock()
			return
		}
	}
}

// submit admits one job to the pool, lazily starting DefaultWorkers when
// no pool is running. It blocks when the queue is full (backpressure) and
// aborts on ctx cancellation or pool shutdown.
func (h *Hub) submit(ctx context.Context, run func(context.Context) Result) (*Future, error) {
	h.poolMu.Lock()
	if h.poolClosed {
		h.poolMu.Unlock()
		return nil, ErrHubStopped
	}
	if h.jobs == nil {
		h.startWorkersLocked(DefaultWorkers)
	}
	jobs := h.jobs
	quit := h.quit
	h.senderWG.Add(1)
	h.poolMu.Unlock()
	defer h.senderWG.Done()

	fut := &Future{done: make(chan struct{})}
	select {
	case jobs <- job{ctx: ctx, run: run, fut: fut}:
		return fut, nil
	case <-quit:
		return nil, ErrHubStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submit enqueues a normalized purchase order for a full round trip through
// the exchange pipeline and returns a future for its acknowledgment.
// Cancelling ctx aborts the exchange between steps; the backend is never
// touched after cancellation.
func (h *Hub) Submit(ctx context.Context, po *doc.PurchaseOrder) (*Future, error) {
	return h.submit(ctx, func(ctx context.Context) Result {
		poa, ex, err := h.RoundTrip(ctx, po)
		return Result{POA: poa, Exchange: ex, Err: err}
	})
}

// SubmitWire enqueues an inbound protocol-native purchase order and returns
// a future for the outbound POA wire bytes.
func (h *Hub) SubmitWire(ctx context.Context, protocol formats.Format, wire []byte) (*Future, error) {
	return h.submit(ctx, func(ctx context.Context) Result {
		out, ex, err := h.ProcessInboundPO(ctx, protocol, wire)
		return Result{Wire: out, Exchange: ex, Err: err}
	})
}

// SubmitInvoice enqueues the outbound invoice flow for a fulfilled order
// and returns a future for the protocol-native invoice wire bytes.
func (h *Hub) SubmitInvoice(ctx context.Context, partnerID, poID string) (*Future, error) {
	return h.submit(ctx, func(ctx context.Context) Result {
		wire, ex, err := h.SendInvoice(ctx, partnerID, poID)
		return Result{Wire: wire, Exchange: ex, Err: err}
	})
}
