package wfstore

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/wf"
)

func TestCompactShrinksLogAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	h := wf.NewHandlers()
	h.Register("nop", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error { return nil })
	e := wf.NewEngine("c", s, h, nil)
	def := &wf.TypeDef{
		Name: "chatty", Version: 1,
		Steps: []wf.StepDef{
			{Name: "a", Kind: wf.StepTask, Handler: "nop"},
			{Name: "w", Kind: wf.StepReceive, Port: "p", DataKey: "x"},
			{Name: "b", Kind: wf.StepTask, Handler: "nop"},
		},
		Arcs: []wf.Arc{{From: "a", To: "w"}, {From: "w", To: "b"}},
	}
	if err := e.Deploy(def); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var parked, completed []string
	for i := 0; i < 20; i++ {
		in, err := e.Start(ctx, "chatty", nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := e.Deliver(ctx, in.ID, "p", "payload"); err != nil {
				t.Fatal(err)
			}
			completed = append(completed, in.ID)
		} else {
			parked = append(parked, in.ID)
		}
	}
	before, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d → %d", before, after)
	}

	// The store keeps working after compaction.
	in, err := e.Start(ctx, "chatty", nil)
	if err != nil {
		t.Fatal(err)
	}
	parked = append(parked, in.ID)

	// Reopen from the compacted (plus post-compaction) log: everything
	// survives, including parked instances that then resume.
	s.Close()
	s2 := openFile(t, path)
	e2 := wf.NewEngine("c2", s2, h, nil)
	for _, id := range completed {
		got, err := s2.GetInstance(id)
		if err != nil || got.State != wf.InstCompleted {
			t.Fatalf("completed instance %s: %v %v", id, got, err)
		}
	}
	for _, id := range parked {
		if err := e2.Deliver(ctx, id, "p", "late"); err != nil {
			t.Fatalf("resume %s after compaction: %v", id, err)
		}
		got, _ := s2.GetInstance(id)
		if got.State != wf.InstCompleted {
			t.Fatalf("instance %s state %s", id, got.State)
		}
	}
}

func TestCompactEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	sz, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz != 0 {
		t.Fatalf("empty store compacted to %d bytes", sz)
	}
}

func TestCompactKeepsAllTypeVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	def := sampleType()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutType(def); err != nil {
		t.Fatal(err)
	}
	v2 := def.Clone()
	v2.Version = 2
	if err := v2.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutType(v2); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openFile(t, path)
	if !s2.HasType("t", 1) || !s2.HasType("t", 2) {
		t.Fatal("type versions lost in compaction")
	}
	latest, err := s2.GetType("t", 0)
	if err != nil || latest.Version != 2 {
		t.Fatalf("latest %v %v", latest, err)
	}
}
