package wfstore

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/wf"
)

// The fsync policy must not change what the store persists — only how
// eagerly the OS is told to make it durable. Every policy must survive a
// close-and-reopen with identical contents.
func TestFileStoreFsyncPolicies(t *testing.T) {
	for _, policy := range []journal.FsyncPolicy{journal.FsyncAlways, journal.FsyncBatched, journal.FsyncNever} {
		t.Run(string(policy), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wf.log")
			s, err := OpenFileStoreFsync(path, policy)
			if err != nil {
				t.Fatal(err)
			}
			def := &wf.TypeDef{
				Name: "t", Version: 1,
				Steps: []wf.StepDef{{Name: "s1", Kind: wf.StepTask, Handler: "h"}},
			}
			if err := s.PutType(def); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				in := &wf.Instance{ID: fmt.Sprintf("i-%d", i), Type: "t", Version: 1, State: wf.InstRunning, Data: map[string]any{"n": i}}
				if err := s.PutInstance(in); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := OpenFileStoreFsync(path, policy)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			ids, err := re.ListInstances()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 10 {
				t.Fatalf("reopened store has %d instances, want 10", len(ids))
			}
			if !re.HasType("t", 1) {
				t.Fatal("reopened store lost the type")
			}
		})
	}
}
