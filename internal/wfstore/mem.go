// Package wfstore provides the workflow database of the paper's Figure 4:
// persistent storage for workflow types and workflow instances, backing the
// workflow engine. Two implementations are provided: an in-memory store for
// simulations and benchmarks, and a durable append-log store with crash
// recovery for deployments that need to survive restarts.
//
// The store holds workflow TYPES and INSTANCES only. Compiled execution
// plans (wf.Plan) are deliberately not part of the schema: a plan is a
// deterministic derivation of a type plus the engine's environment (handler
// registry, port checker), so persisting it would only create a second
// source of truth that can drift. An engine restarted over this store
// recompiles plans lazily from the persisted types.
package wfstore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/wf"
)

// MemStore is an in-memory workflow database. It is safe for concurrent
// use. Instances are stored and returned as deep snapshots, so callers can
// never mutate stored state in place.
type MemStore struct {
	mu        sync.RWMutex
	types     map[string]*wf.TypeDef // name@version → def
	latest    map[string]int         // name → max version
	instances map[string]*wf.Instance
}

// NewMemStore returns an empty in-memory workflow database.
func NewMemStore() *MemStore {
	return &MemStore{
		types:     map[string]*wf.TypeDef{},
		latest:    map[string]int{},
		instances: map[string]*wf.Instance{},
	}
}

// PutType implements wf.Store.
func (s *MemStore) PutType(t *wf.TypeDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.types[t.Key()] = t
	if t.Version > s.latest[t.Name] {
		s.latest[t.Name] = t.Version
	}
	return nil
}

// GetType implements wf.Store; version 0 loads the latest version.
func (s *MemStore) GetType(name string, version int) (*wf.TypeDef, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if version == 0 {
		version = s.latest[name]
	}
	t, ok := s.types[fmt.Sprintf("%s@%d", name, version)]
	if !ok {
		return nil, fmt.Errorf("%w: type %s@%d", wf.ErrNotFound, name, version)
	}
	return t, nil
}

// HasType implements wf.Store.
func (s *MemStore) HasType(name string, version int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if version == 0 {
		version = s.latest[name]
	}
	_, ok := s.types[fmt.Sprintf("%s@%d", name, version)]
	return ok
}

// ListTypes implements wf.Store.
func (s *MemStore) ListTypes() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.types))
	for k := range s.types {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// PutInstance implements wf.Store.
func (s *MemStore) PutInstance(in *wf.Instance) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.instances[in.ID] = in
	return nil
}

// GetInstance implements wf.Store.
func (s *MemStore) GetInstance(id string) (*wf.Instance, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	in, ok := s.instances[id]
	if !ok {
		return nil, fmt.Errorf("%w: instance %s", wf.ErrNotFound, id)
	}
	return in, nil
}

// ListInstances implements wf.Store.
func (s *MemStore) ListInstances() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.instances))
	for k := range s.instances {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// DeleteInstance implements wf.Store.
func (s *MemStore) DeleteInstance(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.instances, id)
	return nil
}
