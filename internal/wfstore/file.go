package wfstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/journal"
	"repro/internal/wf"
)

// FileStore is a durable workflow database: every mutation appends one JSON
// record to a log file and is flushed before the call returns; opening the
// store replays the log, so an engine restarted after a crash resumes from
// its last persisted transition (Figure 4's database made durable).
//
// Durability contract: every append is flushed to the OS before the
// mutating call returns, so a process crash never loses an acknowledged
// mutation. What a power loss can take is bounded by the store's fsync
// policy (journal.FsyncPolicy, default FsyncBatched): FsyncAlways fsyncs
// each append, FsyncBatched group-commits an fsync every few appends or
// milliseconds, FsyncNever leaves syncing to the OS entirely. A torn final
// record (an append the crash cut short, recognizable by its missing
// newline terminator) is dropped and truncated at the next open; only that
// one record is lost.
//
// Instance data values are serialized through the codec in codec.go, which
// supports primitives and the normalized document types. Native
// format values (e.g. a decoded IDoc) are transient hub state and must not
// be placed in instance data that reaches a FileStore.
type FileStore struct {
	mu     sync.Mutex
	mem    *MemStore
	fs     journal.FS
	f      journal.File
	w      *bufio.Writer
	path   string
	syncer journal.Syncer
}

type logRecord struct {
	Op       string          `json:"op"` // "type", "inst", "del"
	Type     *wf.TypeDef     `json:"type,omitempty"`
	Instance json.RawMessage `json:"instance,omitempty"`
	ID       string          `json:"id,omitempty"`
}

// OpenFileStore opens (creating if needed) the log at path and replays it,
// with the default batched fsync policy. A torn final record — an append
// cut short by a crash, recognizable by its missing newline terminator —
// is dropped and truncated away; only that one record is lost. Unparseable
// records that were fully written (newline-terminated) are corruption and
// fail the open.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreFsync(path, journal.FsyncBatched)
}

// OpenFileStoreFsync is OpenFileStore with an explicit fsync policy (see
// the durability contract in the package comment of this type).
func OpenFileStoreFsync(path string, policy journal.FsyncPolicy) (*FileStore, error) {
	return OpenFileStoreFS(path, policy, nil)
}

// OpenFileStoreFS is OpenFileStoreFsync with an explicit storage seam
// (nil means the real filesystem) — the chaos harness threads a
// journal.FaultFS through it to test the store against a failing disk.
func OpenFileStoreFS(path string, policy journal.FsyncPolicy, fs journal.FS) (*FileStore, error) {
	if fs == nil {
		fs = journal.OSFS()
	}
	s := &FileStore{
		mem:    NewMemStore(),
		fs:     fs,
		path:   path,
		syncer: journal.NewSyncer(policy, 0, 0),
	}
	if data, err := fs.ReadFile(path); err == nil {
		good, rerr := s.replay(data)
		if rerr != nil {
			return nil, fmt.Errorf("wfstore: replay %s: %w", path, rerr)
		}
		if good < len(data) {
			// Physically drop the torn tail before reopening for append:
			// writing after a partial record would fuse it with the next
			// record into garbage.
			if terr := fs.Truncate(path, int64(good)); terr != nil {
				return nil, fmt.Errorf("wfstore: truncate torn tail of %s: %w", path, terr)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("wfstore: open %s: %w", path, err)
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wfstore: open %s: %w", path, err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// replay applies the log records in data and returns the byte offset just
// past the last durable record. Records are durable only once their
// trailing newline hit the file (append writes record+newline in one
// flush), so an unterminated final line is the torn tail of a crashed
// append: it is not replayed and not counted, whatever it contains.
func (s *FileStore) replay(data []byte) (int, error) {
	off := 0
	line := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return off, nil // torn tail
		}
		line++
		raw := data[off : off+nl]
		off += nl + 1
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return off, fmt.Errorf("line %d: %w", line, err)
		}
		switch rec.Op {
		case "type":
			if err := rec.Type.Validate(); err != nil {
				return off, fmt.Errorf("line %d: %w", line, err)
			}
			if err := s.mem.PutType(rec.Type); err != nil {
				return off, err
			}
		case "inst":
			in, err := decodeInstance(rec.Instance)
			if err != nil {
				return off, fmt.Errorf("line %d: %w", line, err)
			}
			if err := s.mem.PutInstance(in); err != nil {
				return off, err
			}
		case "del":
			if err := s.mem.DeleteInstance(rec.ID); err != nil {
				return off, err
			}
		default:
			return off, fmt.Errorf("line %d: unknown op %q", line, rec.Op)
		}
	}
	return off, nil
}

func (s *FileStore) append(rec logRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wfstore: marshal: %w", err)
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("wfstore: append: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("wfstore: flush: %w", err)
	}
	if err := s.syncer.DidAppend(s.f); err != nil {
		return fmt.Errorf("wfstore: fsync: %w", err)
	}
	return nil
}

// Close drains any pending group commit, flushes and closes the log.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.syncer.Flush(s.f); err != nil {
		return err
	}
	return s.f.Close()
}

// Compact rewrites the log to hold exactly one record per live type and
// instance, atomically replacing the old log. Long-running engines call it
// periodically: every instance transition appends a full snapshot, so logs
// grow with activity, not with live state.
func (s *FileStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	tmp := s.path + ".compact"
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wfstore: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	writeRec := func(rec logRecord) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	}
	typeKeys, err := s.mem.ListTypes()
	if err != nil {
		f.Close()
		return err
	}
	for _, key := range typeKeys {
		name, version := splitKey(key)
		def, err := s.mem.GetType(name, version)
		if err != nil {
			f.Close()
			return err
		}
		if err := writeRec(logRecord{Op: "type", Type: def.Clone()}); err != nil {
			f.Close()
			return err
		}
	}
	ids, err := s.mem.ListInstances()
	if err != nil {
		f.Close()
		return err
	}
	for _, id := range ids {
		in, err := s.mem.GetInstance(id)
		if err != nil {
			f.Close()
			return err
		}
		raw, err := encodeInstance(in)
		if err != nil {
			f.Close()
			return err
		}
		if err := writeRec(logRecord{Op: "inst", Instance: raw}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	// Sync the rewrite before the rename makes it the log: the rename must
	// never point the store at a snapshot the disk does not yet hold.
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	// Open the future appender on the temp file before the rename (the
	// handle follows the inode across it), so a failure at any point
	// leaves the original log open and appendable.
	nf, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("wfstore: compact reopen: %w", err)
	}
	if err := s.fs.Rename(tmp, s.path); err != nil {
		nf.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("wfstore: compact rename: %w", err)
	}
	_ = s.f.Close()
	s.f = nf
	s.w = bufio.NewWriter(nf)
	return nil
}

// Size reports the current log size in bytes.
func (s *FileStore) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return 0, err
	}
	fi, err := s.fs.Stat(s.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func splitKey(key string) (string, int) {
	name, ver, _ := strings.Cut(key, "@")
	v := 0
	fmt.Sscanf(ver, "%d", &v)
	return name, v
}

// PutType implements wf.Store.
func (s *FileStore) PutType(t *wf.TypeDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(logRecord{Op: "type", Type: t.Clone()}); err != nil {
		return err
	}
	return s.mem.PutType(t)
}

// GetType implements wf.Store.
func (s *FileStore) GetType(name string, version int) (*wf.TypeDef, error) {
	return s.mem.GetType(name, version)
}

// HasType implements wf.Store.
func (s *FileStore) HasType(name string, version int) bool {
	return s.mem.HasType(name, version)
}

// ListTypes implements wf.Store.
func (s *FileStore) ListTypes() ([]string, error) { return s.mem.ListTypes() }

// PutInstance implements wf.Store.
func (s *FileStore) PutInstance(in *wf.Instance) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := encodeInstance(in)
	if err != nil {
		return err
	}
	if err := s.append(logRecord{Op: "inst", Instance: raw}); err != nil {
		return err
	}
	return s.mem.PutInstance(in)
}

// GetInstance implements wf.Store.
func (s *FileStore) GetInstance(id string) (*wf.Instance, error) {
	return s.mem.GetInstance(id)
}

// ListInstances implements wf.Store.
func (s *FileStore) ListInstances() ([]string, error) { return s.mem.ListInstances() }

// DeleteInstance implements wf.Store.
func (s *FileStore) DeleteInstance(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(logRecord{Op: "del", ID: id}); err != nil {
		return err
	}
	return s.mem.DeleteInstance(id)
}
