package wfstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/doc"
	"repro/internal/wf"
)

func sampleType() *wf.TypeDef {
	return &wf.TypeDef{
		Name: "t", Version: 1,
		Steps: []wf.StepDef{
			{Name: "a", Kind: wf.StepNoop},
			{Name: "wait", Kind: wf.StepReceive, Port: "in"},
			{Name: "b", Kind: wf.StepNoop},
		},
		Arcs: []wf.Arc{{From: "a", To: "wait"}, {From: "wait", To: "b"}},
	}
}

func TestMemStoreTypes(t *testing.T) {
	s := NewMemStore()
	def := sampleType()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutType(def); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetType("t", 1)
	if err != nil || got.Name != "t" {
		t.Fatalf("%v %v", got, err)
	}
	// Version 0 resolves to latest.
	v2 := def.Clone()
	v2.Version = 2
	if err := v2.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutType(v2); err != nil {
		t.Fatal(err)
	}
	latest, err := s.GetType("t", 0)
	if err != nil || latest.Version != 2 {
		t.Fatalf("latest %v %v", latest, err)
	}
	if !s.HasType("t", 1) || s.HasType("t", 9) || !s.HasType("t", 0) {
		t.Fatal("HasType wrong")
	}
	keys, _ := s.ListTypes()
	if len(keys) != 2 || keys[0] != "t@1" || keys[1] != "t@2" {
		t.Fatalf("keys %v", keys)
	}
	if _, err := s.GetType("ghost", 0); !errors.Is(err, wf.ErrNotFound) {
		t.Fatalf("err %v", err)
	}
}

func TestMemStoreInstances(t *testing.T) {
	s := NewMemStore()
	in := &wf.Instance{ID: "i1", Type: "t", Version: 1, State: wf.InstRunning,
		Data: map[string]any{}, Steps: map[string]*wf.StepRun{}, Arcs: map[string]int{}}
	if err := s.PutInstance(in); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetInstance("i1")
	if err != nil || got.ID != "i1" {
		t.Fatalf("%v %v", got, err)
	}
	ids, _ := s.ListInstances()
	if len(ids) != 1 || ids[0] != "i1" {
		t.Fatalf("ids %v", ids)
	}
	if err := s.DeleteInstance("i1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetInstance("i1"); !errors.Is(err, wf.ErrNotFound) {
		t.Fatalf("err %v", err)
	}
}

func openFile(t *testing.T, path string) *FileStore {
	t.Helper()
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	def := sampleType()
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutType(def); err != nil {
		t.Fatal(err)
	}
	po := doc.NewGenerator(1).PO(doc.Party{ID: "TP1", Name: "A"}, doc.Party{ID: "S", Name: "B"})
	in := &wf.Instance{
		ID: "i1", Type: "t", Version: 1, State: wf.InstRunning,
		Data: map[string]any{
			"document": po, "source": "TP1", "count": float64(3),
			"flag": true, "blob": []byte{1, 2, 3},
		},
		Steps: map[string]*wf.StepRun{"a": {State: wf.StepCompleted}},
		Arcs:  map[string]int{"a→wait": 1},
		History: []wf.Event{
			{Seq: 1, Step: "", What: "created"},
			{Seq: 2, Step: "a", What: "completed"},
		},
	}
	if err := s.PutInstance(in); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify replay.
	s2 := openFile(t, path)
	if !s2.HasType("t", 1) {
		t.Fatal("type lost")
	}
	got, err := s2.GetInstance("i1")
	if err != nil {
		t.Fatal(err)
	}
	gotPO, ok := got.Data["document"].(*doc.PurchaseOrder)
	if !ok {
		t.Fatalf("document decoded as %T", got.Data["document"])
	}
	if gotPO.ID != po.ID || gotPO.Amount() != po.Amount() {
		t.Fatalf("document mismatch: %v vs %v", gotPO, po)
	}
	if got.Data["count"] != float64(3) || got.Data["flag"] != true {
		t.Fatalf("primitives lost: %v", got.Data)
	}
	if b := got.Data["blob"].([]byte); len(b) != 3 || b[0] != 1 {
		t.Fatalf("blob lost: %v", b)
	}
	if got.Arcs["a→wait"] != 1 || got.Steps["a"].State != wf.StepCompleted {
		t.Fatal("runtime state lost")
	}
	if len(got.History) != 2 {
		t.Fatalf("history lost: %v", got.History)
	}
}

func TestFileStoreDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	in := &wf.Instance{ID: "i1", Type: "t", Version: 1, State: wf.InstCompleted,
		Data: map[string]any{}, Steps: map[string]*wf.StepRun{}, Arcs: map[string]int{}}
	if err := s.PutInstance(in); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteInstance("i1"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openFile(t, path)
	if _, err := s2.GetInstance("i1"); !errors.Is(err, wf.ErrNotFound) {
		t.Fatalf("deleted instance resurrected: %v", err)
	}
}

func TestFileStoreRejectsUnsupportedData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	in := &wf.Instance{ID: "i1", Type: "t", Version: 1, State: wf.InstRunning,
		Data:  map[string]any{"weird": struct{ X int }{1}},
		Steps: map[string]*wf.StepRun{}, Arcs: map[string]int{}}
	if err := s.PutInstance(in); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("err %v", err)
	}
}

func TestFileStoreCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	if err := os.WriteFile(path, []byte("{\"op\":\"bogus\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("corrupt log accepted")
	}
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("garbage log accepted")
	}
}

// TestCrashRecoveryResumesParkedInstance is the Figure 4 durability story:
// an engine starts an instance that parks on a receive; the process
// "crashes"; a fresh engine over the same log delivers the message and the
// instance completes.
func TestCrashRecoveryResumesParkedInstance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	ctx := context.Background()

	s1 := openFile(t, path)
	e1 := wf.NewEngine("e1", s1, wf.NewHandlers(), nil)
	def := sampleType()
	if err := e1.Deploy(def); err != nil {
		t.Fatal(err)
	}
	in, err := e1.Start(ctx, "t", map[string]any{"source": "TP1"})
	if err != nil {
		t.Fatal(err)
	}
	if in.State != wf.InstRunning {
		t.Fatalf("state %s", in.State)
	}
	s1.Close() // crash

	s2 := openFile(t, path)
	e2 := wf.NewEngine("e2", s2, wf.NewHandlers(), nil)
	if err := e2.Deliver(ctx, in.ID, "in", "late payload"); err != nil {
		t.Fatal(err)
	}
	got, err := e2.Instance(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != wf.InstCompleted {
		t.Fatalf("state after recovery: %s", got.State)
	}
	if got.Data["document"] != "late payload" {
		t.Fatalf("payload %v", got.Data["document"])
	}
}

func TestEngineRunsOnFileStore(t *testing.T) {
	// Full engine cycle against the durable store with a document payload.
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	h := wf.NewHandlers()
	h.Register("nop", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error { return nil })
	e := wf.NewEngine("e", s, h, nil)
	def := &wf.TypeDef{
		Name: "flow", Version: 1,
		Steps: []wf.StepDef{
			{Name: "a", Kind: wf.StepTask, Handler: "nop"},
			{Name: "b", Kind: wf.StepTask, Handler: "nop"},
		},
		Arcs: []wf.Arc{{From: "a", To: "b"}},
	}
	if err := e.Deploy(def); err != nil {
		t.Fatal(err)
	}
	po := doc.NewGenerator(2).PO(doc.Party{ID: "TP1", Name: "A"}, doc.Party{ID: "S", Name: "B"})
	in, err := e.Start(context.Background(), "flow", map[string]any{"document": po})
	if err != nil {
		t.Fatal(err)
	}
	if in.State != wf.InstCompleted {
		t.Fatalf("state %s", in.State)
	}
	s.Close()
	s2 := openFile(t, path)
	got, err := s2.GetInstance(in.ID)
	if err != nil || got.State != wf.InstCompleted {
		t.Fatalf("%v %v", got, err)
	}
}
