package wfstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wf"
)

// TestFileStoreTornTailRecovery simulates a crash mid-append: the log is
// truncated inside its final record (no newline terminator). Reopening
// must succeed, replay everything before the tear, drop exactly the torn
// record, and physically truncate it away so subsequent appends do not
// fuse with the partial line.
func TestFileStoreTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	if err := s.PutType(sampleType()); err != nil {
		t.Fatal(err)
	}
	put := func(st *FileStore, id string) {
		t.Helper()
		in := &wf.Instance{ID: id, Type: "t", Version: 1, State: wf.InstRunning,
			Data: map[string]any{"n": 1}}
		if err := st.PutInstance(in); err != nil {
			t.Fatal(err)
		}
	}
	put(s, "i1")
	put(s, "i2")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: chop bytes off the end, well inside i2's
	// JSON line, leaving no trailing newline.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-9]
	if torn[len(torn)-1] == '\n' {
		t.Fatal("test setup: tear landed on a record boundary")
	}
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: i1 survives, the torn i2 is gone, nothing errors.
	s2 := openFile(t, path)
	if _, err := s2.GetInstance("i1"); err != nil {
		t.Fatalf("i1 lost in recovery: %v", err)
	}
	if _, err := s2.GetInstance("i2"); err == nil {
		t.Fatal("torn record i2 resurrected from a partial line")
	}
	// The tail was truncated away on disk, not just skipped in memory.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) >= len(torn) {
		t.Fatalf("torn tail not truncated: %d bytes on disk, tear was at %d", len(onDisk), len(torn))
	}
	if n := bytes.Count(onDisk, []byte("\n")); len(onDisk) > 0 && onDisk[len(onDisk)-1] != '\n' {
		t.Fatalf("recovered log does not end on a record boundary (%d records)", n)
	}

	// Appending after recovery starts on a clean boundary: a third
	// instance persists and survives another reopen alongside i1.
	put(s2, "i3")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openFile(t, path)
	if _, err := s3.GetInstance("i1"); err != nil {
		t.Fatalf("i1 lost after post-recovery append: %v", err)
	}
	if _, err := s3.GetInstance("i3"); err != nil {
		t.Fatalf("post-recovery append lost: %v", err)
	}
	if _, err := s3.GetInstance("i2"); err == nil {
		t.Fatal("torn record i2 reappeared after append + reopen")
	}
}

// TestFileStoreMidLogCorruptionStillErrors pins the boundary of torn-tail
// tolerance: a fully written (newline-terminated) record that does not
// parse is corruption and must fail the open, even when a crash-recovery
// path exists for unterminated tails.
func TestFileStoreMidLogCorruptionStillErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.log")
	s := openFile(t, path)
	if err := s.PutType(sampleType()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt record in the middle of the log, newline-terminated, with a
	// valid record after it.
	if _, err := f.WriteString("{garbage mid-log}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"del","id":"nope"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("mid-log corruption silently accepted")
	}
}
