package wfstore

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"repro/internal/doc"
	"repro/internal/wf"
)

// The instance codec serializes wf.Instance to JSON. Instance data values
// are wrapped in tagged envelopes so documents round-trip as their concrete
// Go types rather than as generic maps.

type taggedValue struct {
	Kind  string          `json:"k"`
	Value json.RawMessage `json:"v"`
}

const (
	kindString = "s"
	kindNumber = "n"
	kindBool   = "b"
	kindBytes  = "x"
	kindPO     = "po"
	kindPOA    = "poa"
	kindRFQ    = "rfq"
	kindQuote  = "qt"
)

func encodeValue(v any) (taggedValue, error) {
	wrap := func(kind string, payload any) (taggedValue, error) {
		raw, err := json.Marshal(payload)
		if err != nil {
			return taggedValue{}, err
		}
		return taggedValue{Kind: kind, Value: raw}, nil
	}
	switch x := v.(type) {
	case string:
		return wrap(kindString, x)
	case bool:
		return wrap(kindBool, x)
	case int:
		return wrap(kindNumber, float64(x))
	case int64:
		return wrap(kindNumber, float64(x))
	case float64:
		return wrap(kindNumber, x)
	case []byte:
		return wrap(kindBytes, base64.StdEncoding.EncodeToString(x))
	case *doc.PurchaseOrder:
		return wrap(kindPO, x)
	case *doc.PurchaseOrderAck:
		return wrap(kindPOA, x)
	case *doc.RequestForQuote:
		return wrap(kindRFQ, x)
	case *doc.Quote:
		return wrap(kindQuote, x)
	}
	return taggedValue{}, fmt.Errorf("wfstore: unsupported instance data type %T (durable stores hold primitives and normalized documents only)", v)
}

func decodeValue(tv taggedValue) (any, error) {
	switch tv.Kind {
	case kindString:
		var s string
		return s, unmarshalInto(tv.Value, &s)
	case kindBool:
		var b bool
		return b, unmarshalInto(tv.Value, &b)
	case kindNumber:
		var f float64
		return f, unmarshalInto(tv.Value, &f)
	case kindBytes:
		var s string
		if err := unmarshalInto(tv.Value, &s); err != nil {
			return nil, err
		}
		return base64.StdEncoding.DecodeString(s)
	case kindPO:
		var d doc.PurchaseOrder
		return &d, unmarshalInto(tv.Value, &d)
	case kindPOA:
		var d doc.PurchaseOrderAck
		return &d, unmarshalInto(tv.Value, &d)
	case kindRFQ:
		var d doc.RequestForQuote
		return &d, unmarshalInto(tv.Value, &d)
	case kindQuote:
		var d doc.Quote
		return &d, unmarshalInto(tv.Value, &d)
	}
	return nil, fmt.Errorf("wfstore: unknown data kind %q", tv.Kind)
}

func unmarshalInto(raw json.RawMessage, v any) error {
	return json.Unmarshal(raw, v)
}

// persistedInstance mirrors wf.Instance with codec-friendly data.
type persistedInstance struct {
	ID         string                 `json:"id"`
	Type       string                 `json:"type"`
	Version    int                    `json:"version"`
	State      wf.InstState           `json:"state"`
	Data       map[string]taggedValue `json:"data"`
	Steps      map[string]*wf.StepRun `json:"steps"`
	Arcs       map[string]int         `json:"arcs"`
	Parent     string                 `json:"parent,omitempty"`
	ParentStep string                 `json:"parentStep,omitempty"`
	History    []wf.Event             `json:"history"`
	Error      string                 `json:"error,omitempty"`
}

func encodeInstance(in *wf.Instance) (json.RawMessage, error) {
	p := persistedInstance{
		ID: in.ID, Type: in.Type, Version: in.Version, State: in.State,
		Data:  map[string]taggedValue{},
		Steps: in.Steps, Arcs: in.Arcs,
		Parent: in.Parent, ParentStep: in.ParentStep,
		History: in.History, Error: in.Error,
	}
	for k, v := range in.Data {
		tv, err := encodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("wfstore: instance %s data key %q: %w", in.ID, k, err)
		}
		p.Data[k] = tv
	}
	return json.Marshal(p)
}

func decodeInstance(raw json.RawMessage) (*wf.Instance, error) {
	var p persistedInstance
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	in := &wf.Instance{
		ID: p.ID, Type: p.Type, Version: p.Version, State: p.State,
		Data:  map[string]any{},
		Steps: p.Steps, Arcs: p.Arcs,
		Parent: p.Parent, ParentStep: p.ParentStep,
		History: p.History, Error: p.Error,
	}
	if in.Steps == nil {
		in.Steps = map[string]*wf.StepRun{}
	}
	if in.Arcs == nil {
		in.Arcs = map[string]int{}
	}
	for k, tv := range p.Data {
		v, err := decodeValue(tv)
		if err != nil {
			return nil, fmt.Errorf("wfstore: instance %s data key %q: %w", p.ID, k, err)
		}
		in.Data[k] = v
	}
	return in, nil
}
