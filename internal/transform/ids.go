package transform

import "hash/fnv"

// controlNumber derives a deterministic positive control / interface number
// from a document identifier, so that normalized→native transformations are
// pure functions (the paper's transformations are definitions, not stateful
// services).
func controlNumber(docID string) int {
	h := fnv.New32a()
	h.Write([]byte(docID))
	return int(h.Sum32() & 0x7fffffff)
}
