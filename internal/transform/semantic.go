package transform

import (
	"fmt"
	"time"

	"repro/internal/doc"
)

// The semantic-equality helpers define which fields of the normalized model
// every concrete format preserves, so the DESIGN.md invariant
// "transformation round trips preserve the semantic fields" is checkable.
//
// Field narrowing across the format population:
//   - timestamps: EDI and Oracle OIF carry calendar dates only, so
//     timestamps compare at day granularity;
//   - DUNS numbers: the Oracle open interface tables do not carry DUNS, so
//     DUNS is excluded;
//   - party names: the Oracle acknowledgment batch carries party IDs only,
//     so POA comparison excludes names.

func sameDay(a, b time.Time) bool {
	ay, am, ad := a.UTC().Date()
	by, bm, bd := b.UTC().Date()
	return ay == by && am == bm && ad == bd
}

// SemanticEqualPO reports whether two purchase orders agree on every field
// that all concrete formats can represent; a non-nil error names the first
// disagreement.
func SemanticEqualPO(a, b *doc.PurchaseOrder) error {
	switch {
	case a.ID != b.ID:
		return fmt.Errorf("id: %q != %q", a.ID, b.ID)
	case a.Buyer.ID != b.Buyer.ID:
		return fmt.Errorf("buyer id: %q != %q", a.Buyer.ID, b.Buyer.ID)
	case a.Buyer.Name != b.Buyer.Name:
		return fmt.Errorf("buyer name: %q != %q", a.Buyer.Name, b.Buyer.Name)
	case a.Seller.ID != b.Seller.ID:
		return fmt.Errorf("seller id: %q != %q", a.Seller.ID, b.Seller.ID)
	case a.Seller.Name != b.Seller.Name:
		return fmt.Errorf("seller name: %q != %q", a.Seller.Name, b.Seller.Name)
	case a.Currency != b.Currency:
		return fmt.Errorf("currency: %q != %q", a.Currency, b.Currency)
	case !sameDay(a.IssuedAt, b.IssuedAt):
		return fmt.Errorf("issued day: %v != %v", a.IssuedAt, b.IssuedAt)
	case a.ShipTo != b.ShipTo:
		return fmt.Errorf("ship to: %q != %q", a.ShipTo, b.ShipTo)
	case a.Note != b.Note:
		return fmt.Errorf("note: %q != %q", a.Note, b.Note)
	case len(a.Lines) != len(b.Lines):
		return fmt.Errorf("line count: %d != %d", len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		la, lb := a.Lines[i], b.Lines[i]
		switch {
		case la.Number != lb.Number:
			return fmt.Errorf("line %d: number %d != %d", i, la.Number, lb.Number)
		case la.SKU != lb.SKU:
			return fmt.Errorf("line %d: sku %q != %q", i, la.SKU, lb.SKU)
		case la.Description != lb.Description:
			return fmt.Errorf("line %d: description %q != %q", i, la.Description, lb.Description)
		case la.Quantity != lb.Quantity:
			return fmt.Errorf("line %d: quantity %d != %d", i, la.Quantity, lb.Quantity)
		case la.UnitPrice != lb.UnitPrice:
			return fmt.Errorf("line %d: unit price %v != %v", i, la.UnitPrice, lb.UnitPrice)
		}
	}
	return nil
}

// SemanticEqualPOA reports whether two acknowledgments agree on every field
// that all concrete formats can represent.
func SemanticEqualPOA(a, b *doc.PurchaseOrderAck) error {
	switch {
	case a.ID != b.ID:
		return fmt.Errorf("id: %q != %q", a.ID, b.ID)
	case a.POID != b.POID:
		return fmt.Errorf("po reference: %q != %q", a.POID, b.POID)
	case a.Buyer.ID != b.Buyer.ID:
		return fmt.Errorf("buyer id: %q != %q", a.Buyer.ID, b.Buyer.ID)
	case a.Seller.ID != b.Seller.ID:
		return fmt.Errorf("seller id: %q != %q", a.Seller.ID, b.Seller.ID)
	case a.Status != b.Status:
		return fmt.Errorf("status: %q != %q", a.Status, b.Status)
	case !sameDay(a.IssuedAt, b.IssuedAt):
		return fmt.Errorf("issued day: %v != %v", a.IssuedAt, b.IssuedAt)
	case a.Note != b.Note:
		return fmt.Errorf("note: %q != %q", a.Note, b.Note)
	case len(a.Lines) != len(b.Lines):
		return fmt.Errorf("line count: %d != %d", len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		la, lb := a.Lines[i], b.Lines[i]
		switch {
		case la.Number != lb.Number:
			return fmt.Errorf("line %d: number %d != %d", i, la.Number, lb.Number)
		case la.Status != lb.Status:
			return fmt.Errorf("line %d: status %q != %q", i, la.Status, lb.Status)
		case la.Quantity != lb.Quantity:
			return fmt.Errorf("line %d: quantity %d != %d", i, la.Quantity, lb.Quantity)
		case la.ShipDate.IsZero() != lb.ShipDate.IsZero():
			return fmt.Errorf("line %d: ship date presence %v != %v", i, la.ShipDate, lb.ShipDate)
		case !la.ShipDate.IsZero() && !sameDay(la.ShipDate, lb.ShipDate):
			return fmt.Errorf("line %d: ship day %v != %v", i, la.ShipDate, lb.ShipDate)
		}
	}
	return nil
}
