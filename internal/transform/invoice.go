package transform

import (
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
	"repro/internal/formats/oagis"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/rosettanet"
	"repro/internal/formats/sapidoc"
)

// EDIINVToNormalized maps an X12 810 to the normalized invoice.
func EDIINVToNormalized(p *edi.Invoice810) (*doc.Invoice, error) {
	inv := &doc.Invoice{
		ID:       p.InvoiceNumber,
		POID:     p.PONumber,
		Buyer:    doc.Party{ID: p.ReceiverID, Name: p.BuyerName, DUNS: p.BuyerDUNS},
		Seller:   doc.Party{ID: p.SenderID, Name: p.SellerName, DUNS: p.SellerDUNS},
		Currency: p.Currency,
		IssuedAt: p.Date,
		DueAt:    p.DueDate,
		Note:     p.Note,
	}
	for _, it := range p.Items {
		inv.Lines = append(inv.Lines, doc.InvoiceLine{
			Number: it.Line, SKU: it.SKU, Description: it.Description,
			Quantity: it.Quantity, UnitPrice: it.UnitPrice,
		})
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}

// NormalizedINVToEDI maps a normalized invoice to an X12 810. Invoices
// travel seller→buyer.
func NormalizedINVToEDI(inv *doc.Invoice) (*edi.Invoice810, error) {
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	p := &edi.Invoice810{
		SenderID: inv.Seller.ID, ReceiverID: inv.Buyer.ID,
		Control:       controlNumber(inv.ID),
		InvoiceNumber: inv.ID, PONumber: inv.POID,
		Date: inv.IssuedAt, DueDate: inv.DueAt,
		Currency:  inv.Currency,
		BuyerName: inv.Buyer.Name, BuyerDUNS: inv.Buyer.DUNS,
		SellerName: inv.Seller.Name, SellerDUNS: inv.Seller.DUNS,
		Note: inv.Note,
	}
	for _, l := range inv.Lines {
		p.Items = append(p.Items, edi.Item810{
			Line: l.Number, Quantity: l.Quantity, UnitPrice: l.UnitPrice,
			SKU: l.SKU, Description: l.Description,
		})
	}
	return p, nil
}

// RNINVToNormalized maps a PIP 3C3 notification to the normalized invoice.
func RNINVToNormalized(n *rosettanet.InvoiceNotification) (*doc.Invoice, error) {
	issued, err := rosettanet.ParseTime(n.GenerationDateTime)
	if err != nil {
		return nil, fmt.Errorf("transform: bad 3C3 generation time %q: %w", n.GenerationDateTime, err)
	}
	inv := &doc.Invoice{
		ID:   n.DocumentIdentifier,
		POID: n.PurchaseOrderReference,
		Buyer: doc.Party{ID: n.ToRole.ProprietaryIdentifier, Name: n.ToRole.BusinessName,
			DUNS: n.ToRole.BusinessIdentifier},
		Seller: doc.Party{ID: n.FromRole.ProprietaryIdentifier, Name: n.FromRole.BusinessName,
			DUNS: n.FromRole.BusinessIdentifier},
		Currency: n.Currency,
		IssuedAt: issued,
		Note:     n.Comment,
	}
	if n.PaymentDueDate != "" {
		due, err := rosettanet.ParseTime(n.PaymentDueDate)
		if err != nil {
			return nil, fmt.Errorf("transform: bad 3C3 due date %q: %w", n.PaymentDueDate, err)
		}
		inv.DueAt = due
	}
	for _, li := range n.LineItems {
		inv.Lines = append(inv.Lines, doc.InvoiceLine{
			Number: li.LineNumber, SKU: li.ProductIdentifier, Description: li.ProductDescription,
			Quantity: li.InvoiceQuantity, UnitPrice: li.UnitPrice.Amount,
		})
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}

// NormalizedINVToRN maps a normalized invoice to a PIP 3C3 notification.
func NormalizedINVToRN(inv *doc.Invoice) (*rosettanet.InvoiceNotification, error) {
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	n := &rosettanet.InvoiceNotification{
		FromRole: rosettanet.PartnerRole{RoleClassification: "Seller",
			BusinessIdentifier: inv.Seller.DUNS, ProprietaryIdentifier: inv.Seller.ID, BusinessName: inv.Seller.Name},
		ToRole: rosettanet.PartnerRole{RoleClassification: "Buyer",
			BusinessIdentifier: inv.Buyer.DUNS, ProprietaryIdentifier: inv.Buyer.ID, BusinessName: inv.Buyer.Name},
		DocumentIdentifier:     inv.ID,
		PurchaseOrderReference: inv.POID,
		GenerationDateTime:     rosettanet.FormatTime(inv.IssuedAt),
		Currency:               inv.Currency,
		Comment:                inv.Note,
	}
	if !inv.DueAt.IsZero() {
		n.PaymentDueDate = rosettanet.FormatTime(inv.DueAt)
	}
	for _, l := range inv.Lines {
		n.LineItems = append(n.LineItems, rosettanet.InvoiceLineItem{
			LineNumber: l.Number, ProductIdentifier: l.SKU, ProductDescription: l.Description,
			InvoiceQuantity: l.Quantity,
			UnitPrice:       rosettanet.FinancialAmount{Currency: inv.Currency, Amount: l.UnitPrice},
		})
	}
	return n, nil
}

// OAGISINVToNormalized maps a ProcessInvoice BOD to the normalized invoice.
func OAGISINVToNormalized(b *oagis.ProcessInvoice) (*doc.Invoice, error) {
	issued, err := oagis.ParseTime(b.Invoice.DocumentDate)
	if err != nil {
		return nil, fmt.Errorf("transform: bad invoice BOD date %q: %w", b.Invoice.DocumentDate, err)
	}
	inv := &doc.Invoice{
		ID:   b.Invoice.DocumentID,
		POID: b.Invoice.OriginalPOID,
		Buyer: doc.Party{ID: b.Invoice.CustomerParty.PartyID, Name: b.Invoice.CustomerParty.Name,
			DUNS: b.Invoice.CustomerParty.DUNS},
		Seller: doc.Party{ID: b.Invoice.SupplierParty.PartyID, Name: b.Invoice.SupplierParty.Name,
			DUNS: b.Invoice.SupplierParty.DUNS},
		Currency: b.Invoice.Currency,
		IssuedAt: issued,
		Note:     b.Invoice.Note,
	}
	if b.Invoice.PaymentDue != "" {
		due, err := oagis.ParseTime(b.Invoice.PaymentDue)
		if err != nil {
			return nil, fmt.Errorf("transform: bad invoice BOD due date %q: %w", b.Invoice.PaymentDue, err)
		}
		inv.DueAt = due
	}
	for _, l := range b.Invoice.Lines {
		inv.Lines = append(inv.Lines, doc.InvoiceLine{
			Number: l.LineNumber, SKU: l.ItemID, Description: l.Description,
			Quantity: l.Quantity, UnitPrice: l.UnitPrice,
		})
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}

// NormalizedINVToOAGIS maps a normalized invoice to a ProcessInvoice BOD.
func NormalizedINVToOAGIS(inv *doc.Invoice) (*oagis.ProcessInvoice, error) {
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	b := &oagis.ProcessInvoice{
		ApplicationArea: oagis.ApplicationArea{
			SenderID: inv.Seller.ID, ReceiverID: inv.Buyer.ID,
			CreationDateTime: oagis.FormatTime(inv.IssuedAt),
			BODID:            "BOD-" + inv.ID,
		},
		Invoice: oagis.InvoiceNoun{
			DocumentID: inv.ID, OriginalPOID: inv.POID,
			DocumentDate:  oagis.FormatTime(inv.IssuedAt),
			Currency:      inv.Currency,
			CustomerParty: oagis.PartyOAGIS{PartyID: inv.Buyer.ID, Name: inv.Buyer.Name, DUNS: inv.Buyer.DUNS},
			SupplierParty: oagis.PartyOAGIS{PartyID: inv.Seller.ID, Name: inv.Seller.Name, DUNS: inv.Seller.DUNS},
			Note:          inv.Note,
		},
	}
	if !inv.DueAt.IsZero() {
		b.Invoice.PaymentDue = oagis.FormatTime(inv.DueAt)
	}
	for _, l := range inv.Lines {
		b.Invoice.Lines = append(b.Invoice.Lines, oagis.InvoiceLine{
			LineNumber: l.Number, ItemID: l.SKU, Description: l.Description,
			Quantity: l.Quantity, UnitPrice: l.UnitPrice, Currency: inv.Currency,
		})
	}
	return b, nil
}

// SAPINVToNormalized maps an INVOIC IDoc to the normalized invoice.
func SAPINVToNormalized(o *sapidoc.Invoic) (*doc.Invoice, error) {
	inv := &doc.Invoice{
		ID:       o.InvoiceNumber,
		POID:     o.PONumber,
		Buyer:    doc.Party{ID: o.Buyer.PartnerID, Name: o.Buyer.Name, DUNS: o.Buyer.DUNS},
		Seller:   doc.Party{ID: o.Seller.PartnerID, Name: o.Seller.Name, DUNS: o.Seller.DUNS},
		Currency: o.Currency,
		IssuedAt: o.CreatedAt,
		DueAt:    o.DueDate,
		Note:     o.Note,
	}
	for _, it := range o.Items {
		inv.Lines = append(inv.Lines, doc.InvoiceLine{
			Number: lineForPosex(it.Posex), SKU: it.SKU, Description: it.Description,
			Quantity: it.Quantity, UnitPrice: it.UnitPrice,
		})
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}

// NormalizedINVToSAP maps a normalized invoice to an INVOIC IDoc.
func NormalizedINVToSAP(inv *doc.Invoice) (*sapidoc.Invoic, error) {
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	o := &sapidoc.Invoic{
		DocNum:        controlNumber(inv.ID),
		SenderPartner: inv.Seller.ID, ReceiverPartner: inv.Buyer.ID,
		CreatedAt:     inv.IssuedAt,
		InvoiceNumber: inv.ID, PONumber: inv.POID,
		Currency: inv.Currency, DueDate: inv.DueAt,
		Buyer:  sapidoc.Partner{PartnerID: inv.Buyer.ID, Name: inv.Buyer.Name, DUNS: inv.Buyer.DUNS},
		Seller: sapidoc.Partner{PartnerID: inv.Seller.ID, Name: inv.Seller.Name, DUNS: inv.Seller.DUNS},
		Note:   inv.Note,
	}
	for _, l := range inv.Lines {
		o.Items = append(o.Items, sapidoc.InvoiceItem{
			Posex: posexFor(l.Number), SKU: l.SKU, Description: l.Description,
			Quantity: l.Quantity, UnitPrice: l.UnitPrice,
		})
	}
	return o, nil
}

// OracleINVToNormalized maps a receivables batch to the normalized invoice.
func OracleINVToNormalized(d *oracleoif.InvoiceDocument) (*doc.Invoice, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	h := d.Headers[0]
	issued, err := oracleoif.ParseDate(h.TrxDate)
	if err != nil {
		return nil, fmt.Errorf("transform: bad trx_date %q: %w", h.TrxDate, err)
	}
	inv := &doc.Invoice{
		ID:       h.InvoiceNumber,
		POID:     h.PONumber,
		Buyer:    doc.Party{ID: h.TradingPartner},
		Seller:   doc.Party{ID: h.VendorID},
		Currency: h.CurrencyCode,
		IssuedAt: issued,
		Note:     h.Comments,
	}
	if h.DueDate != "" {
		due, err := oracleoif.ParseDate(h.DueDate)
		if err != nil {
			return nil, fmt.Errorf("transform: bad due_date %q: %w", h.DueDate, err)
		}
		inv.DueAt = due
	}
	for _, l := range d.Lines {
		inv.Lines = append(inv.Lines, doc.InvoiceLine{
			Number: l.LineNum, SKU: l.Item, Description: l.ItemDescription,
			Quantity: l.Quantity, UnitPrice: l.UnitPrice,
		})
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}

// NormalizedINVToOracle maps a normalized invoice to a receivables batch.
func NormalizedINVToOracle(inv *doc.Invoice) (*oracleoif.InvoiceDocument, error) {
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	hid := controlNumber(inv.ID)
	d := &oracleoif.InvoiceDocument{
		Headers: []oracleoif.ARHeaderRow{{
			InterfaceHeaderID: hid,
			InvoiceNumber:     inv.ID,
			PONumber:          inv.POID,
			CurrencyCode:      inv.Currency,
			TradingPartner:    inv.Buyer.ID,
			VendorID:          inv.Seller.ID,
			TrxDate:           oracleoif.FormatDate(inv.IssuedAt),
			Comments:          inv.Note,
		}},
	}
	if !inv.DueAt.IsZero() {
		d.Headers[0].DueDate = oracleoif.FormatDate(inv.DueAt)
	}
	for _, l := range inv.Lines {
		d.Lines = append(d.Lines, oracleoif.ARLineRow{
			InterfaceHeaderID: hid, LineNum: l.Number, Item: l.SKU,
			ItemDescription: l.Description, Quantity: l.Quantity, UnitPrice: l.UnitPrice,
		})
	}
	return d, nil
}

// RegisterInvoices registers the ten invoice↔normalized transformers.
func RegisterInvoices(r *Registry) {
	leg := func(from, to formats.Format, fn func(any) (any, error)) {
		r.Register(Func{FromFormat: from, ToFormat: to, Type: doc.TypeINV, Fn: fn})
	}
	leg(formats.EDI, formats.Normalized, func(n any) (any, error) {
		v, ok := n.(*edi.Invoice810)
		if !ok {
			return nil, fmt.Errorf("want *edi.Invoice810, got %T", n)
		}
		return EDIINVToNormalized(v)
	})
	leg(formats.Normalized, formats.EDI, func(n any) (any, error) {
		v, ok := n.(*doc.Invoice)
		if !ok {
			return nil, fmt.Errorf("want *doc.Invoice, got %T", n)
		}
		return NormalizedINVToEDI(v)
	})
	leg(formats.RosettaNet, formats.Normalized, func(n any) (any, error) {
		v, ok := n.(*rosettanet.InvoiceNotification)
		if !ok {
			return nil, fmt.Errorf("want *rosettanet.InvoiceNotification, got %T", n)
		}
		return RNINVToNormalized(v)
	})
	leg(formats.Normalized, formats.RosettaNet, func(n any) (any, error) {
		v, ok := n.(*doc.Invoice)
		if !ok {
			return nil, fmt.Errorf("want *doc.Invoice, got %T", n)
		}
		return NormalizedINVToRN(v)
	})
	leg(formats.OAGIS, formats.Normalized, func(n any) (any, error) {
		v, ok := n.(*oagis.ProcessInvoice)
		if !ok {
			return nil, fmt.Errorf("want *oagis.ProcessInvoice, got %T", n)
		}
		return OAGISINVToNormalized(v)
	})
	leg(formats.Normalized, formats.OAGIS, func(n any) (any, error) {
		v, ok := n.(*doc.Invoice)
		if !ok {
			return nil, fmt.Errorf("want *doc.Invoice, got %T", n)
		}
		return NormalizedINVToOAGIS(v)
	})
	leg(formats.SAPIDoc, formats.Normalized, func(n any) (any, error) {
		v, ok := n.(*sapidoc.Invoic)
		if !ok {
			return nil, fmt.Errorf("want *sapidoc.Invoic, got %T", n)
		}
		return SAPINVToNormalized(v)
	})
	leg(formats.Normalized, formats.SAPIDoc, func(n any) (any, error) {
		v, ok := n.(*doc.Invoice)
		if !ok {
			return nil, fmt.Errorf("want *doc.Invoice, got %T", n)
		}
		return NormalizedINVToSAP(v)
	})
	leg(formats.OracleOIF, formats.Normalized, func(n any) (any, error) {
		v, ok := n.(*oracleoif.InvoiceDocument)
		if !ok {
			return nil, fmt.Errorf("want *oracleoif.InvoiceDocument, got %T", n)
		}
		return OracleINVToNormalized(v)
	})
	leg(formats.Normalized, formats.OracleOIF, func(n any) (any, error) {
		v, ok := n.(*doc.Invoice)
		if !ok {
			return nil, fmt.Errorf("want *doc.Invoice, got %T", n)
		}
		return NormalizedINVToOracle(v)
	})
}

// SemanticEqualINV reports whether two invoices agree on every field all
// concrete formats can represent (dates at day granularity; DUNS and party
// names excluded because the Oracle receivables batch carries IDs only).
func SemanticEqualINV(a, b *doc.Invoice) error {
	switch {
	case a.ID != b.ID:
		return fmt.Errorf("id: %q != %q", a.ID, b.ID)
	case a.POID != b.POID:
		return fmt.Errorf("po reference: %q != %q", a.POID, b.POID)
	case a.Buyer.ID != b.Buyer.ID:
		return fmt.Errorf("buyer id: %q != %q", a.Buyer.ID, b.Buyer.ID)
	case a.Seller.ID != b.Seller.ID:
		return fmt.Errorf("seller id: %q != %q", a.Seller.ID, b.Seller.ID)
	case a.Currency != b.Currency:
		return fmt.Errorf("currency: %q != %q", a.Currency, b.Currency)
	case !sameDay(a.IssuedAt, b.IssuedAt):
		return fmt.Errorf("issued day: %v != %v", a.IssuedAt, b.IssuedAt)
	case a.DueAt.IsZero() != b.DueAt.IsZero():
		return fmt.Errorf("due date presence: %v != %v", a.DueAt, b.DueAt)
	case !a.DueAt.IsZero() && !sameDay(a.DueAt, b.DueAt):
		return fmt.Errorf("due day: %v != %v", a.DueAt, b.DueAt)
	case a.Note != b.Note:
		return fmt.Errorf("note: %q != %q", a.Note, b.Note)
	case len(a.Lines) != len(b.Lines):
		return fmt.Errorf("line count: %d != %d", len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		la, lb := a.Lines[i], b.Lines[i]
		if la != lb {
			return fmt.Errorf("line %d: %+v != %+v", i, la, lb)
		}
	}
	return nil
}
