// Package transform implements the transformation engine of the integration
// framework (Section 4.2 of the paper): declarative, registered mappings
// between concrete document formats and the normalized document format.
//
// The paper places transformations inside bindings, "the ideal location …
// since it allows the public processes to completely operate on public
// process specific formats and private processes can completely operate on
// the normalized format". The normalized format is the hub: a transformation
// between two concrete formats (Figure 9's "Transform EDI to SAP PO") is the
// chain concrete → normalized → concrete, so adding a format costs two
// transformations per document type instead of one per other format.
package transform

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/doc"
	"repro/internal/formats"
)

// Transformer maps one document type from one format to another. Apply must
// be pure: the same input yields the same output, with no shared state, so
// transformers are safe for concurrent use.
type Transformer interface {
	// From is the source format of Apply's input.
	From() formats.Format
	// To is the target format of Apply's output.
	To() formats.Format
	// DocType is the normalized document type being mapped.
	DocType() doc.DocType
	// Apply maps a native value of the source format to a native value of
	// the target format.
	Apply(native any) (any, error)
}

// Func adapts a function to the Transformer interface.
type Func struct {
	// FromFormat, ToFormat and Type identify the mapping.
	FromFormat formats.Format
	ToFormat   formats.Format
	Type       doc.DocType
	// Fn performs the mapping.
	Fn func(native any) (any, error)
}

// From implements Transformer.
func (f Func) From() formats.Format { return f.FromFormat }

// To implements Transformer.
func (f Func) To() formats.Format { return f.ToFormat }

// DocType implements Transformer.
func (f Func) DocType() doc.DocType { return f.Type }

// Apply implements Transformer.
func (f Func) Apply(native any) (any, error) { return f.Fn(native) }

// Registry holds transformers keyed by (from, to, doc type) and resolves
// transformation requests, chaining through the normalized format when no
// direct mapping exists. The zero value is ready to use; Registry is safe
// for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[regKey]Transformer
}

type regKey struct {
	from, to formats.Format
	t        doc.DocType
}

// Register adds a transformer, replacing any previous one for the same key.
func (r *Registry) Register(t Transformer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[regKey]Transformer)
	}
	r.m[regKey{t.From(), t.To(), t.DocType()}] = t
}

// Lookup returns the direct transformer for the key, if registered.
func (r *Registry) Lookup(from, to formats.Format, t doc.DocType) (Transformer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tr, ok := r.m[regKey{from, to, t}]
	return tr, ok
}

// Apply maps native from one format to another, using a direct transformer
// if registered or otherwise chaining through the normalized format.
func (r *Registry) Apply(from, to formats.Format, t doc.DocType, native any) (any, error) {
	if from == to {
		return native, nil
	}
	if tr, ok := r.Lookup(from, to, t); ok {
		out, err := tr.Apply(native)
		if err != nil {
			return nil, fmt.Errorf("transform: %s→%s %s: %w", from, to, t, err)
		}
		return out, nil
	}
	if from != formats.Normalized && to != formats.Normalized {
		in, ok := r.Lookup(from, formats.Normalized, t)
		if !ok {
			return nil, fmt.Errorf("transform: no mapping %s→%s for %s (and no %s→%s hub leg)", from, to, t, from, formats.Normalized)
		}
		out, ok := r.Lookup(formats.Normalized, to, t)
		if !ok {
			return nil, fmt.Errorf("transform: no mapping %s→%s for %s (and no %s→%s hub leg)", from, to, t, formats.Normalized, to)
		}
		mid, err := in.Apply(native)
		if err != nil {
			return nil, fmt.Errorf("transform: %s→%s %s: %w", from, formats.Normalized, t, err)
		}
		res, err := out.Apply(mid)
		if err != nil {
			return nil, fmt.Errorf("transform: %s→%s %s: %w", formats.Normalized, to, t, err)
		}
		return res, nil
	}
	return nil, fmt.Errorf("transform: no mapping %s→%s for %s", from, to, t)
}

// ToNormalized maps a native value into the normalized document model.
func (r *Registry) ToNormalized(from formats.Format, t doc.DocType, native any) (any, error) {
	return r.Apply(from, formats.Normalized, t, native)
}

// FromNormalized maps a normalized document into a native value of the
// target format.
func (r *Registry) FromNormalized(to formats.Format, t doc.DocType, document any) (any, error) {
	return r.Apply(formats.Normalized, to, t, document)
}

// Count reports the number of registered transformers; the scalability
// experiments use it as the "number of transformations" model artifact.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Keys lists the registered (from, to, doc type) triples sorted for
// deterministic reporting.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, fmt.Sprintf("%s→%s:%s", k.from, k.to, k.t))
	}
	sort.Strings(out)
	return out
}
