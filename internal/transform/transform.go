// Package transform implements the transformation engine of the integration
// framework (Section 4.2 of the paper): declarative, registered mappings
// between concrete document formats and the normalized document format.
//
// The paper places transformations inside bindings, "the ideal location …
// since it allows the public processes to completely operate on public
// process specific formats and private processes can completely operate on
// the normalized format". The normalized format is the hub: a transformation
// between two concrete formats (Figure 9's "Transform EDI to SAP PO") is the
// chain concrete → normalized → concrete, so adding a format costs two
// transformations per document type instead of one per other format.
package transform

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/doc"
	"repro/internal/formats"
)

// Transformer maps one document type from one format to another. Apply must
// be pure: the same input yields the same output, with no shared state, so
// transformers are safe for concurrent use.
type Transformer interface {
	// From is the source format of Apply's input.
	From() formats.Format
	// To is the target format of Apply's output.
	To() formats.Format
	// DocType is the normalized document type being mapped.
	DocType() doc.DocType
	// Apply maps a native value of the source format to a native value of
	// the target format.
	Apply(native any) (any, error)
}

// Func adapts a function to the Transformer interface.
type Func struct {
	// FromFormat, ToFormat and Type identify the mapping.
	FromFormat formats.Format
	ToFormat   formats.Format
	Type       doc.DocType
	// Fn performs the mapping.
	Fn func(native any) (any, error)
}

// From implements Transformer.
func (f Func) From() formats.Format { return f.FromFormat }

// To implements Transformer.
func (f Func) To() formats.Format { return f.ToFormat }

// DocType implements Transformer.
func (f Func) DocType() doc.DocType { return f.Type }

// Apply implements Transformer.
func (f Func) Apply(native any) (any, error) { return f.Fn(native) }

// Registry holds transformers keyed by (from, to, doc type) and resolves
// transformation requests, chaining through the normalized format when no
// direct mapping exists. Resolved chains are cached as compiled Programs so
// the per-request cost is one read-locked map hit instead of re-deriving
// the chain. The zero value is ready to use; Registry is safe for
// concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[regKey]Transformer
	// progs caches compiled resolution chains; it is invalidated wholesale
	// whenever Register changes the transformer set.
	progs map[regKey]Program
}

type regKey struct {
	from, to formats.Format
	t        doc.DocType
}

// Program is a compiled transformation chain: the transformer legs resolved
// once for a (from, to, doc type) request. An empty Program is the identity.
type Program []Transformer

// Run applies the program's legs in order.
func (p Program) Run(native any) (any, error) {
	v := native
	for _, leg := range p {
		out, err := leg.Apply(v)
		if err != nil {
			return nil, fmt.Errorf("transform: %s→%s %s: %w", leg.From(), leg.To(), leg.DocType(), err)
		}
		v = out
	}
	return v, nil
}

// Register adds a transformer, replacing any previous one for the same key.
// Registering invalidates every compiled program: the next Apply or Compile
// re-resolves against the new transformer set.
func (r *Registry) Register(t Transformer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[regKey]Transformer)
	}
	r.m[regKey{t.From(), t.To(), t.DocType()}] = t
	r.progs = nil
}

// Lookup returns the direct transformer for the key, if registered.
func (r *Registry) Lookup(from, to formats.Format, t doc.DocType) (Transformer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	tr, ok := r.m[regKey{from, to, t}]
	return tr, ok
}

// Compile resolves the transformation chain for (from, to, doc type) once
// and caches it: identity, a direct transformer, or the two-leg chain
// through the normalized format. Subsequent Compile and Apply calls for the
// same key return the cached program until Register invalidates it.
func (r *Registry) Compile(from, to formats.Format, t doc.DocType) (Program, error) {
	key := regKey{from, to, t}
	r.mu.RLock()
	p, hit := r.progs[key]
	r.mu.RUnlock()
	if hit {
		return p, nil
	}
	p, err := r.resolve(from, to, t)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.progs == nil {
		r.progs = make(map[regKey]Program)
	}
	r.progs[key] = p
	r.mu.Unlock()
	return p, nil
}

// resolve derives the program for a key from the registered transformers.
func (r *Registry) resolve(from, to formats.Format, t doc.DocType) (Program, error) {
	if from == to {
		return Program{}, nil
	}
	if tr, ok := r.Lookup(from, to, t); ok {
		return Program{tr}, nil
	}
	if from != formats.Normalized && to != formats.Normalized {
		in, ok := r.Lookup(from, formats.Normalized, t)
		if !ok {
			return nil, fmt.Errorf("transform: no mapping %s→%s for %s (and no %s→%s hub leg)", from, to, t, from, formats.Normalized)
		}
		out, ok := r.Lookup(formats.Normalized, to, t)
		if !ok {
			return nil, fmt.Errorf("transform: no mapping %s→%s for %s (and no %s→%s hub leg)", from, to, t, formats.Normalized, to)
		}
		return Program{in, out}, nil
	}
	return nil, fmt.Errorf("transform: no mapping %s→%s for %s", from, to, t)
}

// Apply maps native from one format to another through the compiled program
// for the key: a direct transformer if registered, or the chain through the
// normalized format.
func (r *Registry) Apply(from, to formats.Format, t doc.DocType, native any) (any, error) {
	p, err := r.Compile(from, to, t)
	if err != nil {
		return nil, err
	}
	return p.Run(native)
}

// CompiledPrograms reports the number of cached compiled programs (cache
// observability for tests and experiments).
func (r *Registry) CompiledPrograms() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.progs)
}

// ToNormalized maps a native value into the normalized document model.
func (r *Registry) ToNormalized(from formats.Format, t doc.DocType, native any) (any, error) {
	return r.Apply(from, formats.Normalized, t, native)
}

// FromNormalized maps a normalized document into a native value of the
// target format.
func (r *Registry) FromNormalized(to formats.Format, t doc.DocType, document any) (any, error) {
	return r.Apply(formats.Normalized, to, t, document)
}

// Count reports the number of registered transformers; the scalability
// experiments use it as the "number of transformations" model artifact.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Keys lists the registered (from, to, doc type) triples sorted for
// deterministic reporting.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, fmt.Sprintf("%s→%s:%s", k.from, k.to, k.t))
	}
	sort.Strings(out)
	return out
}
