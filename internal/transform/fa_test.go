package transform

import (
	"testing"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
)

func TestFARoundTrip(t *testing.T) {
	r := newFullRegistry()
	fa := &doc.FunctionalAck{
		ID: "997-000000042", RefControl: 42, RefGroupID: "PO", Accepted: true,
	}
	native, err := r.FromNormalized(formats.EDI, doc.TypeFA, fa)
	if err != nil {
		t.Fatal(err)
	}
	f997, ok := native.(*edi.FA997)
	if !ok {
		t.Fatalf("native %T", native)
	}
	if f997.RefControl != 42 || !f997.Accepted {
		t.Fatalf("%+v", f997)
	}
	back, err := r.ToNormalized(formats.EDI, doc.TypeFA, native)
	if err != nil {
		t.Fatal(err)
	}
	got := back.(*doc.FunctionalAck)
	if got.ID != fa.ID || got.RefControl != fa.RefControl || got.Accepted != fa.Accepted || got.RefGroupID != fa.RefGroupID {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, fa)
	}
}

func TestFARejectedVariant(t *testing.T) {
	fa := &doc.FunctionalAck{
		ID: "997-1", RefControl: 7, RefGroupID: "PO", Accepted: false, Note: "bad segment",
	}
	native, err := NormalizedFAToEDI(fa)
	if err != nil {
		t.Fatal(err)
	}
	// Party identifiers are transport metadata filled in by the sender.
	native.SenderID, native.ReceiverID = "HUB", "TP1"
	wire, err := native.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := edi.DecodeFA997(wire)
	if err != nil {
		t.Fatal(err)
	}
	back, err := EDIFAToNormalized(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if back.Accepted || back.Note != "bad segment" {
		t.Fatalf("%+v", back)
	}
}

func TestFAValidationErrors(t *testing.T) {
	if _, err := NormalizedFAToEDI(&doc.FunctionalAck{ID: "x"}); err == nil {
		t.Fatal("FA without ref control accepted")
	}
	if _, err := EDIFAToNormalized(&edi.FA997{AckNumber: "x"}); err == nil {
		t.Fatal("997 without ref control accepted")
	}
	r := newFullRegistry()
	if _, err := r.FromNormalized(formats.RosettaNet, doc.TypeFA, &doc.FunctionalAck{}); err == nil {
		t.Fatal("functional acks are EDI-only; RosettaNet leg should not exist")
	}
}
