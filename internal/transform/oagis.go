package transform

import (
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/oagis"
)

// OAGISPOToNormalized maps a ProcessPurchaseOrder BOD to the normalized
// purchase order.
func OAGISPOToNormalized(b *oagis.ProcessPurchaseOrder) (*doc.PurchaseOrder, error) {
	issued, err := oagis.ParseTime(b.PurchaseOrder.DocumentDate)
	if err != nil {
		return nil, fmt.Errorf("transform: bad BOD document date %q: %w", b.PurchaseOrder.DocumentDate, err)
	}
	po := &doc.PurchaseOrder{
		ID: b.PurchaseOrder.DocumentID,
		Buyer: doc.Party{
			ID:   b.PurchaseOrder.CustomerParty.PartyID,
			Name: b.PurchaseOrder.CustomerParty.Name,
			DUNS: b.PurchaseOrder.CustomerParty.DUNS,
		},
		Seller: doc.Party{
			ID:   b.PurchaseOrder.SupplierParty.PartyID,
			Name: b.PurchaseOrder.SupplierParty.Name,
			DUNS: b.PurchaseOrder.SupplierParty.DUNS,
		},
		Currency: b.PurchaseOrder.Currency,
		IssuedAt: issued,
		ShipTo:   b.PurchaseOrder.ShipToAddress,
		Note:     b.PurchaseOrder.Note,
	}
	for _, l := range b.PurchaseOrder.Lines {
		po.Lines = append(po.Lines, doc.Line{
			Number:      l.LineNumber,
			SKU:         l.ItemID,
			Description: l.Description,
			Quantity:    l.Quantity,
			UnitPrice:   l.UnitPrice,
		})
	}
	if err := po.Validate(); err != nil {
		return nil, err
	}
	return po, nil
}

// NormalizedPOToOAGIS maps a normalized purchase order to a
// ProcessPurchaseOrder BOD.
func NormalizedPOToOAGIS(po *doc.PurchaseOrder) (*oagis.ProcessPurchaseOrder, error) {
	if err := po.Validate(); err != nil {
		return nil, err
	}
	b := &oagis.ProcessPurchaseOrder{
		ApplicationArea: oagis.ApplicationArea{
			SenderID:         po.Buyer.ID,
			ReceiverID:       po.Seller.ID,
			CreationDateTime: oagis.FormatTime(po.IssuedAt),
			BODID:            fmt.Sprintf("BOD-%s", po.ID),
		},
		PurchaseOrder: oagis.PurchaseOrderNoun{
			DocumentID:    po.ID,
			DocumentDate:  oagis.FormatTime(po.IssuedAt),
			Currency:      po.Currency,
			CustomerParty: oagis.PartyOAGIS{PartyID: po.Buyer.ID, Name: po.Buyer.Name, DUNS: po.Buyer.DUNS},
			SupplierParty: oagis.PartyOAGIS{PartyID: po.Seller.ID, Name: po.Seller.Name, DUNS: po.Seller.DUNS},
			ShipToAddress: po.ShipTo,
			Note:          po.Note,
		},
	}
	for _, l := range po.Lines {
		b.PurchaseOrder.Lines = append(b.PurchaseOrder.Lines, oagis.POLine{
			LineNumber:  l.Number,
			ItemID:      l.SKU,
			Description: l.Description,
			Quantity:    l.Quantity,
			UnitPrice:   l.UnitPrice,
			Currency:    po.Currency,
		})
	}
	return b, nil
}

func oagisStatusToAck(s string) (doc.AckStatus, error) {
	switch s {
	case "Accepted":
		return doc.AckAccepted, nil
	case "Rejected":
		return doc.AckRejected, nil
	case "Partial":
		return doc.AckPartial, nil
	}
	return "", fmt.Errorf("transform: unknown BOD status code %q", s)
}

func ackToOAGISStatus(s doc.AckStatus) (string, error) {
	switch s {
	case doc.AckAccepted:
		return "Accepted", nil
	case doc.AckRejected:
		return "Rejected", nil
	case doc.AckPartial:
		return "Partial", nil
	}
	return "", fmt.Errorf("transform: unknown ack status %q", s)
}

func oagisLineStatus(s string) (doc.LineStatus, error) {
	switch s {
	case "Accepted":
		return doc.LineAccepted, nil
	case "Rejected":
		return doc.LineRejected, nil
	case "Backordered":
		return doc.LineBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown BOD line status %q", s)
}

func lineStatusToOAGIS(s doc.LineStatus) (string, error) {
	switch s {
	case doc.LineAccepted:
		return "Accepted", nil
	case doc.LineRejected:
		return "Rejected", nil
	case doc.LineBackorder:
		return "Backordered", nil
	}
	return "", fmt.Errorf("transform: unknown line status %q", s)
}

// OAGISPOAToNormalized maps an AcknowledgePurchaseOrder BOD to the
// normalized acknowledgment.
func OAGISPOAToNormalized(b *oagis.AcknowledgePurchaseOrder) (*doc.PurchaseOrderAck, error) {
	status, err := oagisStatusToAck(b.PurchaseOrder.StatusCode)
	if err != nil {
		return nil, err
	}
	issued, err := oagis.ParseTime(b.PurchaseOrder.DocumentDate)
	if err != nil {
		return nil, fmt.Errorf("transform: bad BOD document date %q: %w", b.PurchaseOrder.DocumentDate, err)
	}
	poa := &doc.PurchaseOrderAck{
		ID:   b.PurchaseOrder.DocumentID,
		POID: b.PurchaseOrder.OriginalPOID,
		Buyer: doc.Party{
			ID:   b.PurchaseOrder.CustomerParty.PartyID,
			Name: b.PurchaseOrder.CustomerParty.Name,
			DUNS: b.PurchaseOrder.CustomerParty.DUNS,
		},
		Seller: doc.Party{
			ID:   b.PurchaseOrder.SupplierParty.PartyID,
			Name: b.PurchaseOrder.SupplierParty.Name,
			DUNS: b.PurchaseOrder.SupplierParty.DUNS,
		},
		Status:   status,
		IssuedAt: issued,
		Note:     b.PurchaseOrder.Note,
	}
	for _, l := range b.PurchaseOrder.Lines {
		ls, err := oagisLineStatus(l.StatusCode)
		if err != nil {
			return nil, err
		}
		al := doc.AckLine{Number: l.LineNumber, Status: ls, Quantity: l.Quantity}
		if l.ShipDate != "" {
			d, err := oagis.ParseTime(l.ShipDate)
			if err != nil {
				return nil, fmt.Errorf("transform: bad BOD ship date %q: %w", l.ShipDate, err)
			}
			al.ShipDate = d
		}
		poa.Lines = append(poa.Lines, al)
	}
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	return poa, nil
}

// NormalizedPOAToOAGIS maps a normalized acknowledgment to an
// AcknowledgePurchaseOrder BOD. The acknowledgment travels seller→buyer.
func NormalizedPOAToOAGIS(poa *doc.PurchaseOrderAck) (*oagis.AcknowledgePurchaseOrder, error) {
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	status, err := ackToOAGISStatus(poa.Status)
	if err != nil {
		return nil, err
	}
	b := &oagis.AcknowledgePurchaseOrder{
		ApplicationArea: oagis.ApplicationArea{
			SenderID:         poa.Seller.ID,
			ReceiverID:       poa.Buyer.ID,
			CreationDateTime: oagis.FormatTime(poa.IssuedAt),
			BODID:            fmt.Sprintf("BOD-%s", poa.ID),
		},
		PurchaseOrder: oagis.AcknowledgePurchaseOrderNoun{
			DocumentID:    poa.ID,
			OriginalPOID:  poa.POID,
			DocumentDate:  oagis.FormatTime(poa.IssuedAt),
			StatusCode:    status,
			CustomerParty: oagis.PartyOAGIS{PartyID: poa.Buyer.ID, Name: poa.Buyer.Name, DUNS: poa.Buyer.DUNS},
			SupplierParty: oagis.PartyOAGIS{PartyID: poa.Seller.ID, Name: poa.Seller.Name, DUNS: poa.Seller.DUNS},
			Note:          poa.Note,
		},
	}
	for _, l := range poa.Lines {
		ls, err := lineStatusToOAGIS(l.Status)
		if err != nil {
			return nil, err
		}
		line := oagis.AckLine{LineNumber: l.Number, StatusCode: ls, Quantity: l.Quantity}
		if !l.ShipDate.IsZero() {
			line.ShipDate = oagis.FormatTime(l.ShipDate)
		}
		b.PurchaseOrder.Lines = append(b.PurchaseOrder.Lines, line)
	}
	return b, nil
}

// RegisterOAGIS registers the four OAGIS↔normalized transformers.
func RegisterOAGIS(r *Registry) {
	r.Register(Func{formats.OAGIS, formats.Normalized, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*oagis.ProcessPurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *oagis.ProcessPurchaseOrder, got %T", n)
		}
		return OAGISPOToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.OAGIS, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrder, got %T", n)
		}
		return NormalizedPOToOAGIS(p)
	}})
	r.Register(Func{formats.OAGIS, formats.Normalized, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*oagis.AcknowledgePurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *oagis.AcknowledgePurchaseOrder, got %T", n)
		}
		return OAGISPOAToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.OAGIS, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrderAck)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrderAck, got %T", n)
		}
		return NormalizedPOAToOAGIS(p)
	}})
}
