package transform

import (
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/oracleoif"
)

// OraclePOToNormalized maps a PO interface batch to the normalized purchase
// order. The open interface tables carry no DUNS numbers and date-only
// timestamps; those fields are narrowed accordingly.
func OraclePOToNormalized(d *oracleoif.PODocument) (*doc.PurchaseOrder, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	h := d.Headers[0]
	issued, err := oracleoif.ParseDate(h.CreationDate)
	if err != nil {
		return nil, fmt.Errorf("transform: bad creation_date %q: %w", h.CreationDate, err)
	}
	po := &doc.PurchaseOrder{
		ID:       h.PONumber,
		Buyer:    doc.Party{ID: h.TradingPartner, Name: h.TradingPartnerName},
		Seller:   doc.Party{ID: h.VendorID, Name: h.VendorName},
		Currency: h.CurrencyCode,
		IssuedAt: issued,
		ShipTo:   h.ShipToLocation,
		Note:     h.Comments,
	}
	for _, l := range d.Lines {
		po.Lines = append(po.Lines, doc.Line{
			Number:      l.LineNum,
			SKU:         l.Item,
			Description: l.ItemDescription,
			Quantity:    l.Quantity,
			UnitPrice:   l.UnitPrice,
		})
	}
	if err := po.Validate(); err != nil {
		return nil, err
	}
	return po, nil
}

// NormalizedPOToOracle maps a normalized purchase order to a PO interface
// batch.
func NormalizedPOToOracle(po *doc.PurchaseOrder) (*oracleoif.PODocument, error) {
	if err := po.Validate(); err != nil {
		return nil, err
	}
	hid := controlNumber(po.ID)
	d := &oracleoif.PODocument{
		Headers: []oracleoif.HeaderRow{{
			InterfaceHeaderID:  hid,
			PONumber:           po.ID,
			CurrencyCode:       po.Currency,
			VendorName:         po.Seller.Name,
			VendorID:           po.Seller.ID,
			TradingPartner:     po.Buyer.ID,
			TradingPartnerName: po.Buyer.Name,
			ShipToLocation:     po.ShipTo,
			CreationDate:       oracleoif.FormatDate(po.IssuedAt),
			Comments:           po.Note,
		}},
	}
	for _, l := range po.Lines {
		d.Lines = append(d.Lines, oracleoif.LineRow{
			InterfaceHeaderID: hid,
			LineNum:           l.Number,
			Item:              l.SKU,
			ItemDescription:   l.Description,
			Quantity:          l.Quantity,
			UnitPrice:         l.UnitPrice,
		})
	}
	return d, nil
}

func oraAcceptance(s string) (doc.AckStatus, error) {
	switch s {
	case "accepted":
		return doc.AckAccepted, nil
	case "rejected":
		return doc.AckRejected, nil
	case "partial":
		return doc.AckPartial, nil
	}
	return "", fmt.Errorf("transform: unknown acceptance_type %q", s)
}

func ackToOraAcceptance(s doc.AckStatus) (string, error) {
	switch s {
	case doc.AckAccepted:
		return "accepted", nil
	case doc.AckRejected:
		return "rejected", nil
	case doc.AckPartial:
		return "partial", nil
	}
	return "", fmt.Errorf("transform: unknown ack status %q", s)
}

func oraLineStatus(s string) (doc.LineStatus, error) {
	switch s {
	case "accepted":
		return doc.LineAccepted, nil
	case "rejected":
		return doc.LineRejected, nil
	case "backorder":
		return doc.LineBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown line_status %q", s)
}

func lineStatusToOra(s doc.LineStatus) (string, error) {
	switch s {
	case doc.LineAccepted:
		return "accepted", nil
	case doc.LineRejected:
		return "rejected", nil
	case doc.LineBackorder:
		return "backorder", nil
	}
	return "", fmt.Errorf("transform: unknown line status %q", s)
}

// OraclePOAToNormalized maps an acknowledgment batch to the normalized
// acknowledgment. The batch has no party names; only the IDs survive.
func OraclePOAToNormalized(d *oracleoif.POADocument) (*doc.PurchaseOrderAck, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	h := d.Headers[0]
	status, err := oraAcceptance(h.AcceptanceType)
	if err != nil {
		return nil, err
	}
	issued, err := oracleoif.ParseDate(h.CreationDate)
	if err != nil {
		return nil, fmt.Errorf("transform: bad creation_date %q: %w", h.CreationDate, err)
	}
	poa := &doc.PurchaseOrderAck{
		ID:       h.AckNumber,
		POID:     h.PONumber,
		Buyer:    doc.Party{ID: h.TradingPartner},
		Seller:   doc.Party{ID: h.VendorID},
		Status:   status,
		IssuedAt: issued,
		Note:     h.Comments,
	}
	for _, l := range d.Lines {
		ls, err := oraLineStatus(l.LineStatus)
		if err != nil {
			return nil, err
		}
		al := doc.AckLine{Number: l.LineNum, Status: ls, Quantity: l.Quantity}
		if l.PromisedDate != "" {
			pd, err := oracleoif.ParseDate(l.PromisedDate)
			if err != nil {
				return nil, fmt.Errorf("transform: bad promised_date %q: %w", l.PromisedDate, err)
			}
			al.ShipDate = pd
		}
		poa.Lines = append(poa.Lines, al)
	}
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	return poa, nil
}

// NormalizedPOAToOracle maps a normalized acknowledgment to an
// acknowledgment batch.
func NormalizedPOAToOracle(poa *doc.PurchaseOrderAck) (*oracleoif.POADocument, error) {
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	at, err := ackToOraAcceptance(poa.Status)
	if err != nil {
		return nil, err
	}
	hid := controlNumber(poa.ID)
	d := &oracleoif.POADocument{
		Headers: []oracleoif.AckHeaderRow{{
			InterfaceHeaderID: hid,
			AckNumber:         poa.ID,
			PONumber:          poa.POID,
			AcceptanceType:    at,
			TradingPartner:    poa.Buyer.ID,
			VendorID:          poa.Seller.ID,
			CreationDate:      oracleoif.FormatDate(poa.IssuedAt),
			Comments:          poa.Note,
		}},
	}
	for _, l := range poa.Lines {
		ls, err := lineStatusToOra(l.Status)
		if err != nil {
			return nil, err
		}
		row := oracleoif.AckLineRow{
			InterfaceHeaderID: hid,
			LineNum:           l.Number,
			LineStatus:        ls,
			Quantity:          l.Quantity,
		}
		if !l.ShipDate.IsZero() {
			row.PromisedDate = oracleoif.FormatDate(l.ShipDate)
		}
		d.Lines = append(d.Lines, row)
	}
	return d, nil
}

// RegisterOracle registers the four Oracle-OIF↔normalized transformers.
func RegisterOracle(r *Registry) {
	r.Register(Func{formats.OracleOIF, formats.Normalized, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*oracleoif.PODocument)
		if !ok {
			return nil, fmt.Errorf("want *oracleoif.PODocument, got %T", n)
		}
		return OraclePOToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.OracleOIF, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrder, got %T", n)
		}
		return NormalizedPOToOracle(p)
	}})
	r.Register(Func{formats.OracleOIF, formats.Normalized, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*oracleoif.POADocument)
		if !ok {
			return nil, fmt.Errorf("want *oracleoif.POADocument, got %T", n)
		}
		return OraclePOAToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.OracleOIF, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrderAck)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrderAck, got %T", n)
		}
		return NormalizedPOAToOracle(p)
	}})
}

// RegisterAll registers every format↔normalized transformer pair.
func RegisterAll(r *Registry) {
	RegisterEDI(r)
	RegisterRosettaNet(r)
	RegisterOAGIS(r)
	RegisterSAP(r)
	RegisterOracle(r)
	RegisterInvoices(r)
}
