package transform

import (
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/sapidoc"
)

// posexFor maps a normalized line number to an IDoc POSEX (conventionally
// line*10).
func posexFor(line int) int { return line * 10 }

// lineForPosex maps POSEX back to a normalized line number.
func lineForPosex(posex int) int {
	if posex > 0 && posex%10 == 0 {
		return posex / 10
	}
	return posex
}

// SAPPOToNormalized maps an ORDERS IDoc to the normalized purchase order.
func SAPPOToNormalized(o *sapidoc.Orders) (*doc.PurchaseOrder, error) {
	po := &doc.PurchaseOrder{
		ID:       o.PONumber,
		Buyer:    doc.Party{ID: o.Buyer.PartnerID, Name: o.Buyer.Name, DUNS: o.Buyer.DUNS},
		Seller:   doc.Party{ID: o.Seller.PartnerID, Name: o.Seller.Name, DUNS: o.Seller.DUNS},
		Currency: o.Currency,
		IssuedAt: o.CreatedAt,
		ShipTo:   o.ShipTo,
		Note:     o.Note,
	}
	for _, it := range o.Items {
		po.Lines = append(po.Lines, doc.Line{
			Number:      lineForPosex(it.Posex),
			SKU:         it.SKU,
			Description: it.Description,
			Quantity:    it.Quantity,
			UnitPrice:   it.UnitPrice,
		})
	}
	if err := po.Validate(); err != nil {
		return nil, err
	}
	return po, nil
}

// NormalizedPOToSAP maps a normalized purchase order to an ORDERS IDoc. The
// IDoc is inbound to SAP, so the sender is the integration hub (the seller
// side) and the receiver is the SAP system.
func NormalizedPOToSAP(po *doc.PurchaseOrder) (*sapidoc.Orders, error) {
	if err := po.Validate(); err != nil {
		return nil, err
	}
	o := &sapidoc.Orders{
		DocNum:          controlNumber(po.ID),
		SenderPartner:   po.Buyer.ID,
		ReceiverPartner: po.Seller.ID,
		CreatedAt:       po.IssuedAt,
		PONumber:        po.ID,
		Currency:        po.Currency,
		Buyer:           sapidoc.Partner{PartnerID: po.Buyer.ID, Name: po.Buyer.Name, DUNS: po.Buyer.DUNS},
		Seller:          sapidoc.Partner{PartnerID: po.Seller.ID, Name: po.Seller.Name, DUNS: po.Seller.DUNS},
		ShipTo:          po.ShipTo,
		Note:            po.Note,
	}
	for _, l := range po.Lines {
		o.Items = append(o.Items, sapidoc.Item{
			Posex:       posexFor(l.Number),
			SKU:         l.SKU,
			Description: l.Description,
			Quantity:    l.Quantity,
			UnitPrice:   l.UnitPrice,
		})
	}
	return o, nil
}

func sapStatusToAck(s sapidoc.AckStatusCode) (doc.AckStatus, error) {
	switch s {
	case sapidoc.StatusAccepted:
		return doc.AckAccepted, nil
	case sapidoc.StatusRejected:
		return doc.AckRejected, nil
	case sapidoc.StatusPartial:
		return doc.AckPartial, nil
	}
	return "", fmt.Errorf("transform: unknown ORDRSP status %q", s)
}

func ackToSAPStatus(s doc.AckStatus) (sapidoc.AckStatusCode, error) {
	switch s {
	case doc.AckAccepted:
		return sapidoc.StatusAccepted, nil
	case doc.AckRejected:
		return sapidoc.StatusRejected, nil
	case doc.AckPartial:
		return sapidoc.StatusPartial, nil
	}
	return "", fmt.Errorf("transform: unknown ack status %q", s)
}

func sapLineStatus(s sapidoc.AckStatusCode) (doc.LineStatus, error) {
	switch s {
	case sapidoc.StatusAccepted:
		return doc.LineAccepted, nil
	case sapidoc.StatusRejected:
		return doc.LineRejected, nil
	case sapidoc.StatusBackorder:
		return doc.LineBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown ORDRSP item status %q", s)
}

func lineStatusToSAP(s doc.LineStatus) (sapidoc.AckStatusCode, error) {
	switch s {
	case doc.LineAccepted:
		return sapidoc.StatusAccepted, nil
	case doc.LineRejected:
		return sapidoc.StatusRejected, nil
	case doc.LineBackorder:
		return sapidoc.StatusBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown line status %q", s)
}

// SAPPOAToNormalized maps an ORDRSP IDoc to the normalized acknowledgment.
// ORDRSP carries no partner names for the buyer beyond the partner segments,
// so the mapping keeps whatever the IDoc has.
func SAPPOAToNormalized(o *sapidoc.Ordrsp) (*doc.PurchaseOrderAck, error) {
	status, err := sapStatusToAck(o.Status)
	if err != nil {
		return nil, err
	}
	poa := &doc.PurchaseOrderAck{
		ID:       o.AckNumber,
		POID:     o.PONumber,
		Buyer:    doc.Party{ID: o.Buyer.PartnerID, Name: o.Buyer.Name, DUNS: o.Buyer.DUNS},
		Seller:   doc.Party{ID: o.Seller.PartnerID, Name: o.Seller.Name, DUNS: o.Seller.DUNS},
		Status:   status,
		IssuedAt: o.CreatedAt,
		Note:     o.Note,
	}
	for _, it := range o.Items {
		ls, err := sapLineStatus(it.Status)
		if err != nil {
			return nil, err
		}
		poa.Lines = append(poa.Lines, doc.AckLine{
			Number:   lineForPosex(it.Posex),
			Status:   ls,
			Quantity: it.Quantity,
			ShipDate: it.ShipDate,
		})
	}
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	return poa, nil
}

// NormalizedPOAToSAP maps a normalized acknowledgment to an ORDRSP IDoc.
func NormalizedPOAToSAP(poa *doc.PurchaseOrderAck) (*sapidoc.Ordrsp, error) {
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	status, err := ackToSAPStatus(poa.Status)
	if err != nil {
		return nil, err
	}
	o := &sapidoc.Ordrsp{
		DocNum:          controlNumber(poa.ID),
		SenderPartner:   poa.Seller.ID,
		ReceiverPartner: poa.Buyer.ID,
		CreatedAt:       poa.IssuedAt,
		AckNumber:       poa.ID,
		PONumber:        poa.POID,
		Status:          status,
		Buyer:           sapidoc.Partner{PartnerID: poa.Buyer.ID, Name: poa.Buyer.Name, DUNS: poa.Buyer.DUNS},
		Seller:          sapidoc.Partner{PartnerID: poa.Seller.ID, Name: poa.Seller.Name, DUNS: poa.Seller.DUNS},
		Note:            poa.Note,
	}
	for _, l := range poa.Lines {
		ls, err := lineStatusToSAP(l.Status)
		if err != nil {
			return nil, err
		}
		o.Items = append(o.Items, sapidoc.AckItem{
			Posex:    posexFor(l.Number),
			Status:   ls,
			Quantity: l.Quantity,
			ShipDate: l.ShipDate,
		})
	}
	return o, nil
}

// RegisterSAP registers the four SAP-IDoc↔normalized transformers.
func RegisterSAP(r *Registry) {
	r.Register(Func{formats.SAPIDoc, formats.Normalized, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*sapidoc.Orders)
		if !ok {
			return nil, fmt.Errorf("want *sapidoc.Orders, got %T", n)
		}
		return SAPPOToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.SAPIDoc, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrder, got %T", n)
		}
		return NormalizedPOToSAP(p)
	}})
	r.Register(Func{formats.SAPIDoc, formats.Normalized, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*sapidoc.Ordrsp)
		if !ok {
			return nil, fmt.Errorf("want *sapidoc.Ordrsp, got %T", n)
		}
		return SAPPOAToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.SAPIDoc, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrderAck)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrderAck, got %T", n)
		}
		return NormalizedPOAToSAP(p)
	}})
}
