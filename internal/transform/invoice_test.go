package transform

import (
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
	"repro/internal/formats/oagis"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/rosettanet"
	"repro/internal/formats/sapidoc"
)

func sampleInvoice() *doc.Invoice {
	return &doc.Invoice{
		ID:       "INV-000042",
		POID:     "PO-TP1-000001",
		Buyer:    buyer,
		Seller:   seller,
		Currency: "USD",
		IssuedAt: time.Date(2001, 9, 12, 10, 0, 0, 0, time.UTC),
		DueAt:    time.Date(2001, 10, 12, 0, 0, 0, 0, time.UTC),
		Note:     "net 30",
		Lines: []doc.InvoiceLine{
			{Number: 1, SKU: "LAP-100", Description: "Laptop", Quantity: 10, UnitPrice: 1450},
			{Number: 2, SKU: "MON-27", Description: "Monitor", Quantity: 15, UnitPrice: 480.25},
		},
	}
}

// TestInvoiceRoundTripThroughEveryFormat: normalized → native → normalized
// preserves the semantic fields for every format.
func TestInvoiceRoundTripThroughEveryFormat(t *testing.T) {
	r := newFullRegistry()
	for _, f := range allFormats {
		t.Run(string(f), func(t *testing.T) {
			inv := sampleInvoice()
			native, err := r.FromNormalized(f, doc.TypeINV, inv)
			if err != nil {
				t.Fatal(err)
			}
			back, err := r.ToNormalized(f, doc.TypeINV, native)
			if err != nil {
				t.Fatal(err)
			}
			if err := SemanticEqualINV(inv, back.(*doc.Invoice)); err != nil {
				t.Fatalf("semantic fields lost through %s: %v", f, err)
			}
		})
	}
}

// TestInvoiceWireRoundTrip adds the codec layer for every format.
func TestInvoiceWireRoundTrip(t *testing.T) {
	r := newFullRegistry()
	codecs := map[formats.Format]formats.Codec{
		formats.EDI:        edi.INVCodec{},
		formats.RosettaNet: rosettanet.INVCodec{},
		formats.OAGIS:      oagis.INVCodec{},
		formats.SAPIDoc:    sapidoc.INVCodec{},
		formats.OracleOIF:  oracleoif.INVCodec{},
	}
	for f, codec := range codecs {
		t.Run(string(f), func(t *testing.T) {
			inv := sampleInvoice()
			native, err := r.FromNormalized(f, doc.TypeINV, inv)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := codec.Encode(native)
			if err != nil {
				t.Fatal(err)
			}
			native2, err := codec.Decode(wire)
			if err != nil {
				t.Fatalf("decode: %v\nwire:\n%s", err, wire)
			}
			back, err := r.ToNormalized(f, doc.TypeINV, native2)
			if err != nil {
				t.Fatal(err)
			}
			if err := SemanticEqualINV(inv, back.(*doc.Invoice)); err != nil {
				t.Fatalf("wire round trip through %s lost fields: %v", f, err)
			}
		})
	}
}

// TestInvoiceCrossFormatChain: every format pair via the hub.
func TestInvoiceCrossFormatChain(t *testing.T) {
	r := newFullRegistry()
	for _, from := range allFormats {
		for _, to := range allFormats {
			if from == to {
				continue
			}
			inv := sampleInvoice()
			native, err := r.FromNormalized(from, doc.TypeINV, inv)
			if err != nil {
				t.Fatalf("%s: %v", from, err)
			}
			other, err := r.Apply(from, to, doc.TypeINV, native)
			if err != nil {
				t.Fatalf("%s→%s: %v", from, to, err)
			}
			back, err := r.ToNormalized(to, doc.TypeINV, other)
			if err != nil {
				t.Fatalf("%s→%s: %v", from, to, err)
			}
			if err := SemanticEqualINV(inv, back.(*doc.Invoice)); err != nil {
				t.Fatalf("%s→%s chain lost fields: %v", from, to, err)
			}
		}
	}
}

// TestPropertyGeneratedInvoiceEveryFormatPair: a stream of generated
// invoices survives the full hub path — encode at the source format's
// codec, transform to the target format, encode/decode again, normalize —
// for every ordered format pair, with semantic equality to the original.
// The generator varies line counts, optional due dates and notes, so the
// pairs are exercised across the document shapes partners actually send.
func TestPropertyGeneratedInvoiceEveryFormatPair(t *testing.T) {
	r := newFullRegistry()
	codecs := map[formats.Format]formats.Codec{
		formats.EDI:        edi.INVCodec{},
		formats.RosettaNet: rosettanet.INVCodec{},
		formats.OAGIS:      oagis.INVCodec{},
		formats.SAPIDoc:    sapidoc.INVCodec{},
		formats.OracleOIF:  oracleoif.INVCodec{},
	}
	for _, from := range allFormats {
		for _, to := range allFormats {
			from, to := from, to
			t.Run(string(from)+"→"+string(to), func(t *testing.T) {
				t.Parallel()
				g := doc.NewGenerator(int64(len(from) + 31*len(to)))
				for i := 0; i < 25; i++ {
					inv := g.Invoice(buyer, seller)
					native, err := r.FromNormalized(from, doc.TypeINV, inv)
					if err != nil {
						t.Fatalf("invoice %d: %v", i, err)
					}
					wire, err := codecs[from].Encode(native)
					if err != nil {
						t.Fatalf("invoice %d: encode %s: %v", i, from, err)
					}
					native, err = codecs[from].Decode(wire)
					if err != nil {
						t.Fatalf("invoice %d: decode %s: %v", i, from, err)
					}
					if from != to {
						native, err = r.Apply(from, to, doc.TypeINV, native)
						if err != nil {
							t.Fatalf("invoice %d: apply: %v", i, err)
						}
					}
					wire, err = codecs[to].Encode(native)
					if err != nil {
						t.Fatalf("invoice %d: encode %s: %v", i, to, err)
					}
					native, err = codecs[to].Decode(wire)
					if err != nil {
						t.Fatalf("invoice %d: decode %s: %v", i, to, err)
					}
					back, err := r.ToNormalized(to, doc.TypeINV, native)
					if err != nil {
						t.Fatalf("invoice %d: normalize: %v", i, err)
					}
					if err := SemanticEqualINV(inv, back.(*doc.Invoice)); err != nil {
						t.Fatalf("invoice %d (%d lines, due=%v, note=%q): %v",
							i, len(inv.Lines), !inv.DueAt.IsZero(), inv.Note, err)
					}
				}
			})
		}
	}
}

func TestInvoiceAmountMatchesEDITotal(t *testing.T) {
	// The 810's TDS total (cents) must agree with the normalized amount.
	inv := sampleInvoice()
	native, err := NormalizedINVToEDI(inv)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := native.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := edi.DecodeInvoice810(wire)
	if err != nil {
		t.Fatal(err)
	}
	back, err := EDIINVToNormalized(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if back.Amount() != inv.Amount() {
		t.Fatalf("amount %v != %v", back.Amount(), inv.Amount())
	}
}

func TestInvoiceValidationRejected(t *testing.T) {
	r := newFullRegistry()
	inv := sampleInvoice()
	inv.POID = ""
	for _, f := range allFormats {
		if _, err := r.FromNormalized(f, doc.TypeINV, inv); err == nil {
			t.Errorf("format %s accepted an invoice without PO reference", f)
		}
	}
}

func TestInvoiceNoDueDate(t *testing.T) {
	r := newFullRegistry()
	inv := sampleInvoice()
	inv.DueAt = time.Time{}
	for _, f := range allFormats {
		native, err := r.FromNormalized(f, doc.TypeINV, inv)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		back, err := r.ToNormalized(f, doc.TypeINV, native)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := SemanticEqualINV(inv, back.(*doc.Invoice)); err != nil {
			t.Fatalf("%s without due date: %v", f, err)
		}
	}
}
