package transform

import (
	"fmt"
	"time"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/rosettanet"
)

// RNPOToNormalized maps a PIP 3A4 purchase order request to the normalized
// purchase order.
func RNPOToNormalized(r *rosettanet.PurchaseOrderRequest) (*doc.PurchaseOrder, error) {
	issued, err := rosettanet.ParseTime(r.GenerationDateTime)
	if err != nil {
		return nil, fmt.Errorf("transform: bad 3A4 generation time %q: %w", r.GenerationDateTime, err)
	}
	po := &doc.PurchaseOrder{
		ID: r.DocumentIdentifier,
		Buyer: doc.Party{
			ID:   r.FromRole.ProprietaryIdentifier,
			Name: r.FromRole.BusinessName,
			DUNS: r.FromRole.BusinessIdentifier,
		},
		Seller: doc.Party{
			ID:   r.ToRole.ProprietaryIdentifier,
			Name: r.ToRole.BusinessName,
			DUNS: r.ToRole.BusinessIdentifier,
		},
		Currency: r.Currency,
		IssuedAt: issued,
		ShipTo:   r.DeliverTo,
		Note:     r.Comment,
	}
	for _, li := range r.LineItems {
		po.Lines = append(po.Lines, doc.Line{
			Number:      li.LineNumber,
			SKU:         li.ProductIdentifier,
			Description: li.ProductDescription,
			Quantity:    li.RequestedQuantity,
			UnitPrice:   li.RequestedUnitPrice.Amount,
		})
	}
	if err := po.Validate(); err != nil {
		return nil, err
	}
	return po, nil
}

// NormalizedPOToRN maps a normalized purchase order to a PIP 3A4 request.
func NormalizedPOToRN(po *doc.PurchaseOrder) (*rosettanet.PurchaseOrderRequest, error) {
	if err := po.Validate(); err != nil {
		return nil, err
	}
	r := &rosettanet.PurchaseOrderRequest{
		FromRole: rosettanet.PartnerRole{
			RoleClassification:    "Buyer",
			BusinessIdentifier:    po.Buyer.DUNS,
			ProprietaryIdentifier: po.Buyer.ID,
			BusinessName:          po.Buyer.Name,
		},
		ToRole: rosettanet.PartnerRole{
			RoleClassification:    "Seller",
			BusinessIdentifier:    po.Seller.DUNS,
			ProprietaryIdentifier: po.Seller.ID,
			BusinessName:          po.Seller.Name,
		},
		DocumentIdentifier: po.ID,
		GenerationDateTime: rosettanet.FormatTime(po.IssuedAt),
		OrderType:          "Standalone",
		Currency:           po.Currency,
		DeliverTo:          po.ShipTo,
		Comment:            po.Note,
	}
	for _, l := range po.Lines {
		r.LineItems = append(r.LineItems, rosettanet.ProductLineItem{
			LineNumber:         l.Number,
			ProductIdentifier:  l.SKU,
			ProductDescription: l.Description,
			RequestedQuantity:  l.Quantity,
			RequestedUnitPrice: rosettanet.FinancialAmount{Currency: po.Currency, Amount: l.UnitPrice},
		})
	}
	return r, nil
}

func rnStatusToAck(s string) (doc.AckStatus, error) {
	switch s {
	case "Accept":
		return doc.AckAccepted, nil
	case "Reject":
		return doc.AckRejected, nil
	case "Pending":
		return doc.AckPartial, nil
	}
	return "", fmt.Errorf("transform: unknown 3A4 status code %q", s)
}

func ackToRNStatus(s doc.AckStatus) (string, error) {
	switch s {
	case doc.AckAccepted:
		return "Accept", nil
	case doc.AckRejected:
		return "Reject", nil
	case doc.AckPartial:
		return "Pending", nil
	}
	return "", fmt.Errorf("transform: unknown ack status %q", s)
}

func rnLineStatus(s string) (doc.LineStatus, error) {
	switch s {
	case "Accept":
		return doc.LineAccepted, nil
	case "Reject":
		return doc.LineRejected, nil
	case "Backordered":
		return doc.LineBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown 3A4 line status %q", s)
}

func lineStatusToRN(s doc.LineStatus) (string, error) {
	switch s {
	case doc.LineAccepted:
		return "Accept", nil
	case doc.LineRejected:
		return "Reject", nil
	case doc.LineBackorder:
		return "Backordered", nil
	}
	return "", fmt.Errorf("transform: unknown line status %q", s)
}

// RNPOAToNormalized maps a PIP 3A4 confirmation to the normalized
// acknowledgment.
func RNPOAToNormalized(c *rosettanet.PurchaseOrderConfirmation) (*doc.PurchaseOrderAck, error) {
	status, err := rnStatusToAck(c.StatusCode)
	if err != nil {
		return nil, err
	}
	issued, err := rosettanet.ParseTime(c.GenerationDateTime)
	if err != nil {
		return nil, fmt.Errorf("transform: bad 3A4 generation time %q: %w", c.GenerationDateTime, err)
	}
	poa := &doc.PurchaseOrderAck{
		ID:   c.DocumentIdentifier,
		POID: c.RequestIdentifier,
		// In the confirmation the Seller is the fromRole.
		Buyer: doc.Party{
			ID:   c.ToRole.ProprietaryIdentifier,
			Name: c.ToRole.BusinessName,
			DUNS: c.ToRole.BusinessIdentifier,
		},
		Seller: doc.Party{
			ID:   c.FromRole.ProprietaryIdentifier,
			Name: c.FromRole.BusinessName,
			DUNS: c.FromRole.BusinessIdentifier,
		},
		Status:   status,
		IssuedAt: issued,
		Note:     c.Comment,
	}
	for _, li := range c.LineItems {
		ls, err := rnLineStatus(li.StatusCode)
		if err != nil {
			return nil, err
		}
		al := doc.AckLine{Number: li.LineNumber, Status: ls, Quantity: li.ConfirmedQuantity}
		if li.ScheduledShipDate != "" {
			d, err := rosettanet.ParseTime(li.ScheduledShipDate)
			if err != nil {
				return nil, fmt.Errorf("transform: bad 3A4 ship date %q: %w", li.ScheduledShipDate, err)
			}
			al.ShipDate = d
		}
		poa.Lines = append(poa.Lines, al)
	}
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	return poa, nil
}

// NormalizedPOAToRN maps a normalized acknowledgment to a PIP 3A4
// confirmation.
func NormalizedPOAToRN(poa *doc.PurchaseOrderAck) (*rosettanet.PurchaseOrderConfirmation, error) {
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	status, err := ackToRNStatus(poa.Status)
	if err != nil {
		return nil, err
	}
	c := &rosettanet.PurchaseOrderConfirmation{
		FromRole: rosettanet.PartnerRole{
			RoleClassification:    "Seller",
			BusinessIdentifier:    poa.Seller.DUNS,
			ProprietaryIdentifier: poa.Seller.ID,
			BusinessName:          poa.Seller.Name,
		},
		ToRole: rosettanet.PartnerRole{
			RoleClassification:    "Buyer",
			BusinessIdentifier:    poa.Buyer.DUNS,
			ProprietaryIdentifier: poa.Buyer.ID,
			BusinessName:          poa.Buyer.Name,
		},
		DocumentIdentifier: poa.ID,
		RequestIdentifier:  poa.POID,
		GenerationDateTime: rosettanet.FormatTime(poa.IssuedAt),
		StatusCode:         status,
		Comment:            poa.Note,
	}
	for _, l := range poa.Lines {
		ls, err := lineStatusToRN(l.Status)
		if err != nil {
			return nil, err
		}
		item := rosettanet.LineStatus{LineNumber: l.Number, StatusCode: ls, ConfirmedQuantity: l.Quantity}
		if !l.ShipDate.IsZero() {
			item.ScheduledShipDate = rosettanet.FormatTime(l.ShipDate.Truncate(time.Second))
		}
		c.LineItems = append(c.LineItems, item)
	}
	return c, nil
}

// RegisterRosettaNet registers the four RosettaNet↔normalized transformers.
func RegisterRosettaNet(r *Registry) {
	r.Register(Func{formats.RosettaNet, formats.Normalized, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*rosettanet.PurchaseOrderRequest)
		if !ok {
			return nil, fmt.Errorf("want *rosettanet.PurchaseOrderRequest, got %T", n)
		}
		return RNPOToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.RosettaNet, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrder, got %T", n)
		}
		return NormalizedPOToRN(p)
	}})
	r.Register(Func{formats.RosettaNet, formats.Normalized, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*rosettanet.PurchaseOrderConfirmation)
		if !ok {
			return nil, fmt.Errorf("want *rosettanet.PurchaseOrderConfirmation, got %T", n)
		}
		return RNPOAToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.RosettaNet, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrderAck)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrderAck, got %T", n)
		}
		return NormalizedPOAToRN(p)
	}})
}
