package transform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
	"repro/internal/formats/oagis"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/rosettanet"
	"repro/internal/formats/sapidoc"
)

func newFullRegistry() *Registry {
	r := &Registry{}
	RegisterAll(r)
	return r
}

var (
	buyer  = doc.Party{ID: "TP1", Name: "Acme Corp", DUNS: "123456789"}
	seller = doc.Party{ID: "HUB", Name: "Widget Inc", DUNS: "987654321"}
)

func samplePO() *doc.PurchaseOrder {
	return &doc.PurchaseOrder{
		ID:       "PO-TP1-000001",
		Buyer:    buyer,
		Seller:   seller,
		Currency: "USD",
		IssuedAt: time.Date(2001, 9, 3, 9, 0, 0, 0, time.UTC),
		ShipTo:   "Acme Receiving Dock 1",
		Note:     "rush order",
		Lines: []doc.Line{
			{Number: 1, SKU: "LAP-100", Description: "Laptop", Quantity: 10, UnitPrice: 1450},
			{Number: 2, SKU: "MON-27", Description: "Monitor", Quantity: 20, UnitPrice: 480.25},
		},
	}
}

func samplePOA() *doc.PurchaseOrderAck {
	poa := doc.AckFor(samplePO(), "POA-000042")
	poa.Status = doc.AckPartial
	poa.Lines[1].Status = doc.LineBackorder
	poa.Lines[1].Quantity = 15
	poa.Note = "line 2 partially backordered"
	return poa
}

// allFormats lists every concrete format for sweep tests.
var allFormats = []formats.Format{
	formats.EDI, formats.RosettaNet, formats.OAGIS, formats.SAPIDoc, formats.OracleOIF,
}

// TestPORoundTripThroughEveryFormat: normalized → native → normalized
// preserves the semantic fields for every format.
func TestPORoundTripThroughEveryFormat(t *testing.T) {
	r := newFullRegistry()
	for _, f := range allFormats {
		t.Run(string(f), func(t *testing.T) {
			po := samplePO()
			native, err := r.FromNormalized(f, doc.TypePO, po)
			if err != nil {
				t.Fatal(err)
			}
			back, err := r.ToNormalized(f, doc.TypePO, native)
			if err != nil {
				t.Fatal(err)
			}
			if err := SemanticEqualPO(po, back.(*doc.PurchaseOrder)); err != nil {
				t.Fatalf("semantic fields lost through %s: %v", f, err)
			}
		})
	}
}

// TestPOARoundTripThroughEveryFormat does the same for acknowledgments.
func TestPOARoundTripThroughEveryFormat(t *testing.T) {
	r := newFullRegistry()
	for _, f := range allFormats {
		t.Run(string(f), func(t *testing.T) {
			poa := samplePOA()
			native, err := r.FromNormalized(f, doc.TypePOA, poa)
			if err != nil {
				t.Fatal(err)
			}
			back, err := r.ToNormalized(f, doc.TypePOA, native)
			if err != nil {
				t.Fatal(err)
			}
			if err := SemanticEqualPOA(poa, back.(*doc.PurchaseOrderAck)); err != nil {
				t.Fatalf("semantic fields lost through %s: %v", f, err)
			}
		})
	}
}

// TestPORoundTripThroughWire adds the codec layer: normalized → native →
// wire bytes → native → normalized for every format.
func TestPORoundTripThroughWire(t *testing.T) {
	r := newFullRegistry()
	codecs := map[formats.Format][2]formats.Codec{
		formats.EDI:        {edi.POCodec{}, edi.POACodec{}},
		formats.RosettaNet: {rosettanet.POCodec{}, rosettanet.POACodec{}},
		formats.OAGIS:      {oagis.POCodec{}, oagis.POACodec{}},
		formats.SAPIDoc:    {sapidoc.POCodec{}, sapidoc.POACodec{}},
		formats.OracleOIF:  {oracleoif.POCodec{}, oracleoif.POACodec{}},
	}
	for f, pair := range codecs {
		t.Run(string(f), func(t *testing.T) {
			po := samplePO()
			native, err := r.FromNormalized(f, doc.TypePO, po)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := pair[0].Encode(native)
			if err != nil {
				t.Fatal(err)
			}
			native2, err := pair[0].Decode(wire)
			if err != nil {
				t.Fatal(err)
			}
			back, err := r.ToNormalized(f, doc.TypePO, native2)
			if err != nil {
				t.Fatal(err)
			}
			if err := SemanticEqualPO(po, back.(*doc.PurchaseOrder)); err != nil {
				t.Fatalf("wire round trip through %s lost fields: %v", f, err)
			}

			poa := samplePOA()
			nativeA, err := r.FromNormalized(f, doc.TypePOA, poa)
			if err != nil {
				t.Fatal(err)
			}
			wireA, err := pair[1].Encode(nativeA)
			if err != nil {
				t.Fatal(err)
			}
			nativeA2, err := pair[1].Decode(wireA)
			if err != nil {
				t.Fatal(err)
			}
			backA, err := r.ToNormalized(f, doc.TypePOA, nativeA2)
			if err != nil {
				t.Fatal(err)
			}
			if err := SemanticEqualPOA(poa, backA.(*doc.PurchaseOrderAck)); err != nil {
				t.Fatalf("wire round trip through %s lost fields: %v", f, err)
			}
		})
	}
}

// TestCrossFormatChain reproduces the Figure 9 transformation steps
// ("Transform EDI to SAP PO" etc.): every concrete format to every other
// concrete format via the normalized hub.
func TestCrossFormatChain(t *testing.T) {
	r := newFullRegistry()
	for _, from := range allFormats {
		for _, to := range allFormats {
			if from == to {
				continue
			}
			t.Run(string(from)+"→"+string(to), func(t *testing.T) {
				po := samplePO()
				native, err := r.FromNormalized(from, doc.TypePO, po)
				if err != nil {
					t.Fatal(err)
				}
				other, err := r.Apply(from, to, doc.TypePO, native)
				if err != nil {
					t.Fatal(err)
				}
				back, err := r.ToNormalized(to, doc.TypePO, other)
				if err != nil {
					t.Fatal(err)
				}
				if err := SemanticEqualPO(po, back.(*doc.PurchaseOrder)); err != nil {
					t.Fatalf("%s→%s chain lost fields: %v", from, to, err)
				}
			})
		}
	}
}

// TestPropertyGeneratedPOsRoundTrip sweeps generated orders through every
// format.
func TestPropertyGeneratedPOsRoundTrip(t *testing.T) {
	r := newFullRegistry()
	g := doc.NewGenerator(31)
	for i := 0; i < 60; i++ {
		po := g.PO(buyer, seller)
		for _, f := range allFormats {
			native, err := r.FromNormalized(f, doc.TypePO, po)
			if err != nil {
				t.Fatalf("po %d format %s: %v", i, f, err)
			}
			back, err := r.ToNormalized(f, doc.TypePO, native)
			if err != nil {
				t.Fatalf("po %d format %s: %v", i, f, err)
			}
			if err := SemanticEqualPO(po, back.(*doc.PurchaseOrder)); err != nil {
				t.Fatalf("po %d format %s: %v", i, f, err)
			}
		}
	}
}

func TestAmountPreservedThroughChains(t *testing.T) {
	// The business rules run on document.amount after transformation; a
	// chain must never change the amount (Figure 9's premise that the same
	// rule threshold applies whatever the source format was).
	r := newFullRegistry()
	g := doc.NewGenerator(77)
	for i := 0; i < 40; i++ {
		po := g.PO(buyer, seller)
		want := po.Amount()
		native, err := r.FromNormalized(formats.EDI, doc.TypePO, po)
		if err != nil {
			t.Fatal(err)
		}
		sap, err := r.Apply(formats.EDI, formats.SAPIDoc, doc.TypePO, native)
		if err != nil {
			t.Fatal(err)
		}
		back, err := r.ToNormalized(formats.SAPIDoc, doc.TypePO, sap)
		if err != nil {
			t.Fatal(err)
		}
		if got := back.(*doc.PurchaseOrder).Amount(); got != want {
			t.Fatalf("amount changed through EDI→SAP chain: %v != %v", got, want)
		}
	}
}

func TestIdentityTransform(t *testing.T) {
	r := newFullRegistry()
	po := samplePO()
	out, err := r.Apply(formats.EDI, formats.EDI, doc.TypePO, po)
	if err != nil {
		t.Fatal(err)
	}
	if out != any(po) {
		t.Fatal("same-format Apply should return the input unchanged")
	}
}

func TestMissingMapping(t *testing.T) {
	r := &Registry{}
	RegisterEDI(r)
	if _, err := r.Apply(formats.OAGIS, formats.Normalized, doc.TypePO, nil); err == nil {
		t.Fatal("expected missing-mapping error")
	}
	if _, err := r.Apply(formats.EDI, formats.OAGIS, doc.TypePO, &edi.PO850{}); err == nil || !strings.Contains(err.Error(), "hub leg") {
		t.Fatalf("expected missing hub-leg error, got %v", err)
	}
}

func TestWrongNativeType(t *testing.T) {
	r := newFullRegistry()
	if _, err := r.ToNormalized(formats.EDI, doc.TypePO, "not a po"); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := r.FromNormalized(formats.EDI, doc.TypePO, 42); err == nil {
		t.Fatal("expected type error")
	}
}

func TestInvalidDocumentRejected(t *testing.T) {
	r := newFullRegistry()
	po := samplePO()
	po.Lines = nil
	for _, f := range allFormats {
		if _, err := r.FromNormalized(f, doc.TypePO, po); err == nil {
			t.Errorf("format %s accepted an invalid PO", f)
		}
	}
}

func TestUnknownStatusCodes(t *testing.T) {
	if _, err := bakToAckStatus("XX"); err == nil {
		t.Error("bakToAckStatus accepted unknown code")
	}
	if _, err := ackStatusToBAK("weird"); err == nil {
		t.Error("ackStatusToBAK accepted unknown status")
	}
	if _, err := rnStatusToAck("Perhaps"); err == nil {
		t.Error("rnStatusToAck accepted unknown code")
	}
	if _, err := oagisLineStatus("Shrug"); err == nil {
		t.Error("oagisLineStatus accepted unknown code")
	}
	if _, err := sapLineStatus("ZZZ"); err == nil {
		t.Error("sapLineStatus accepted unknown code")
	}
	if _, err := oraLineStatus("nope"); err == nil {
		t.Error("oraLineStatus accepted unknown code")
	}
}

func TestRegistryCountAndKeys(t *testing.T) {
	r := newFullRegistry()
	// 5 formats × 2 directions × 3 doc types (PO, POA, Invoice), plus the
	// EDI-only functional-ack pair.
	if got := r.Count(); got != 32 {
		t.Fatalf("Count = %d, want 32", got)
	}
	keys := r.Keys()
	if len(keys) != 32 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
}

func TestPosexMapping(t *testing.T) {
	for _, c := range []struct{ line, posex int }{{1, 10}, {2, 20}, {15, 150}} {
		if posexFor(c.line) != c.posex {
			t.Errorf("posexFor(%d) = %d", c.line, posexFor(c.line))
		}
		if lineForPosex(c.posex) != c.line {
			t.Errorf("lineForPosex(%d) = %d", c.posex, lineForPosex(c.posex))
		}
	}
	// Non-conventional POSEX values pass through unchanged.
	if lineForPosex(7) != 7 {
		t.Error("non-multiple POSEX should pass through")
	}
}

func TestControlNumberDeterministicPositive(t *testing.T) {
	a, b := controlNumber("PO-1"), controlNumber("PO-1")
	if a != b {
		t.Fatal("controlNumber not deterministic")
	}
	if a < 0 {
		t.Fatal("controlNumber negative")
	}
	if controlNumber("PO-1") == controlNumber("PO-2") {
		t.Fatal("controlNumber collision on trivially different ids (unlucky hash?)")
	}
}
