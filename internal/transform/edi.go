package transform

import (
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
)

// EDIPOToNormalized maps an X12 850 to the normalized purchase order.
func EDIPOToNormalized(p *edi.PO850) (*doc.PurchaseOrder, error) {
	po := &doc.PurchaseOrder{
		ID:       p.PONumber,
		Buyer:    doc.Party{ID: p.SenderID, Name: p.BuyerName, DUNS: p.BuyerDUNS},
		Seller:   doc.Party{ID: p.ReceiverID, Name: p.SellerName, DUNS: p.SellerDUNS},
		Currency: p.Currency,
		IssuedAt: p.Date,
		ShipTo:   p.ShipTo,
		Note:     p.Note,
	}
	for _, it := range p.Items {
		po.Lines = append(po.Lines, doc.Line{
			Number:      it.Line,
			SKU:         it.SKU,
			Description: it.Description,
			Quantity:    it.Quantity,
			UnitPrice:   it.UnitPrice,
		})
	}
	if err := po.Validate(); err != nil {
		return nil, err
	}
	return po, nil
}

// NormalizedPOToEDI maps a normalized purchase order to an X12 850.
func NormalizedPOToEDI(po *doc.PurchaseOrder) (*edi.PO850, error) {
	if err := po.Validate(); err != nil {
		return nil, err
	}
	p := &edi.PO850{
		SenderID:   po.Buyer.ID,
		ReceiverID: po.Seller.ID,
		Control:    controlNumber(po.ID),
		PONumber:   po.ID,
		Date:       po.IssuedAt,
		Currency:   po.Currency,
		BuyerName:  po.Buyer.Name,
		BuyerDUNS:  po.Buyer.DUNS,
		SellerName: po.Seller.Name,
		SellerDUNS: po.Seller.DUNS,
		ShipTo:     po.ShipTo,
		Note:       po.Note,
	}
	for _, l := range po.Lines {
		p.Items = append(p.Items, edi.Item850{
			Line:        l.Number,
			Quantity:    l.Quantity,
			UnitPrice:   l.UnitPrice,
			SKU:         l.SKU,
			Description: l.Description,
		})
	}
	return p, nil
}

func bakToAckStatus(c edi.BAKCode) (doc.AckStatus, error) {
	switch c {
	case edi.BAKAcceptedWithDetail:
		return doc.AckAccepted, nil
	case edi.BAKRejectedWithDetail:
		return doc.AckRejected, nil
	case edi.BAKAcceptedWithChange:
		return doc.AckPartial, nil
	}
	return "", fmt.Errorf("transform: unknown BAK02 code %q", c)
}

func ackStatusToBAK(s doc.AckStatus) (edi.BAKCode, error) {
	switch s {
	case doc.AckAccepted:
		return edi.BAKAcceptedWithDetail, nil
	case doc.AckRejected:
		return edi.BAKRejectedWithDetail, nil
	case doc.AckPartial:
		return edi.BAKAcceptedWithChange, nil
	}
	return "", fmt.Errorf("transform: unknown ack status %q", s)
}

func ackCodeToLineStatus(c edi.AckCode) (doc.LineStatus, error) {
	switch c {
	case edi.AckItemAccepted:
		return doc.LineAccepted, nil
	case edi.AckItemRejected:
		return doc.LineRejected, nil
	case edi.AckItemBackorder:
		return doc.LineBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown ACK01 code %q", c)
}

func lineStatusToAckCode(s doc.LineStatus) (edi.AckCode, error) {
	switch s {
	case doc.LineAccepted:
		return edi.AckItemAccepted, nil
	case doc.LineRejected:
		return edi.AckItemRejected, nil
	case doc.LineBackorder:
		return edi.AckItemBackorder, nil
	}
	return "", fmt.Errorf("transform: unknown line status %q", s)
}

// EDIPOAToNormalized maps an X12 855 to the normalized acknowledgment.
func EDIPOAToNormalized(p *edi.POA855) (*doc.PurchaseOrderAck, error) {
	status, err := bakToAckStatus(p.Code)
	if err != nil {
		return nil, err
	}
	poa := &doc.PurchaseOrderAck{
		ID:       p.AckNumber,
		POID:     p.PONumber,
		Buyer:    doc.Party{ID: p.ReceiverID, Name: p.BuyerName, DUNS: p.BuyerDUNS},
		Seller:   doc.Party{ID: p.SenderID, Name: p.SellerName, DUNS: p.SellerDUNS},
		Status:   status,
		IssuedAt: p.Date,
		Note:     p.Note,
	}
	for _, it := range p.Items {
		ls, err := ackCodeToLineStatus(it.Code)
		if err != nil {
			return nil, err
		}
		poa.Lines = append(poa.Lines, doc.AckLine{
			Number:   it.Line,
			Status:   ls,
			Quantity: it.Quantity,
			ShipDate: it.ShipDate,
		})
	}
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	return poa, nil
}

// NormalizedPOAToEDI maps a normalized acknowledgment to an X12 855. The
// 855 travels seller→buyer, so the interchange sender is the seller.
func NormalizedPOAToEDI(poa *doc.PurchaseOrderAck) (*edi.POA855, error) {
	if err := poa.Validate(); err != nil {
		return nil, err
	}
	code, err := ackStatusToBAK(poa.Status)
	if err != nil {
		return nil, err
	}
	p := &edi.POA855{
		SenderID:   poa.Seller.ID,
		ReceiverID: poa.Buyer.ID,
		Control:    controlNumber(poa.ID),
		AckNumber:  poa.ID,
		PONumber:   poa.POID,
		Code:       code,
		Date:       poa.IssuedAt,
		BuyerName:  poa.Buyer.Name,
		BuyerDUNS:  poa.Buyer.DUNS,
		SellerName: poa.Seller.Name,
		SellerDUNS: poa.Seller.DUNS,
		Note:       poa.Note,
	}
	for _, l := range poa.Lines {
		code, err := lineStatusToAckCode(l.Status)
		if err != nil {
			return nil, err
		}
		p.Items = append(p.Items, edi.AckItem855{
			Line:     l.Number,
			Code:     code,
			Quantity: l.Quantity,
			ShipDate: l.ShipDate,
		})
	}
	return p, nil
}

// EDIFAToNormalized maps an X12 997 to the normalized functional ack.
func EDIFAToNormalized(f *edi.FA997) (*doc.FunctionalAck, error) {
	fa := &doc.FunctionalAck{
		ID:         f.AckNumber,
		RefControl: f.RefControl,
		RefGroupID: f.RefGroupID,
		Accepted:   f.Accepted,
		Note:       f.Note,
	}
	if err := fa.Validate(); err != nil {
		return nil, err
	}
	return fa, nil
}

// NormalizedFAToEDI maps a normalized functional ack to an X12 997. The
// party identifiers are transport metadata the caller fills in afterwards.
func NormalizedFAToEDI(fa *doc.FunctionalAck) (*edi.FA997, error) {
	if err := fa.Validate(); err != nil {
		return nil, err
	}
	return &edi.FA997{
		Control:    controlNumber(fa.ID),
		AckNumber:  fa.ID,
		RefGroupID: fa.RefGroupID,
		RefControl: fa.RefControl,
		Accepted:   fa.Accepted,
		Note:       fa.Note,
	}, nil
}

// RegisterEDI registers the four EDI↔normalized transformers.
func RegisterEDI(r *Registry) {
	r.Register(Func{formats.EDI, formats.Normalized, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*edi.PO850)
		if !ok {
			return nil, fmt.Errorf("want *edi.PO850, got %T", n)
		}
		return EDIPOToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.EDI, doc.TypePO, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrder)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrder, got %T", n)
		}
		return NormalizedPOToEDI(p)
	}})
	r.Register(Func{formats.EDI, formats.Normalized, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*edi.POA855)
		if !ok {
			return nil, fmt.Errorf("want *edi.POA855, got %T", n)
		}
		return EDIPOAToNormalized(p)
	}})
	r.Register(Func{formats.Normalized, formats.EDI, doc.TypePOA, func(n any) (any, error) {
		p, ok := n.(*doc.PurchaseOrderAck)
		if !ok {
			return nil, fmt.Errorf("want *doc.PurchaseOrderAck, got %T", n)
		}
		return NormalizedPOAToEDI(p)
	}})
	r.Register(Func{formats.EDI, formats.Normalized, doc.TypeFA, func(n any) (any, error) {
		f, ok := n.(*edi.FA997)
		if !ok {
			return nil, fmt.Errorf("want *edi.FA997, got %T", n)
		}
		return EDIFAToNormalized(f)
	}})
	r.Register(Func{formats.Normalized, formats.EDI, doc.TypeFA, func(n any) (any, error) {
		f, ok := n.(*doc.FunctionalAck)
		if !ok {
			return nil, fmt.Errorf("want *doc.FunctionalAck, got %T", n)
		}
		return NormalizedFAToEDI(f)
	}})
}
