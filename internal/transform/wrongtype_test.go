package transform

import (
	"strings"
	"testing"

	"repro/internal/doc"
	"repro/internal/formats"
)

// TestEveryLegRejectsWrongNativeType feeds an obviously wrong value to
// every registered transformer and requires a typed error naming what was
// expected — no leg may panic or silently coerce.
func TestEveryLegRejectsWrongNativeType(t *testing.T) {
	r := newFullRegistry()
	type leg struct {
		from, to formats.Format
		dt       doc.DocType
	}
	var legs []leg
	for _, f := range allFormats {
		for _, dt := range []doc.DocType{doc.TypePO, doc.TypePOA, doc.TypeINV} {
			legs = append(legs,
				leg{f, formats.Normalized, dt},
				leg{formats.Normalized, f, dt},
			)
		}
	}
	legs = append(legs,
		leg{formats.EDI, formats.Normalized, doc.TypeFA},
		leg{formats.Normalized, formats.EDI, doc.TypeFA},
	)
	for _, l := range legs {
		tr, ok := r.Lookup(l.from, l.to, l.dt)
		if !ok {
			t.Fatalf("missing leg %s→%s %s", l.from, l.to, l.dt)
		}
		if _, err := tr.Apply(struct{ X int }{42}); err == nil {
			t.Errorf("leg %s→%s %s accepted a wrong type", l.from, l.to, l.dt)
		} else if !strings.Contains(err.Error(), "want") {
			t.Errorf("leg %s→%s %s error does not name the expected type: %v", l.from, l.to, l.dt, err)
		}
	}
}

// TestChainErrorsPropagate: a chain whose first leg fails surfaces the
// failing leg in the error.
func TestChainErrorsPropagate(t *testing.T) {
	r := newFullRegistry()
	_, err := r.Apply(formats.EDI, formats.SAPIDoc, doc.TypePO, "not an interchange")
	if err == nil {
		t.Fatal("bad chain input accepted")
	}
	if !strings.Contains(err.Error(), "EDI-X12") {
		t.Fatalf("error should name the failing leg: %v", err)
	}
}

// TestFuncAccessors covers the Func adapter's interface surface.
func TestFuncAccessors(t *testing.T) {
	f := Func{FromFormat: formats.EDI, ToFormat: formats.Normalized, Type: doc.TypePO,
		Fn: func(n any) (any, error) { return n, nil }}
	if f.From() != formats.EDI || f.To() != formats.Normalized || f.DocType() != doc.TypePO {
		t.Fatal("accessors wrong")
	}
	out, err := f.Apply("x")
	if err != nil || out != "x" {
		t.Fatalf("%v %v", out, err)
	}
}
