// Package metrics quantifies integration models: how many artifacts a
// model contains and which artifacts a change touches. It turns the
// paper's qualitative scalability argument (Sections 3 and 4.6) into
// measurable quantities: the naive approach's workflow types grow with the
// product of trading partners × protocols × back ends and every change
// rewrites them, while the advanced approach grows additively and changes
// stay local.
package metrics

import (
	"encoding/json"
	"sort"
	"strings"

	"repro/internal/wf"
)

// ModelStats counts the artifacts of a set of workflow types.
type ModelStats struct {
	// Types is the number of workflow type definitions.
	Types int
	// Steps and Arcs count across all types.
	Steps int
	Arcs  int
	// TransformSteps counts steps declared with wf.RoleTransform — the
	// paper's per-combination "Transform X to Y" steps, identified by their
	// semantic role annotation rather than by name matching.
	TransformSteps int
	// MessageSteps counts send/receive/connection steps.
	MessageSteps int
	// ConditionTerms counts the total number of comparison terms in arc
	// conditions — the paper's trading-partner-specific clauses that pile
	// up inside naive workflow conditions ("source == TP1 && …").
	ConditionTerms int
}

// StatsOf computes ModelStats over workflow type definitions.
func StatsOf(defs []*wf.TypeDef) ModelStats {
	var s ModelStats
	s.Types = len(defs)
	for _, d := range defs {
		s.Steps += len(d.Steps)
		s.Arcs += len(d.Arcs)
		for _, st := range d.Steps {
			if st.Role == wf.RoleTransform {
				s.TransformSteps++
			}
			switch st.Kind {
			case wf.StepSend, wf.StepReceive, wf.StepConnection:
				s.MessageSteps++
			}
		}
		for _, a := range d.Arcs {
			s.ConditionTerms += countTerms(a.Condition)
		}
	}
	return s
}

// countTerms counts comparison operators in a condition as a proxy for its
// clause count.
func countTerms(cond string) int {
	if cond == "" {
		return 0
	}
	n := 0
	for _, op := range []string{"==", "!=", ">=", "<="} {
		n += strings.Count(cond, op)
	}
	// Bare > and < not already counted as >= / <=.
	n += strings.Count(cond, ">") - strings.Count(cond, ">=")
	n += strings.Count(cond, "<") - strings.Count(cond, "<=")
	return n
}

// PlanStats summarizes the compiled execution plans an engine currently
// holds: the derived (never persisted) lowering of the deployed model.
type PlanStats struct {
	// Plans is the number of cached compiled plans.
	Plans int
	// Steps and Arcs count across all plans.
	Steps int
	Arcs  int
	// MaxWidth is the largest parallel group any plan exposes — an upper
	// bound on how much intra-instance step parallelism the model admits.
	MaxWidth int
	// Epoch is the engine's plan epoch: it advances on every successful
	// deploy, and route caches keyed off plans use it for invalidation.
	Epoch int64
	// Compiles counts compilations the engine has performed over its
	// lifetime (eager deploys plus lazy recompiles) — the change-impact
	// measure: how much compiler work a model edit triggered.
	Compiles int64
}

// PlanStatsOf computes PlanStats over an engine's live plan cache.
func PlanStatsOf(e *wf.Engine) PlanStats {
	s := PlanStats{Epoch: e.PlanEpoch(), Compiles: e.CompiledPlans()}
	for _, p := range e.Plans() {
		s.Plans++
		s.Steps += p.NumSteps()
		s.Arcs += p.NumArcs()
		if w := p.MaxWidth(); w > s.MaxWidth {
			s.MaxWidth = w
		}
	}
	return s
}

// ChangeImpact describes which workflow types a model change touched.
type ChangeImpact struct {
	// Added, Removed and Modified list workflow type names.
	Added    []string
	Removed  []string
	Modified []string
	// Untouched counts types that survived the change byte-identical —
	// the paper's measure of change locality.
	Untouched int
}

// TouchedTypes is the total number of types the change rewrote or created.
func (c ChangeImpact) TouchedTypes() int {
	return len(c.Added) + len(c.Removed) + len(c.Modified)
}

// fingerprint serializes the definition's structure for comparison.
func fingerprint(d *wf.TypeDef) string {
	cp := d.Clone()
	cp.Version = 0 // version bumps alone are not semantic changes
	b, _ := json.Marshal(cp)
	return string(b)
}

// Diff computes the change impact between two models (each a set of types
// keyed by name).
func Diff(before, after []*wf.TypeDef) ChangeImpact {
	oldFP := map[string]string{}
	for _, d := range before {
		oldFP[d.Name] = fingerprint(d)
	}
	newFP := map[string]string{}
	for _, d := range after {
		newFP[d.Name] = fingerprint(d)
	}
	var impact ChangeImpact
	for name, fp := range newFP {
		old, existed := oldFP[name]
		switch {
		case !existed:
			impact.Added = append(impact.Added, name)
		case old != fp:
			impact.Modified = append(impact.Modified, name)
		default:
			impact.Untouched++
		}
	}
	for name := range oldFP {
		if _, still := newFP[name]; !still {
			impact.Removed = append(impact.Removed, name)
		}
	}
	sort.Strings(impact.Added)
	sort.Strings(impact.Removed)
	sort.Strings(impact.Modified)
	return impact
}
