package metrics

import (
	"reflect"
	"testing"

	"repro/internal/wf"
)

func simpleType(name, cond string) *wf.TypeDef {
	return &wf.TypeDef{
		Name: name, Version: 1,
		Steps: []wf.StepDef{
			{Name: "Receive PO", Kind: wf.StepReceive, Port: "in"},
			{Name: "Transform PO", Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "x"},
			{Name: "Approve", Kind: wf.StepTask, Handler: "a"},
			{Name: "Send POA", Kind: wf.StepSend, Port: "out"},
		},
		Arcs: []wf.Arc{
			{From: "Receive PO", To: "Transform PO"},
			{From: "Transform PO", To: "Approve", Condition: cond},
			{From: "Approve", To: "Send POA"},
		},
	}
}

func TestStatsOf(t *testing.T) {
	d := simpleType("t", `source == "TP1" && document.amount >= 55000`)
	s := StatsOf([]*wf.TypeDef{d})
	if s.Types != 1 || s.Steps != 4 || s.Arcs != 3 {
		t.Fatalf("%+v", s)
	}
	if s.TransformSteps != 1 {
		t.Fatalf("transform steps %d", s.TransformSteps)
	}
	if s.MessageSteps != 2 {
		t.Fatalf("message steps %d", s.MessageSteps)
	}
	if s.ConditionTerms != 2 {
		t.Fatalf("condition terms %d", s.ConditionTerms)
	}
}

func TestCountTerms(t *testing.T) {
	cases := []struct {
		cond string
		want int
	}{
		{"", 0},
		{"a == 1", 1},
		{"a >= 1 && b <= 2", 2},
		{"a > 1 || b < 2", 2},
		{"a != 1", 1},
		{`(source == "TP1" && amount >= 55000) || (source == "TP2" && amount >= 40000)`, 4},
	}
	for _, c := range cases {
		if got := countTerms(c.cond); got != c.want {
			t.Errorf("countTerms(%q) = %d, want %d", c.cond, got, c.want)
		}
	}
}

func TestDiff(t *testing.T) {
	a := simpleType("a", "x > 1")
	b := simpleType("b", "x > 2")
	c := simpleType("c", "x > 3")

	// No change.
	impact := Diff([]*wf.TypeDef{a, b}, []*wf.TypeDef{a.Clone(), b.Clone()})
	if impact.TouchedTypes() != 0 || impact.Untouched != 2 {
		t.Fatalf("%+v", impact)
	}

	// Version-only bumps are not semantic changes.
	a2 := a.Clone()
	a2.Version = 9
	impact = Diff([]*wf.TypeDef{a}, []*wf.TypeDef{a2})
	if impact.TouchedTypes() != 0 {
		t.Fatalf("version bump counted as change: %+v", impact)
	}

	// Add, modify, remove.
	bMod := simpleType("b", "x > 99")
	impact = Diff([]*wf.TypeDef{a, b}, []*wf.TypeDef{a, bMod, c})
	if !reflect.DeepEqual(impact.Added, []string{"c"}) {
		t.Fatalf("added %v", impact.Added)
	}
	if !reflect.DeepEqual(impact.Modified, []string{"b"}) {
		t.Fatalf("modified %v", impact.Modified)
	}
	if len(impact.Removed) != 0 || impact.Untouched != 1 {
		t.Fatalf("%+v", impact)
	}
	impact = Diff([]*wf.TypeDef{a, b}, []*wf.TypeDef{a})
	if !reflect.DeepEqual(impact.Removed, []string{"b"}) {
		t.Fatalf("removed %v", impact.Removed)
	}
	if impact.TouchedTypes() != 1 {
		t.Fatalf("touched %d", impact.TouchedTypes())
	}
}
