// Package doc defines the normalized document format of the integration
// framework (Section 4.2 of the paper): the single canonical representation
// of business documents that private processes operate on, regardless of
// which B2B protocol or back-end application format a document arrived in.
//
// The two document types of the paper's running example are the purchase
// order (PO) and the purchase order acknowledgment (POA). Both carry the
// identifying and business-relevant fields that every concrete format
// (EDI X12, RosettaNet PIP 3A4, OAGIS, SAP IDoc, Oracle open interface)
// can represent, so transformation through the normalized format is
// loss-free for those fields.
package doc

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// DocType enumerates the normalized document types.
type DocType string

// Normalized document types.
const (
	TypePO  DocType = "PurchaseOrder"
	TypePOA DocType = "PurchaseOrderAck"
	TypeRFQ DocType = "RequestForQuote"
	TypeQT  DocType = "Quote"
	// TypeFA is a protocol-level functional acknowledgment (EDI 997):
	// a receipt signal produced and consumed by public processes, never
	// passed to private processes.
	TypeFA DocType = "FunctionalAck"
)

// Party identifies a business party (a trading partner or the owning
// enterprise) in a normalized document.
type Party struct {
	// ID is the stable partner identifier used for routing and business
	// rule selection, e.g. "TP1".
	ID string `json:"id"`
	// Name is the display name, e.g. "Acme Corp".
	Name string `json:"name"`
	// DUNS is the D-U-N-S number used by RosettaNet addressing.
	DUNS string `json:"duns,omitempty"`
}

// Line is one purchase order line item.
type Line struct {
	// Number is the 1-based line number.
	Number int `json:"number"`
	// SKU is the buyer's part identifier.
	SKU string `json:"sku"`
	// Description is the free-text item description.
	Description string `json:"description"`
	// Quantity ordered; must be positive.
	Quantity int `json:"quantity"`
	// UnitPrice in Currency of the enclosing document; must be non-negative.
	UnitPrice float64 `json:"unitPrice"`
}

// Extended returns the extended price of the line (quantity × unit price).
func (l Line) Extended() float64 { return float64(l.Quantity) * l.UnitPrice }

// PurchaseOrder is the normalized purchase order.
type PurchaseOrder struct {
	// ID is the buyer-assigned purchase order number.
	ID string `json:"id"`
	// Buyer and Seller identify the two parties of the exchange.
	Buyer  Party `json:"buyer"`
	Seller Party `json:"seller"`
	// Currency is an ISO 4217 code such as "USD".
	Currency string `json:"currency"`
	// IssuedAt is the order issue timestamp.
	IssuedAt time.Time `json:"issuedAt"`
	// ShipTo is the delivery location (free-form single line).
	ShipTo string `json:"shipTo"`
	// Lines are the order line items; at least one is required.
	Lines []Line `json:"lines"`
	// Note carries free-form remarks.
	Note string `json:"note,omitempty"`
}

// Amount returns the order total: the sum of extended line prices. This is
// the "PO.amount"/"document.amount" that the paper's business rules test.
func (po *PurchaseOrder) Amount() float64 {
	var sum float64
	for _, l := range po.Lines {
		sum += l.Extended()
	}
	// Round to cents to keep totals stable across transformation chains.
	return math.Round(sum*100) / 100
}

// Validate reports all structural problems with the purchase order.
func (po *PurchaseOrder) Validate() error {
	var problems []string
	if po.ID == "" {
		problems = append(problems, "missing id")
	}
	if po.Buyer.ID == "" {
		problems = append(problems, "missing buyer id")
	}
	if po.Seller.ID == "" {
		problems = append(problems, "missing seller id")
	}
	if po.Currency == "" {
		problems = append(problems, "missing currency")
	}
	if len(po.Lines) == 0 {
		problems = append(problems, "no line items")
	}
	seen := map[int]bool{}
	for i, l := range po.Lines {
		if l.Number <= 0 {
			problems = append(problems, fmt.Sprintf("line %d: non-positive line number %d", i, l.Number))
		}
		if seen[l.Number] {
			problems = append(problems, fmt.Sprintf("line %d: duplicate line number %d", i, l.Number))
		}
		seen[l.Number] = true
		if l.SKU == "" {
			problems = append(problems, fmt.Sprintf("line %d: missing sku", i))
		}
		if l.Quantity <= 0 {
			problems = append(problems, fmt.Sprintf("line %d: non-positive quantity %d", i, l.Quantity))
		}
		if l.UnitPrice < 0 {
			problems = append(problems, fmt.Sprintf("line %d: negative unit price %v", i, l.UnitPrice))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("doc: invalid purchase order %q: %s", po.ID, strings.Join(problems, "; "))
	}
	return nil
}

// Clone returns a deep copy of the purchase order.
func (po *PurchaseOrder) Clone() *PurchaseOrder {
	cp := *po
	cp.Lines = append([]Line(nil), po.Lines...)
	return &cp
}

// LineStatus is the acknowledgment decision for one PO line.
type LineStatus string

// Line acknowledgment statuses (modeled after X12 855 / PIP 3A4 responses).
const (
	LineAccepted  LineStatus = "accepted"
	LineRejected  LineStatus = "rejected"
	LineBackorder LineStatus = "backorder"
)

// AckLine is the per-line response in a purchase order acknowledgment.
type AckLine struct {
	// Number references the PO line number being acknowledged.
	Number int `json:"number"`
	// Status is the seller's decision for the line.
	Status LineStatus `json:"status"`
	// Quantity confirmed (may be less than ordered for backorders).
	Quantity int `json:"quantity"`
	// ShipDate is the promised ship date for accepted/backordered lines.
	ShipDate time.Time `json:"shipDate,omitempty"`
}

// AckStatus is the overall acknowledgment decision.
type AckStatus string

// Overall acknowledgment statuses.
const (
	AckAccepted AckStatus = "accepted"
	AckRejected AckStatus = "rejected"
	AckPartial  AckStatus = "partial"
)

// PurchaseOrderAck is the normalized purchase order acknowledgment.
type PurchaseOrderAck struct {
	// ID is the seller-assigned acknowledgment number.
	ID string `json:"id"`
	// POID references the acknowledged purchase order.
	POID string `json:"poId"`
	// Buyer and Seller mirror the parties of the acknowledged PO.
	Buyer  Party `json:"buyer"`
	Seller Party `json:"seller"`
	// Status is the overall decision.
	Status AckStatus `json:"status"`
	// IssuedAt is the acknowledgment timestamp.
	IssuedAt time.Time `json:"issuedAt"`
	// Lines are the per-line decisions.
	Lines []AckLine `json:"lines"`
	// Note carries free-form remarks (e.g. rejection reason).
	Note string `json:"note,omitempty"`
}

// Validate reports all structural problems with the acknowledgment.
func (poa *PurchaseOrderAck) Validate() error {
	var problems []string
	if poa.ID == "" {
		problems = append(problems, "missing id")
	}
	if poa.POID == "" {
		problems = append(problems, "missing po reference")
	}
	switch poa.Status {
	case AckAccepted, AckRejected, AckPartial:
	default:
		problems = append(problems, fmt.Sprintf("invalid status %q", poa.Status))
	}
	for i, l := range poa.Lines {
		if l.Number <= 0 {
			problems = append(problems, fmt.Sprintf("line %d: non-positive line number", i))
		}
		switch l.Status {
		case LineAccepted, LineRejected, LineBackorder:
		default:
			problems = append(problems, fmt.Sprintf("line %d: invalid status %q", i, l.Status))
		}
		if l.Quantity < 0 {
			problems = append(problems, fmt.Sprintf("line %d: negative quantity", i))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("doc: invalid purchase order ack %q: %s", poa.ID, strings.Join(problems, "; "))
	}
	return nil
}

// Clone returns a deep copy of the acknowledgment.
func (poa *PurchaseOrderAck) Clone() *PurchaseOrderAck {
	cp := *poa
	cp.Lines = append([]AckLine(nil), poa.Lines...)
	return &cp
}

// ErrUnknownDocType is returned when a document of an unrecognized type is
// presented to a component that dispatches on document type.
var ErrUnknownDocType = errors.New("doc: unknown document type")

// FunctionalAck is the normalized protocol-level receipt acknowledgment
// (the X12 997 functional acknowledgment): it confirms that an interchange
// was received and syntactically accepted. It is public-process traffic
// only — the paper's Section 4.5: "the acknowledgments are not passed on
// to the private process".
type FunctionalAck struct {
	// ID is the acknowledgment's own document number.
	ID string `json:"id"`
	// RefControl is the control number of the acknowledged interchange.
	RefControl int `json:"refControl"`
	// RefGroupID is the functional group being acknowledged ("PO").
	RefGroupID string `json:"refGroupId"`
	// Accepted reports syntactic acceptance.
	Accepted bool `json:"accepted"`
	// Note carries rejection detail.
	Note string `json:"note,omitempty"`
}

// Validate reports structural problems with the acknowledgment.
func (fa *FunctionalAck) Validate() error {
	if fa.ID == "" {
		return fmt.Errorf("doc: functional ack missing id")
	}
	if fa.RefControl <= 0 {
		return fmt.Errorf("doc: functional ack %q missing referenced control number", fa.ID)
	}
	return nil
}

// TypeOf reports the normalized type of a document value.
func TypeOf(v any) (DocType, error) {
	switch v.(type) {
	case *PurchaseOrder:
		return TypePO, nil
	case *PurchaseOrderAck:
		return TypePOA, nil
	case *RequestForQuote:
		return TypeRFQ, nil
	case *Quote:
		return TypeQT, nil
	case *FunctionalAck:
		return TypeFA, nil
	case *Invoice:
		return TypeINV, nil
	}
	return "", fmt.Errorf("%w: %T", ErrUnknownDocType, v)
}
