package doc

import (
	"fmt"
	"strings"
	"time"
)

// RequestForQuote is the normalized RFQ document for the Section 2.3
// scenario: a buyer requests quotes from several suppliers; the rules by
// which the buyer selects among the returned quotes are competitive
// knowledge and must remain invisible to the suppliers.
type RequestForQuote struct {
	// ID is the buyer-assigned RFQ number.
	ID string `json:"id"`
	// Buyer issues the request; Suppliers are the invited parties.
	Buyer     Party   `json:"buyer"`
	Suppliers []Party `json:"suppliers"`
	// SKU and Quantity describe the requested item.
	SKU      string `json:"sku"`
	Quantity int    `json:"quantity"`
	// NeededBy is the requested delivery deadline.
	NeededBy time.Time `json:"neededBy"`
	// Currency for quoted prices.
	Currency string `json:"currency"`
}

// Validate reports structural problems with the RFQ.
func (r *RequestForQuote) Validate() error {
	var problems []string
	if r.ID == "" {
		problems = append(problems, "missing id")
	}
	if r.Buyer.ID == "" {
		problems = append(problems, "missing buyer")
	}
	if len(r.Suppliers) == 0 {
		problems = append(problems, "no suppliers")
	}
	if r.SKU == "" {
		problems = append(problems, "missing sku")
	}
	if r.Quantity <= 0 {
		problems = append(problems, "non-positive quantity")
	}
	if len(problems) > 0 {
		return fmt.Errorf("doc: invalid rfq %q: %s", r.ID, strings.Join(problems, "; "))
	}
	return nil
}

// Quote is a supplier's response to an RFQ.
type Quote struct {
	// ID is the supplier-assigned quote number.
	ID string `json:"id"`
	// RFQID references the request being answered.
	RFQID string `json:"rfqId"`
	// Supplier is the quoting party.
	Supplier Party `json:"supplier"`
	// UnitPrice quoted, in the RFQ currency.
	UnitPrice float64 `json:"unitPrice"`
	// LeadTimeDays is the promised delivery lead time.
	LeadTimeDays int `json:"leadTimeDays"`
	// ValidUntil bounds the offer.
	ValidUntil time.Time `json:"validUntil"`
}

// Validate reports structural problems with the quote.
func (q *Quote) Validate() error {
	var problems []string
	if q.ID == "" {
		problems = append(problems, "missing id")
	}
	if q.RFQID == "" {
		problems = append(problems, "missing rfq reference")
	}
	if q.Supplier.ID == "" {
		problems = append(problems, "missing supplier")
	}
	if q.UnitPrice < 0 {
		problems = append(problems, "negative unit price")
	}
	if q.LeadTimeDays < 0 {
		problems = append(problems, "negative lead time")
	}
	if len(problems) > 0 {
		return fmt.Errorf("doc: invalid quote %q: %s", q.ID, strings.Join(problems, "; "))
	}
	return nil
}
