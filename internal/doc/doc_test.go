package doc

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/expr"
)

func samplePO() *PurchaseOrder {
	return &PurchaseOrder{
		ID:       "PO-TP1-000001",
		Buyer:    Party{ID: "TP1", Name: "Acme Corp", DUNS: "123456789"},
		Seller:   Party{ID: "SELLER", Name: "Widget Inc", DUNS: "987654321"},
		Currency: "USD",
		IssuedAt: time.Date(2001, 9, 3, 9, 0, 0, 0, time.UTC),
		ShipTo:   "Acme Receiving Dock 1",
		Lines: []Line{
			{Number: 1, SKU: "LAP-100", Description: "Laptop", Quantity: 10, UnitPrice: 1450},
			{Number: 2, SKU: "MON-27", Description: "Monitor", Quantity: 20, UnitPrice: 480},
		},
	}
}

func TestPOAmount(t *testing.T) {
	po := samplePO()
	want := 10*1450.0 + 20*480.0
	if got := po.Amount(); got != want {
		t.Fatalf("Amount = %v, want %v", got, want)
	}
}

func TestPOAmountRounding(t *testing.T) {
	po := samplePO()
	po.Lines = []Line{{Number: 1, SKU: "X", Quantity: 3, UnitPrice: 0.1}}
	if got := po.Amount(); got != 0.3 {
		t.Fatalf("Amount = %v, want 0.3 (cent rounding)", got)
	}
}

func TestPOValidate(t *testing.T) {
	if err := samplePO().Validate(); err != nil {
		t.Fatalf("valid PO rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*PurchaseOrder)
		want   string
	}{
		{"missing id", func(p *PurchaseOrder) { p.ID = "" }, "missing id"},
		{"missing buyer", func(p *PurchaseOrder) { p.Buyer.ID = "" }, "missing buyer"},
		{"missing seller", func(p *PurchaseOrder) { p.Seller.ID = "" }, "missing seller"},
		{"missing currency", func(p *PurchaseOrder) { p.Currency = "" }, "missing currency"},
		{"no lines", func(p *PurchaseOrder) { p.Lines = nil }, "no line items"},
		{"zero qty", func(p *PurchaseOrder) { p.Lines[0].Quantity = 0 }, "non-positive quantity"},
		{"negative price", func(p *PurchaseOrder) { p.Lines[0].UnitPrice = -1 }, "negative unit price"},
		{"dup line number", func(p *PurchaseOrder) { p.Lines[1].Number = 1 }, "duplicate line number"},
		{"zero line number", func(p *PurchaseOrder) { p.Lines[0].Number = 0 }, "non-positive line number"},
		{"missing sku", func(p *PurchaseOrder) { p.Lines[0].SKU = "" }, "missing sku"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			po := samplePO()
			c.mutate(po)
			err := po.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestPOClone(t *testing.T) {
	po := samplePO()
	cp := po.Clone()
	cp.Lines[0].Quantity = 999
	cp.ID = "OTHER"
	if po.Lines[0].Quantity == 999 || po.ID == "OTHER" {
		t.Fatal("Clone shares state with original")
	}
}

func TestPOAValidate(t *testing.T) {
	poa := AckFor(samplePO(), "POA-1")
	if err := poa.Validate(); err != nil {
		t.Fatalf("valid POA rejected: %v", err)
	}
	poa.Status = "bogus"
	if err := poa.Validate(); err == nil || !strings.Contains(err.Error(), "invalid status") {
		t.Fatalf("expected invalid status error, got %v", err)
	}
	poa = AckFor(samplePO(), "POA-1")
	poa.POID = ""
	if err := poa.Validate(); err == nil || !strings.Contains(err.Error(), "missing po reference") {
		t.Fatalf("expected missing po reference, got %v", err)
	}
	poa = AckFor(samplePO(), "POA-1")
	poa.Lines[0].Status = "maybe"
	if err := poa.Validate(); err == nil {
		t.Fatal("expected line status error")
	}
}

func TestPOAClone(t *testing.T) {
	poa := AckFor(samplePO(), "POA-1")
	cp := poa.Clone()
	cp.Lines[0].Status = LineRejected
	if poa.Lines[0].Status == LineRejected {
		t.Fatal("Clone shares line state")
	}
}

func TestAckForMirrorsPO(t *testing.T) {
	po := samplePO()
	poa := AckFor(po, "POA-9")
	if poa.POID != po.ID {
		t.Fatalf("POID = %q, want %q", poa.POID, po.ID)
	}
	if len(poa.Lines) != len(po.Lines) {
		t.Fatalf("ack has %d lines, po has %d", len(poa.Lines), len(po.Lines))
	}
	for i := range poa.Lines {
		if poa.Lines[i].Number != po.Lines[i].Number {
			t.Fatalf("line %d number mismatch", i)
		}
		if poa.Lines[i].Quantity != po.Lines[i].Quantity {
			t.Fatalf("line %d quantity mismatch", i)
		}
		if poa.Lines[i].Status != LineAccepted {
			t.Fatalf("line %d not accepted", i)
		}
	}
	if poa.Status != AckAccepted {
		t.Fatalf("status = %q", poa.Status)
	}
}

func TestTypeOf(t *testing.T) {
	if ty, err := TypeOf(samplePO()); err != nil || ty != TypePO {
		t.Fatalf("TypeOf(PO) = %v, %v", ty, err)
	}
	if ty, err := TypeOf(AckFor(samplePO(), "A")); err != nil || ty != TypePOA {
		t.Fatalf("TypeOf(POA) = %v, %v", ty, err)
	}
	if ty, err := TypeOf(&RequestForQuote{}); err != nil || ty != TypeRFQ {
		t.Fatalf("TypeOf(RFQ) = %v, %v", ty, err)
	}
	if ty, err := TypeOf(&Quote{}); err != nil || ty != TypeQT {
		t.Fatalf("TypeOf(Quote) = %v, %v", ty, err)
	}
	if _, err := TypeOf(42); err == nil {
		t.Fatal("TypeOf(42) should fail")
	}
}

func TestEnvPO(t *testing.T) {
	po := samplePO()
	env, err := Env(po, "TP1", "SAP")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := expr.EvalBool(expr.MustParse(`document.amount >= 10000 && source == "TP1" && target == "SAP"`), env)
	if err != nil || !ok {
		t.Fatalf("paper condition on env failed: %v %v", ok, err)
	}
	ok, err = expr.EvalBool(expr.MustParse(`PO.amount > 10000`), env)
	if err != nil || !ok {
		t.Fatalf("PO.amount alias failed: %v %v", ok, err)
	}
}

func TestEnvPOA(t *testing.T) {
	poa := AckFor(samplePO(), "POA-1")
	env, err := Env(poa, "SELLER", "TP1")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := expr.EvalBool(expr.MustParse(`POA.status == "accepted"`), env)
	if err != nil || !ok {
		t.Fatalf("POA.status failed: %v %v", ok, err)
	}
}

func TestEnvRFQAndQuote(t *testing.T) {
	rfq := &RequestForQuote{ID: "RFQ-1", Buyer: Party{ID: "B"}, SKU: "LAP-100", Quantity: 5}
	env, err := Env(rfq, "B", "S")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := expr.EvalBool(expr.MustParse("RFQ.quantity == 5"), env); !ok {
		t.Fatal("RFQ env")
	}
	q := &Quote{ID: "Q-1", RFQID: "RFQ-1", Supplier: Party{ID: "S"}, UnitPrice: 99.5, LeadTimeDays: 4}
	env, err = Env(q, "S", "B")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := expr.EvalBool(expr.MustParse("Quote.unitPrice < 100 && Quote.leadTimeDays <= 4"), env); !ok {
		t.Fatal("Quote env")
	}
}

func TestEnvUnknown(t *testing.T) {
	if _, err := Env("nope", "a", "b"); err == nil {
		t.Fatal("expected error for unknown document type")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	b := Party{ID: "TP1", Name: "Acme"}
	s := Party{ID: "S", Name: "Widget"}
	g1, g2 := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 50; i++ {
		p1, p2 := g1.PO(b, s), g2.PO(b, s)
		if p1.ID != p2.ID || p1.Amount() != p2.Amount() || len(p1.Lines) != len(p2.Lines) {
			t.Fatalf("generator not deterministic at %d: %v vs %v", i, p1, p2)
		}
	}
}

func TestGeneratorValidity(t *testing.T) {
	g := NewGenerator(42)
	b := Party{ID: "TP1", Name: "Acme"}
	s := Party{ID: "S", Name: "Widget"}
	for i := 0; i < 200; i++ {
		po := g.PO(b, s)
		if err := po.Validate(); err != nil {
			t.Fatalf("generated PO invalid: %v", err)
		}
		if po.Amount() <= 0 {
			t.Fatalf("generated PO has non-positive amount")
		}
	}
}

func TestPOWithAmount(t *testing.T) {
	g := NewGenerator(1)
	b := Party{ID: "TP2", Name: "Beta"}
	s := Party{ID: "S", Name: "Widget"}
	for _, amt := range []float64{0.01, 39999.99, 40000, 55000, 550000.5} {
		po := g.POWithAmount(b, s, amt)
		if err := po.Validate(); err != nil {
			t.Fatalf("POWithAmount(%v) invalid: %v", amt, err)
		}
		if got := po.Amount(); got != amt {
			t.Fatalf("POWithAmount(%v).Amount() = %v", amt, got)
		}
	}
}

// TestQuickLineExtended property: Extended is always Quantity*UnitPrice and
// Amount is the rounded sum of Extended over lines.
func TestQuickLineExtended(t *testing.T) {
	f := func(qty uint8, priceCents uint32) bool {
		q := int(qty%50) + 1
		p := float64(priceCents%1000000) / 100
		l := Line{Number: 1, SKU: "X", Quantity: q, UnitPrice: p}
		return l.Extended() == float64(q)*p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGeneratedPOEnvTotal property: for any generated PO, the env's
// document.amount equals the PO's Amount.
func TestQuickGeneratedPOEnvTotal(t *testing.T) {
	g := NewGenerator(99)
	b := Party{ID: "TP1", Name: "Acme"}
	s := Party{ID: "S", Name: "Widget"}
	for i := 0; i < 300; i++ {
		po := g.PO(b, s)
		env, err := Env(po, "TP1", "SAP")
		if err != nil {
			t.Fatal(err)
		}
		v, _ := env.Lookup("document.amount")
		if v != po.Amount() {
			t.Fatalf("env amount %v != %v", v, po.Amount())
		}
	}
}

func TestRFQValidate(t *testing.T) {
	rfq := &RequestForQuote{
		ID: "RFQ-1", Buyer: Party{ID: "B"},
		Suppliers: []Party{{ID: "S1"}, {ID: "S2"}},
		SKU:       "LAP-100", Quantity: 10, Currency: "USD",
	}
	if err := rfq.Validate(); err != nil {
		t.Fatalf("valid RFQ rejected: %v", err)
	}
	rfq.Quantity = 0
	if err := rfq.Validate(); err == nil {
		t.Fatal("expected quantity error")
	}
	rfq2 := &RequestForQuote{ID: "", Buyer: Party{}, SKU: "", Quantity: 1}
	if err := rfq2.Validate(); err == nil {
		t.Fatal("expected multiple errors")
	}
}

func TestQuoteValidate(t *testing.T) {
	q := &Quote{ID: "Q1", RFQID: "RFQ-1", Supplier: Party{ID: "S1"}, UnitPrice: 10, LeadTimeDays: 3}
	if err := q.Validate(); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	q.UnitPrice = -1
	if err := q.Validate(); err == nil {
		t.Fatal("expected negative price error")
	}
	q2 := &Quote{}
	if err := q2.Validate(); err == nil {
		t.Fatal("expected errors for empty quote")
	}
}
