package doc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/expr"
)

func sampleInvoice() *Invoice {
	return &Invoice{
		ID:       "INV-1",
		POID:     "PO-TP1-000001",
		Buyer:    Party{ID: "TP1", Name: "Acme"},
		Seller:   Party{ID: "HUB", Name: "Widget"},
		Currency: "USD",
		IssuedAt: time.Date(2001, 9, 12, 0, 0, 0, 0, time.UTC),
		DueAt:    time.Date(2001, 10, 12, 0, 0, 0, 0, time.UTC),
		Lines: []InvoiceLine{
			{Number: 1, SKU: "LAP-100", Quantity: 10, UnitPrice: 1450},
			{Number: 2, SKU: "MON-27", Quantity: 3, UnitPrice: 0.1},
		},
	}
}

func TestInvoiceAmount(t *testing.T) {
	inv := sampleInvoice()
	if got := inv.Amount(); got != 14500.3 {
		t.Fatalf("amount %v", got)
	}
}

func TestInvoiceValidate(t *testing.T) {
	if err := sampleInvoice().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Invoice)
		want   string
	}{
		{"no id", func(i *Invoice) { i.ID = "" }, "missing id"},
		{"no po", func(i *Invoice) { i.POID = "" }, "missing po reference"},
		{"no buyer", func(i *Invoice) { i.Buyer.ID = "" }, "missing buyer"},
		{"no seller", func(i *Invoice) { i.Seller.ID = "" }, "missing seller"},
		{"no currency", func(i *Invoice) { i.Currency = "" }, "missing currency"},
		{"no lines", func(i *Invoice) { i.Lines = nil }, "no line items"},
		{"dup line", func(i *Invoice) { i.Lines[1].Number = 1 }, "duplicate line"},
		{"zero qty", func(i *Invoice) { i.Lines[0].Quantity = 0 }, "non-positive quantity"},
		{"neg price", func(i *Invoice) { i.Lines[0].UnitPrice = -1 }, "negative unit price"},
		{"no sku", func(i *Invoice) { i.Lines[0].SKU = "" }, "missing sku"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			inv := sampleInvoice()
			c.mutate(inv)
			err := inv.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err %v, want %q", err, c.want)
			}
		})
	}
}

func TestInvoiceClone(t *testing.T) {
	inv := sampleInvoice()
	cp := inv.Clone()
	cp.Lines[0].Quantity = 99
	if inv.Lines[0].Quantity == 99 {
		t.Fatal("Clone shares lines")
	}
}

func TestInvoiceForBillsConfirmedQuantities(t *testing.T) {
	po := samplePO()
	ack := AckFor(po, "ACK-1")
	ack.Lines[1].Status = LineBackorder
	ack.Lines[1].Quantity = 5 // of 20 ordered
	inv, err := InvoiceFor(po, ack, "INV-9")
	if err != nil {
		t.Fatal(err)
	}
	if inv.POID != po.ID || len(inv.Lines) != 2 {
		t.Fatalf("%+v", inv)
	}
	if inv.Lines[0].Quantity != po.Lines[0].Quantity {
		t.Fatalf("line 1 qty %d", inv.Lines[0].Quantity)
	}
	if inv.Lines[1].Quantity != 5 {
		t.Fatalf("line 2 qty %d, want confirmed 5", inv.Lines[1].Quantity)
	}
	// Rejected lines are not billed.
	ack2 := AckFor(po, "ACK-2")
	for i := range ack2.Lines {
		ack2.Lines[i].Status = LineRejected
		ack2.Lines[i].Quantity = 0
	}
	if _, err := InvoiceFor(po, ack2, "INV-10"); err == nil {
		t.Fatal("fully rejected order billed")
	}
	// Mismatched ack rejected.
	other := AckFor(po, "ACK-3")
	other.POID = "OTHER"
	if _, err := InvoiceFor(po, other, "INV-11"); err == nil {
		t.Fatal("mismatched ack accepted")
	}
}

func TestInvoiceForWithoutAck(t *testing.T) {
	po := samplePO()
	inv, err := InvoiceFor(po, nil, "INV-12")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Amount() != po.Amount() {
		t.Fatalf("amount %v != %v", inv.Amount(), po.Amount())
	}
}

func TestInvoiceEnv(t *testing.T) {
	inv := sampleInvoice()
	env, err := Env(inv, "TP1", "SAP")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := expr.EvalBool(expr.MustParse("Invoice.amount >= 10000 && document.poId == \"PO-TP1-000001\""), env)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if ty, err := TypeOf(inv); err != nil || ty != TypeINV {
		t.Fatalf("TypeOf %v %v", ty, err)
	}
}
