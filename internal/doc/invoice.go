package doc

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// TypeINV is the normalized invoice document type. Invoices travel as
// one-way messages (the paper's "one-way messages" pattern): the seller
// sends them after fulfilling an order; no business response is expected.
const TypeINV DocType = "Invoice"

// InvoiceLine is one billed line of an invoice.
type InvoiceLine struct {
	// Number is the 1-based line number (mirrors the PO line billed).
	Number int `json:"number"`
	// SKU is the billed part identifier.
	SKU string `json:"sku"`
	// Description is free text.
	Description string `json:"description,omitempty"`
	// Quantity billed.
	Quantity int `json:"quantity"`
	// UnitPrice in the invoice currency.
	UnitPrice float64 `json:"unitPrice"`
}

// Extended returns the line's extended amount.
func (l InvoiceLine) Extended() float64 { return float64(l.Quantity) * l.UnitPrice }

// Invoice is the normalized invoice.
type Invoice struct {
	// ID is the seller-assigned invoice number.
	ID string `json:"id"`
	// POID references the invoiced purchase order.
	POID string `json:"poId"`
	// Buyer and Seller mirror the order's parties.
	Buyer  Party `json:"buyer"`
	Seller Party `json:"seller"`
	// Currency is the ISO 4217 code.
	Currency string `json:"currency"`
	// IssuedAt and DueAt bound the payment terms.
	IssuedAt time.Time `json:"issuedAt"`
	DueAt    time.Time `json:"dueAt"`
	// Lines are the billed lines; at least one is required.
	Lines []InvoiceLine `json:"lines"`
	// Note carries free-form remarks.
	Note string `json:"note,omitempty"`
}

// Amount returns the invoice total, rounded to cents.
func (inv *Invoice) Amount() float64 {
	var sum float64
	for _, l := range inv.Lines {
		sum += l.Extended()
	}
	return math.Round(sum*100) / 100
}

// Validate reports all structural problems with the invoice.
func (inv *Invoice) Validate() error {
	var problems []string
	if inv.ID == "" {
		problems = append(problems, "missing id")
	}
	if inv.POID == "" {
		problems = append(problems, "missing po reference")
	}
	if inv.Buyer.ID == "" {
		problems = append(problems, "missing buyer id")
	}
	if inv.Seller.ID == "" {
		problems = append(problems, "missing seller id")
	}
	if inv.Currency == "" {
		problems = append(problems, "missing currency")
	}
	if len(inv.Lines) == 0 {
		problems = append(problems, "no line items")
	}
	seen := map[int]bool{}
	for i, l := range inv.Lines {
		if l.Number <= 0 {
			problems = append(problems, fmt.Sprintf("line %d: non-positive line number", i))
		}
		if seen[l.Number] {
			problems = append(problems, fmt.Sprintf("line %d: duplicate line number %d", i, l.Number))
		}
		seen[l.Number] = true
		if l.SKU == "" {
			problems = append(problems, fmt.Sprintf("line %d: missing sku", i))
		}
		if l.Quantity <= 0 {
			problems = append(problems, fmt.Sprintf("line %d: non-positive quantity", i))
		}
		if l.UnitPrice < 0 {
			problems = append(problems, fmt.Sprintf("line %d: negative unit price", i))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("doc: invalid invoice %q: %s", inv.ID, strings.Join(problems, "; "))
	}
	return nil
}

// Clone returns a deep copy of the invoice.
func (inv *Invoice) Clone() *Invoice {
	cp := *inv
	cp.Lines = append([]InvoiceLine(nil), inv.Lines...)
	return &cp
}

// InvoiceFor builds an invoice billing the accepted quantities of an
// acknowledged order: what the simulated back ends emit after fulfilling.
func InvoiceFor(po *PurchaseOrder, ack *PurchaseOrderAck, invID string) (*Invoice, error) {
	if ack != nil && ack.POID != po.ID {
		return nil, fmt.Errorf("doc: ack %s references %s, not %s", ack.ID, ack.POID, po.ID)
	}
	inv := &Invoice{
		ID:       invID,
		POID:     po.ID,
		Buyer:    po.Buyer,
		Seller:   po.Seller,
		Currency: po.Currency,
		IssuedAt: po.IssuedAt.Add(9 * 24 * time.Hour),
		DueAt:    po.IssuedAt.Add(39 * 24 * time.Hour),
	}
	billed := map[int]int{}
	if ack != nil {
		for _, al := range ack.Lines {
			if al.Status != LineRejected {
				billed[al.Number] = al.Quantity
			}
		}
	}
	for _, l := range po.Lines {
		qty := l.Quantity
		if ack != nil {
			qty = billed[l.Number]
		}
		if qty <= 0 {
			continue
		}
		inv.Lines = append(inv.Lines, InvoiceLine{
			Number:      l.Number,
			SKU:         l.SKU,
			Description: l.Description,
			Quantity:    qty,
			UnitPrice:   l.UnitPrice,
		})
	}
	if len(inv.Lines) == 0 {
		return nil, fmt.Errorf("doc: order %s has no billable lines", po.ID)
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return inv, nil
}
