package doc

import (
	"fmt"

	"repro/internal/expr"
)

// Env builds the expression-language environment for a normalized document,
// exposing its fields under the "document." prefix plus the aliases used in
// the paper's figures ("PO.amount", "POA.status"). The source and target
// parameters are the trading partner / application identifiers that the
// generic rule-binding workflow step passes alongside the document
// (Section 4.3: "The data given to business rules usually includes source,
// target as well as the message itself").
func Env(document any, source, target string) (expr.MapEnv, error) {
	env := expr.MapEnv{
		"source": source,
		"target": target,
	}
	switch d := document.(type) {
	case *PurchaseOrder:
		env["document.type"] = string(TypePO)
		env["document.id"] = d.ID
		env["document.amount"] = d.Amount()
		env["document.currency"] = d.Currency
		env["document.buyer"] = d.Buyer.ID
		env["document.seller"] = d.Seller.ID
		env["document.lines"] = float64(len(d.Lines))
		env["document.shipTo"] = d.ShipTo
		// Paper-style aliases as written in Figures 1-3 and 9-10.
		env["PO.amount"] = d.Amount()
		env["PO.id"] = d.ID
	case *PurchaseOrderAck:
		env["document.type"] = string(TypePOA)
		env["document.id"] = d.ID
		env["document.poId"] = d.POID
		env["document.status"] = string(d.Status)
		env["document.buyer"] = d.Buyer.ID
		env["document.seller"] = d.Seller.ID
		env["document.lines"] = float64(len(d.Lines))
		env["POA.status"] = string(d.Status)
		env["POA.id"] = d.ID
	case *RequestForQuote:
		env["document.type"] = string(TypeRFQ)
		env["document.id"] = d.ID
		env["document.sku"] = d.SKU
		env["document.quantity"] = float64(d.Quantity)
		env["document.buyer"] = d.Buyer.ID
		env["RFQ.quantity"] = float64(d.Quantity)
	case *Invoice:
		env["document.type"] = string(TypeINV)
		env["document.id"] = d.ID
		env["document.poId"] = d.POID
		env["document.amount"] = d.Amount()
		env["document.currency"] = d.Currency
		env["document.buyer"] = d.Buyer.ID
		env["document.seller"] = d.Seller.ID
		env["document.lines"] = float64(len(d.Lines))
		env["Invoice.amount"] = d.Amount()
		env["Invoice.id"] = d.ID
	case *Quote:
		env["document.type"] = string(TypeQT)
		env["document.id"] = d.ID
		env["document.rfqId"] = d.RFQID
		env["document.unitPrice"] = d.UnitPrice
		env["document.leadTimeDays"] = float64(d.LeadTimeDays)
		env["document.supplier"] = d.Supplier.ID
		env["Quote.unitPrice"] = d.UnitPrice
		env["Quote.leadTimeDays"] = float64(d.LeadTimeDays)
	default:
		return nil, fmt.Errorf("doc: cannot build rule environment: %w: %T", ErrUnknownDocType, document)
	}
	return env, nil
}
