package doc

import (
	"fmt"
	"math/rand"
	"time"
)

// Generator produces deterministic synthetic purchase orders for workloads
// and property tests. The same seed always yields the same sequence, which
// keeps benchmarks reproducible.
type Generator struct {
	rng *rand.Rand
	seq int
}

// NewGenerator returns a generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

var skuCatalog = []struct {
	sku, desc string
	price     float64
}{
	{"LAP-100", "Laptop 14in 16GB", 1450.00},
	{"LAP-200", "Laptop 16in 32GB", 2450.00},
	{"MON-27", "Monitor 27in 4K", 480.00},
	{"DOC-01", "Docking station", 210.00},
	{"KBD-US", "Keyboard US layout", 45.50},
	{"MSE-BT", "Mouse bluetooth", 29.99},
	{"HDS-NC", "Headset noise cancelling", 199.00},
	{"CAB-UC", "Cable USB-C 2m", 12.75},
	{"SSD-1T", "SSD 1TB NVMe", 119.00},
	{"RAM-32", "RAM 32GB DDR5", 145.00},
}

// baseTime anchors all generated timestamps so runs are reproducible.
var baseTime = time.Date(2001, time.September, 3, 9, 0, 0, 0, time.UTC)

// PO generates the next purchase order between buyer and seller with 1-6
// random catalog lines.
func (g *Generator) PO(buyer, seller Party) *PurchaseOrder {
	g.seq++
	nLines := 1 + g.rng.Intn(6)
	lines := make([]Line, nLines)
	for i := range lines {
		item := skuCatalog[g.rng.Intn(len(skuCatalog))]
		lines[i] = Line{
			Number:      i + 1,
			SKU:         item.sku,
			Description: item.desc,
			Quantity:    1 + g.rng.Intn(40),
			UnitPrice:   item.price,
		}
	}
	return &PurchaseOrder{
		ID:       fmt.Sprintf("PO-%s-%06d", buyer.ID, g.seq),
		Buyer:    buyer,
		Seller:   seller,
		Currency: "USD",
		IssuedAt: baseTime.Add(time.Duration(g.seq) * time.Minute),
		ShipTo:   fmt.Sprintf("%s Receiving Dock %d", buyer.Name, 1+g.rng.Intn(9)),
		Lines:    lines,
	}
}

// POWithAmount generates a single-line purchase order whose total is exactly
// amount, used to hit business-rule thresholds precisely.
func (g *Generator) POWithAmount(buyer, seller Party, amount float64) *PurchaseOrder {
	g.seq++
	return &PurchaseOrder{
		ID:       fmt.Sprintf("PO-%s-%06d", buyer.ID, g.seq),
		Buyer:    buyer,
		Seller:   seller,
		Currency: "USD",
		IssuedAt: baseTime.Add(time.Duration(g.seq) * time.Minute),
		ShipTo:   buyer.Name + " Receiving Dock 1",
		Lines: []Line{{
			Number:      1,
			SKU:         "LOT-001",
			Description: "Fixed amount lot",
			Quantity:    1,
			UnitPrice:   amount,
		}},
	}
}

// Invoice generates the next invoice from seller to buyer with 1-6 random
// catalog lines. Prices stay at two decimals so cent-based wire formats
// (the EDI 810 TDS total) represent them exactly. Roughly a third of the
// invoices omit the due date and another third carry a payment note,
// exercising the optional-field paths of every format mapping.
func (g *Generator) Invoice(buyer, seller Party) *Invoice {
	g.seq++
	nLines := 1 + g.rng.Intn(6)
	lines := make([]InvoiceLine, nLines)
	for i := range lines {
		item := skuCatalog[g.rng.Intn(len(skuCatalog))]
		lines[i] = InvoiceLine{
			Number:      i + 1,
			SKU:         item.sku,
			Description: item.desc,
			Quantity:    1 + g.rng.Intn(40),
			UnitPrice:   item.price,
		}
	}
	inv := &Invoice{
		ID:       fmt.Sprintf("INV-%s-%06d", seller.ID, g.seq),
		POID:     fmt.Sprintf("PO-%s-%06d", buyer.ID, g.seq),
		Buyer:    buyer,
		Seller:   seller,
		Currency: "USD",
		IssuedAt: baseTime.Add(time.Duration(g.seq) * time.Minute),
		Lines:    lines,
	}
	switch g.rng.Intn(3) {
	case 0:
		inv.DueAt = inv.IssuedAt.Add(30 * 24 * time.Hour)
	case 1:
		inv.DueAt = inv.IssuedAt.Add(30 * 24 * time.Hour)
		inv.Note = "net 30"
	}
	return inv
}

// AckFor builds a fully-accepting acknowledgment for po, as the simulated
// back ends produce after storing a PO.
func AckFor(po *PurchaseOrder, ackID string) *PurchaseOrderAck {
	lines := make([]AckLine, len(po.Lines))
	for i, l := range po.Lines {
		lines[i] = AckLine{
			Number:   l.Number,
			Status:   LineAccepted,
			Quantity: l.Quantity,
			ShipDate: po.IssuedAt.Add(7 * 24 * time.Hour),
		}
	}
	return &PurchaseOrderAck{
		ID:       ackID,
		POID:     po.ID,
		Buyer:    po.Buyer,
		Seller:   po.Seller,
		Status:   AckAccepted,
		IssuedAt: po.IssuedAt.Add(2 * time.Hour),
		Lines:    lines,
	}
}
