package coop

import (
	"context"
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/msg"
	"repro/internal/transform"
	"repro/internal/wf"
	"repro/internal/wfstore"
)

// Figure8Pair is the runnable cooperative-workflow deployment of Figure 8:
// a buyer enterprise and a seller enterprise, each with its own local
// workflow engine and workflow types, linked only by business messages over
// the (reliable) network. No workflow type or instance state crosses the
// boundary — only documents do.
type Figure8Pair struct {
	Buyer  *wf.Engine
	Seller *ReceiverScenario

	buyerRel  *msg.Reliable
	sellerRel *msg.Reliable
	network   *msg.InProcNetwork
	reg       *transform.Registry
	codecs    *formats.Registry
	protocol  formats.Format
}

// NewFigure8Pair wires the pair over an in-process network with the given
// fault schedule, using EDI as the exchanged protocol and SAP as the
// seller's back end (the Figure 1 configuration).
func NewFigure8Pair(faults msg.Faults, rcfg msg.ReliableConfig) (*Figure8Pair, error) {
	pop := Population{
		Partners: []Partner{{
			ID: "TP1", Name: "Trading Partner 1", Protocol: formats.EDI,
			ApprovalThreshold: 550000, Backend: "SAP",
		}},
		Backends: []BackendDef{{Name: "SAP", Format: formats.SAPIDoc}},
	}
	seller, err := NewReceiverScenario(pop)
	if err != nil {
		return nil, err
	}

	network := msg.NewInProcNetwork(faults)
	be, err := network.Endpoint("buyer")
	if err != nil {
		return nil, err
	}
	se, err := network.Endpoint("seller")
	if err != nil {
		return nil, err
	}
	pair := &Figure8Pair{
		Seller:    seller,
		buyerRel:  msg.NewReliable(be, rcfg),
		sellerRel: msg.NewReliable(se, rcfg),
		network:   network,
		reg:       &transform.Registry{},
		codecs:    NewCodecRegistry(),
		protocol:  formats.EDI,
	}
	transform.RegisterAll(pair.reg)

	// Buyer engine: handlers for its local workflow, ports that encode the
	// native document and send it reliably to the seller.
	h := wf.NewHandlers()
	h.Register("buyer-extract", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		if _, ok := in.Data["document"].(*doc.PurchaseOrder); !ok {
			return fmt.Errorf("coop: buyer-extract expects a normalized PO in instance data")
		}
		return nil
	})
	h.Register("buyer-xform-po:"+string(formats.EDI), func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		native, err := pair.reg.FromNormalized(formats.EDI, doc.TypePO, in.Document())
		if err != nil {
			return err
		}
		in.SetDocument(native)
		return nil
	})
	h.Register("buyer-xform-poa:"+string(formats.EDI), func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		nd, err := pair.reg.ToNormalized(formats.EDI, doc.TypePOA, in.Document())
		if err != nil {
			return err
		}
		in.SetDocument(nd)
		return nil
	})
	h.Register("buyer-store", func(ctx context.Context, in *wf.Instance, s *wf.StepDef) error {
		in.Data["storedPOA"] = in.Document()
		return nil
	})
	buyerPorts := func(ctx context.Context, in *wf.Instance, s *wf.StepDef, payload any) error {
		codec, err := pair.codecs.Lookup(formats.EDI, doc.TypePO)
		if err != nil {
			return err
		}
		wire, err := codec.Encode(payload)
		if err != nil {
			return err
		}
		return pair.buyerRel.Send(ctx, "seller", &msg.Message{
			Protocol: string(formats.EDI), DocType: string(doc.TypePO), Body: wire,
		})
	}
	pair.Buyer = wf.NewEngine("buyer", wfstore.NewMemStore(), h, buyerPorts)
	buyerType, err := BuildBuyerType("coop-buyer", formats.EDI)
	if err != nil {
		return nil, err
	}
	if err := pair.Buyer.Deploy(buyerType); err != nil {
		return nil, err
	}
	return pair, nil
}

// Close releases the network resources.
func (p *Figure8Pair) Close() {
	p.buyerRel.Close()
	p.sellerRel.Close()
	p.network.Close()
}

// RoundTrip drives one PO/POA exchange end to end across the two
// enterprises and returns the POA the buyer stored.
func (p *Figure8Pair) RoundTrip(ctx context.Context, po *doc.PurchaseOrder) (*doc.PurchaseOrderAck, error) {
	// Buyer side: extract → transform → send, then park on Receive POA.
	bi, err := p.Buyer.Start(ctx, "coop-buyer", map[string]any{"document": po})
	if err != nil {
		return nil, err
	}
	if bi.State != wf.InstRunning {
		return nil, fmt.Errorf("coop: buyer instance should be waiting for the POA, is %s", bi.State)
	}

	// Seller side: receive the wire PO, decode, run the receiver workflow.
	m, err := p.sellerRel.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("coop: seller receive: %w", err)
	}
	poCodec, err := p.codecs.Lookup(p.protocol, doc.TypePO)
	if err != nil {
		return nil, err
	}
	native, err := poCodec.Decode(m.Body)
	if err != nil {
		return nil, err
	}
	si, err := p.Seller.Engine.Start(ctx, p.Seller.Type.Name, nil)
	if err != nil {
		return nil, err
	}
	if err := p.Seller.Engine.Deliver(ctx, si.ID, inPort(p.protocol), native); err != nil {
		return nil, err
	}
	poaNative, ok := p.Seller.takeOutbox(outPort(p.protocol))
	if !ok {
		return nil, fmt.Errorf("coop: seller produced no POA")
	}
	poaCodec, err := p.codecs.Lookup(p.protocol, doc.TypePOA)
	if err != nil {
		return nil, err
	}
	poaWire, err := poaCodec.Encode(poaNative)
	if err != nil {
		return nil, err
	}
	if err := p.sellerRel.Send(ctx, "buyer", &msg.Message{
		Protocol: string(p.protocol), DocType: string(doc.TypePOA), Body: poaWire,
	}); err != nil {
		return nil, err
	}

	// Buyer side: receive the POA wire and resume the parked instance.
	rm, err := p.buyerRel.Recv(ctx)
	if err != nil {
		return nil, fmt.Errorf("coop: buyer receive: %w", err)
	}
	nativePOA, err := poaCodec.Decode(rm.Body)
	if err != nil {
		return nil, err
	}
	if err := p.Buyer.Deliver(ctx, bi.ID, inPort(p.protocol), nativePOA); err != nil {
		return nil, err
	}
	done, err := p.Buyer.Instance(bi.ID)
	if err != nil {
		return nil, err
	}
	if done.State != wf.InstCompleted {
		return nil, fmt.Errorf("coop: buyer instance ended %s: %s", done.State, done.Error)
	}
	poa, ok := done.Data["storedPOA"].(*doc.PurchaseOrderAck)
	if !ok {
		return nil, fmt.Errorf("coop: buyer stored %T, want *doc.PurchaseOrderAck", done.Data["storedPOA"])
	}
	return poa, nil
}

// MessagingStats exposes the reliable-layer counters of both sides.
func (p *Figure8Pair) MessagingStats() (buyer, seller msg.ReliableStats) {
	return p.buyerRel.Stats(), p.sellerRel.Stats()
}
