package coop

import (
	"fmt"
	"strings"

	"repro/internal/formats"
	"repro/internal/wf"
)

// Port names of the generated types.
func inPort(p formats.Format) string  { return "in:" + string(p) }
func outPort(p formats.Format) string { return "out:" + string(p) }

// approvalCondition builds the Figure 9/10 conditional expression for one
// back end: the disjunction of every partner's threshold clause. This is
// where trading-partner business rules leak into workflow types in the
// naive approach — the condition grows with every partner, and (as in the
// paper's figure, where the same "≥55000 AND TP1 OR ≥40000 AND TP2"
// expression appears in every block) it is duplicated into every protocol
// branch that can reach the back end.
func approvalCondition(pop Population, backend string) string {
	var clauses []string
	for _, tp := range pop.Partners {
		if tp.Backend != backend {
			continue
		}
		clauses = append(clauses, fmt.Sprintf("(source == %q && amount >= %v)", tp.ID, tp.ApprovalThreshold))
	}
	if len(clauses) == 0 {
		return "false"
	}
	return strings.Join(clauses, " || ")
}

// BuildReceiverType generates the receiving enterprise's monolithic
// workflow type of Figures 9/10 for the population: per protocol a receive
// and route entry, per protocol × back end a PO transformation, per back
// end store/approve/extract with partner-specific approval conditions, per
// back end × protocol a POA transformation, and per protocol a send.
//
// The type executes on the workflow engine against the handlers registered
// by NewReceiverScenario. Handler names are parameterized by protocol and
// back end precisely because the naive approach forces that duplication.
func BuildReceiverType(name string, pop Population) (*wf.TypeDef, error) {
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	t := &wf.TypeDef{Name: name, Version: 1}
	add := func(s wf.StepDef) { t.Steps = append(t.Steps, s) }
	arc := func(a wf.Arc) { t.Arcs = append(t.Arcs, a) }

	protocols := pop.Protocols()

	// As in Figure 9, every protocol entry duplicates the complete back-end
	// block: transform, store, approve (with the full partner-threshold
	// disjunction), extract and the POA transformation back.
	for _, p := range protocols {
		recv := fmt.Sprintf("Receive %s PO", p)
		route := fmt.Sprintf("Target %s", p)
		send := fmt.Sprintf("Send %s POA", p)
		add(wf.StepDef{Name: recv, Kind: wf.StepReceive, Port: inPort(p), DataKey: "document"})
		add(wf.StepDef{Name: route, Kind: wf.StepTask, Handler: "route:" + string(p)})
		add(wf.StepDef{Name: send, Kind: wf.StepSend, Port: outPort(p), Join: wf.JoinAny})
		arc(wf.Arc{From: recv, To: route})

		for _, b := range pop.Backends {
			xform := fmt.Sprintf("Transform %s to %s PO", p, b.Name)
			store := fmt.Sprintf("Store %s PO (%s)", b.Name, p)
			approve := fmt.Sprintf("Approve %s PO (%s)", b.Name, p)
			extract := fmt.Sprintf("Extract %s POA (%s)", b.Name, p)
			xformBack := fmt.Sprintf("Transform %s to %s POA", b.Name, p)
			add(wf.StepDef{
				Name: xform, Kind: wf.StepTask, Role: wf.RoleTransform,
				Handler: fmt.Sprintf("xform-po:%s:%s", p, b.Format),
			})
			add(wf.StepDef{Name: store, Kind: wf.StepTask, Handler: "store:" + b.Name})
			add(wf.StepDef{Name: approve, Kind: wf.StepTask, Handler: "approve"})
			add(wf.StepDef{Name: extract, Kind: wf.StepTask, Handler: "extract:" + b.Name, Join: wf.JoinAny})
			add(wf.StepDef{
				Name: xformBack, Kind: wf.StepTask, Role: wf.RoleTransform,
				Handler: fmt.Sprintf("xform-poa:%s:%s", b.Format, p),
			})
			arc(wf.Arc{From: route, To: xform, Condition: fmt.Sprintf("target == %q", b.Name)})
			arc(wf.Arc{From: xform, To: store})
			cond := approvalCondition(pop, b.Name)
			arc(wf.Arc{From: store, To: approve, Condition: cond})
			arc(wf.Arc{From: store, To: extract, Condition: "!(" + cond + ")"})
			arc(wf.Arc{From: approve, To: extract})
			arc(wf.Arc{From: extract, To: xformBack})
			arc(wf.Arc{From: xformBack, To: send})
		}
	}

	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildBuyerType generates the sending enterprise's cooperative workflow of
// Figure 8 (left side) for one protocol: extract, transform, send, then
// receive the POA, transform and store. The explicit send→receive control
// dependency the paper discusses is the arc between "Send PO" and
// "Receive POA".
func BuildBuyerType(name string, protocol formats.Format) (*wf.TypeDef, error) {
	t := &wf.TypeDef{
		Name: name, Version: 1,
		Steps: []wf.StepDef{
			{Name: "Extract PO", Kind: wf.StepTask, Handler: "buyer-extract"},
			{Name: fmt.Sprintf("Transform PO to %s", protocol), Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "buyer-xform-po:" + string(protocol)},
			{Name: "Send PO", Kind: wf.StepSend, Port: outPort(protocol)},
			{Name: "Receive POA", Kind: wf.StepReceive, Port: inPort(protocol), DataKey: "document"},
			{Name: fmt.Sprintf("Transform POA from %s", protocol), Kind: wf.StepTask, Role: wf.RoleTransform, Handler: "buyer-xform-poa:" + string(protocol)},
			{Name: "Store POA", Kind: wf.StepTask, Handler: "buyer-store"},
		},
		Arcs: []wf.Arc{
			{From: "Extract PO", To: fmt.Sprintf("Transform PO to %s", protocol)},
			{From: fmt.Sprintf("Transform PO to %s", protocol), To: "Send PO"},
			// The control dependency introduced by the split (Section 3):
			// the receive may only start after the send.
			{From: "Send PO", To: "Receive POA"},
			{From: "Receive POA", To: fmt.Sprintf("Transform POA from %s", protocol)},
			{From: fmt.Sprintf("Transform POA from %s", protocol), To: "Store POA"},
		},
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
