// Package coop implements the paper's Section 3 baseline: cooperative
// inter-organizational workflow management, the "naive" approach in which
// each enterprise runs local workflows that encode message exchanges,
// transformations and trading-partner business rules directly in the
// workflow types.
//
// The package provides a model generator that builds the monolithic
// workflow types of Figures 8–10 for any population of trading partners,
// B2B protocols and back-end applications — both to execute them on the
// workflow engine (they do work, as the paper concedes: "trying to model
// the complete integration in a workflow is possible") and to measure how
// their size and change cost explode as the population grows.
package coop

import (
	"fmt"
	"sort"

	"repro/internal/formats"
)

// Partner is a trading partner in the naive model: its B2B protocol, its
// approval threshold (the partner-specific business rule that ends up
// inside workflow conditions) and the back end its orders are stored in.
type Partner struct {
	// ID is the partner identifier ("TP1").
	ID string
	// Name is the display name.
	Name string
	// Protocol is the B2B protocol this partner exchanges documents in.
	Protocol formats.Format
	// ApprovalThreshold is the amount at or above which this partner's
	// orders need approval.
	ApprovalThreshold float64
	// Backend names the back-end application this partner's orders target.
	Backend string
}

// BackendDef is a back-end application in the naive model.
type BackendDef struct {
	// Name identifies the system ("SAP", "Oracle").
	Name string
	// Format is its native document format.
	Format formats.Format
}

// Population is the integration population the model is generated for.
type Population struct {
	Partners []Partner
	Backends []BackendDef
}

// Validate checks referential integrity of the population.
func (p Population) Validate() error {
	if len(p.Partners) == 0 {
		return fmt.Errorf("coop: population has no partners")
	}
	if len(p.Backends) == 0 {
		return fmt.Errorf("coop: population has no backends")
	}
	byName := map[string]bool{}
	for _, b := range p.Backends {
		if b.Name == "" || b.Format == "" {
			return fmt.Errorf("coop: backend %+v incomplete", b)
		}
		if byName[b.Name] {
			return fmt.Errorf("coop: duplicate backend %q", b.Name)
		}
		byName[b.Name] = true
	}
	seen := map[string]bool{}
	for _, tp := range p.Partners {
		if tp.ID == "" || tp.Protocol == "" {
			return fmt.Errorf("coop: partner %+v incomplete", tp)
		}
		if seen[tp.ID] {
			return fmt.Errorf("coop: duplicate partner %q", tp.ID)
		}
		seen[tp.ID] = true
		if !byName[tp.Backend] {
			return fmt.Errorf("coop: partner %q references unknown backend %q", tp.ID, tp.Backend)
		}
	}
	return nil
}

// Protocols lists the distinct B2B protocols of the population, sorted.
func (p Population) Protocols() []formats.Format {
	seen := map[formats.Format]bool{}
	var out []formats.Format
	for _, tp := range p.Partners {
		if !seen[tp.Protocol] {
			seen[tp.Protocol] = true
			out = append(out, tp.Protocol)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PartnerByID finds a partner.
func (p Population) PartnerByID(id string) (Partner, bool) {
	for _, tp := range p.Partners {
		if tp.ID == id {
			return tp, true
		}
	}
	return Partner{}, false
}

// BackendByName finds a backend definition.
func (p Population) BackendByName(name string) (BackendDef, bool) {
	for _, b := range p.Backends {
		if b.Name == name {
			return b, true
		}
	}
	return BackendDef{}, false
}

// PaperFigure9 is the population of Figure 9: two protocols (EDI,
// RosettaNet), two partners (TP1 at 55000, TP2 at 40000) and two back ends
// (SAP, Oracle).
func PaperFigure9() Population {
	return Population{
		Partners: []Partner{
			{ID: "TP1", Name: "Trading Partner 1", Protocol: formats.EDI, ApprovalThreshold: 55000, Backend: "SAP"},
			{ID: "TP2", Name: "Trading Partner 2", Protocol: formats.RosettaNet, ApprovalThreshold: 40000, Backend: "Oracle"},
		},
		Backends: []BackendDef{
			{Name: "SAP", Format: formats.SAPIDoc},
			{Name: "Oracle", Format: formats.OracleOIF},
		},
	}
}

// PaperFigure10 is Figure 10's population: Figure 9 plus trading partner
// TP3 using OAGIS with a 10000 threshold.
func PaperFigure10() Population {
	p := PaperFigure9()
	p.Partners = append(p.Partners, Partner{
		ID: "TP3", Name: "Trading Partner 3", Protocol: formats.OAGIS,
		ApprovalThreshold: 10000, Backend: "SAP",
	})
	return p
}

// Synthetic builds a population with nProtocols distinct protocols cycled
// over nPartners partners and nBackends back ends, for the Section 4.6
// scalability sweeps. Protocol and format identities beyond the five real
// ones are synthesized; synthetic models are measured, not executed.
func Synthetic(nProtocols, nPartners, nBackends int) Population {
	protoPool := []formats.Format{formats.EDI, formats.RosettaNet, formats.OAGIS}
	for len(protoPool) < nProtocols {
		protoPool = append(protoPool, formats.Format(fmt.Sprintf("Proto-%d", len(protoPool)+1)))
	}
	bePool := []BackendDef{{Name: "SAP", Format: formats.SAPIDoc}, {Name: "Oracle", Format: formats.OracleOIF}}
	for len(bePool) < nBackends {
		n := len(bePool) + 1
		bePool = append(bePool, BackendDef{
			Name:   fmt.Sprintf("App-%d", n),
			Format: formats.Format(fmt.Sprintf("AppFmt-%d", n)),
		})
	}
	var pop Population
	pop.Backends = bePool[:nBackends]
	for i := 0; i < nPartners; i++ {
		pop.Partners = append(pop.Partners, Partner{
			ID:                fmt.Sprintf("TP%d", i+1),
			Name:              fmt.Sprintf("Trading Partner %d", i+1),
			Protocol:          protoPool[i%nProtocols],
			ApprovalThreshold: float64(10000 * (i + 1)),
			Backend:           pop.Backends[i%nBackends].Name,
		})
	}
	return pop
}
