package coop

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/doc"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/wf"
)

func TestPopulationValidate(t *testing.T) {
	if err := PaperFigure9().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperFigure10().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Population{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty population accepted")
	}
	p := PaperFigure9()
	p.Partners[1].Backend = "ghost"
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err %v", err)
	}
	p = PaperFigure9()
	p.Partners = append(p.Partners, p.Partners[0])
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate partner") {
		t.Fatalf("err %v", err)
	}
}

func TestProtocolsDistinctSorted(t *testing.T) {
	p := PaperFigure10()
	protos := p.Protocols()
	if len(protos) != 3 {
		t.Fatalf("protocols %v", protos)
	}
	for i := 1; i < len(protos); i++ {
		if protos[i-1] >= protos[i] {
			t.Fatalf("not sorted: %v", protos)
		}
	}
}

func TestSyntheticPopulation(t *testing.T) {
	p := Synthetic(4, 10, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Partners) != 10 || len(p.Backends) != 3 {
		t.Fatalf("%d partners, %d backends", len(p.Partners), len(p.Backends))
	}
	if len(p.Protocols()) != 4 {
		t.Fatalf("protocols %v", p.Protocols())
	}
}

func TestBuildReceiverTypeShape(t *testing.T) {
	pop := PaperFigure9()
	def, err := BuildReceiverType("fig9", pop)
	if err != nil {
		t.Fatal(err)
	}
	// P=2, A=2: steps = 3P + 5PA = 6 + 20 = 26.
	if got := def.CountSteps(); got != 26 {
		t.Fatalf("steps %d, want 26", got)
	}
	// Named steps from the paper's figure are present.
	for _, name := range []string{
		"Receive EDI-X12 PO", "Transform EDI-X12 to SAP PO", "Store SAP PO (EDI-X12)",
		"Approve SAP PO (EDI-X12)", "Extract SAP POA (EDI-X12)", "Transform SAP to EDI-X12 POA",
		"Send EDI-X12 POA", "Transform RosettaNet to Oracle PO",
	} {
		if _, ok := def.Step(name); !ok {
			t.Errorf("missing step %q", name)
		}
	}
	// The approval condition embeds the partner threshold — competitive
	// knowledge inside the workflow type.
	found := false
	for _, a := range def.Arcs {
		if strings.Contains(a.Condition, "55000") && strings.Contains(a.Condition, "TP1") {
			found = true
		}
	}
	if !found {
		t.Fatal("approval threshold not embedded in workflow type")
	}
}

// TestFigure9VsFigure10Growth measures the Figure 9 → Figure 10 change:
// one more partner with one more protocol makes the single workflow type
// significantly bigger and rewrites it (non-local change).
func TestFigure9VsFigure10Growth(t *testing.T) {
	d9, err := BuildReceiverType("receiver", PaperFigure9())
	if err != nil {
		t.Fatal(err)
	}
	d10, err := BuildReceiverType("receiver", PaperFigure10())
	if err != nil {
		t.Fatal(err)
	}
	st9 := metrics.StatsOf(defs(d9))
	st10 := metrics.StatsOf(defs(d10))
	if st10.Steps <= st9.Steps {
		t.Fatalf("steps did not grow: %d vs %d", st9.Steps, st10.Steps)
	}
	if st10.TransformSteps <= st9.TransformSteps {
		t.Fatalf("transform steps did not grow: %d vs %d", st9.TransformSteps, st10.TransformSteps)
	}
	if st10.ConditionTerms <= st9.ConditionTerms {
		t.Fatalf("condition terms did not grow: %d vs %d", st9.ConditionTerms, st10.ConditionTerms)
	}
	impact := metrics.Diff(defs(d9), defs(d10))
	if len(impact.Modified) != 1 || impact.Untouched != 0 {
		t.Fatalf("the naive change must rewrite the single monolithic type: %+v", impact)
	}
}

func TestMultiplicativeGrowth(t *testing.T) {
	// Transform steps grow with P×A (2 per pair: PO in, POA out).
	for _, c := range []struct{ p, tp, a, wantXforms int }{
		{1, 1, 1, 2},
		{2, 2, 2, 8},
		{3, 3, 2, 12},
		{4, 8, 4, 32},
	} {
		pop := Synthetic(c.p, c.tp, c.a)
		def, err := BuildReceiverType("x", pop)
		if err != nil {
			t.Fatal(err)
		}
		st := metrics.StatsOf(defs(def))
		if st.TransformSteps != c.wantXforms {
			t.Errorf("P=%d A=%d: transforms %d, want %d", c.p, c.a, st.TransformSteps, c.wantXforms)
		}
	}
}

// TestNaiveRoundTripEDIPartner drives Figure 9 end to end for the EDI
// partner (TP1 → SAP, threshold 55000).
func TestNaiveRoundTripEDIPartner(t *testing.T) {
	s, err := NewReceiverScenario(PaperFigure9())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := doc.NewGenerator(1)
	buyer := doc.Party{ID: "TP1", Name: "Trading Partner 1", DUNS: "111111111"}
	seller := doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"}

	// Above threshold: approval runs.
	po := g.POWithAmount(buyer, seller, 60000)
	res, err := s.RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ack.POID != po.ID {
		t.Fatalf("ack references %q, want %q", res.Ack.POID, po.ID)
	}
	if res.Ack.Status != doc.AckAccepted {
		t.Fatalf("status %s", res.Ack.Status)
	}
	if !res.Approved {
		t.Fatal("60000 > 55000 should be approved")
	}
	if s.Systems["SAP"].StoredOrders() != 1 {
		t.Fatal("order not stored in SAP")
	}
	if s.Systems["Oracle"].StoredOrders() != 0 {
		t.Fatal("order leaked into Oracle")
	}

	// Below threshold: approval skipped.
	po2 := g.POWithAmount(buyer, seller, 100)
	res2, err := s.RoundTrip(ctx, po2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Approved {
		t.Fatal("100 < 55000 should not be approved")
	}
	if res2.Instance.StepStateOf("Approve SAP PO (EDI-X12)") != "skipped" {
		t.Fatalf("approve step state %s", res2.Instance.StepStateOf("Approve SAP PO (EDI-X12)"))
	}
}

// TestNaiveRoundTripRNPartner drives the RosettaNet partner (TP2 → Oracle,
// threshold 40000) through the same monolithic type.
func TestNaiveRoundTripRNPartner(t *testing.T) {
	s, err := NewReceiverScenario(PaperFigure9())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := doc.NewGenerator(2)
	buyer := doc.Party{ID: "TP2", Name: "Trading Partner 2", DUNS: "222222222"}
	seller := doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"}
	po := g.POWithAmount(buyer, seller, 45000)
	res, err := s.RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Fatal("45000 > 40000 should be approved for TP2")
	}
	if s.Systems["Oracle"].StoredOrders() != 1 || s.Systems["SAP"].StoredOrders() != 0 {
		t.Fatal("order routed to wrong backend")
	}
}

// TestNaiveRoundTripFigure10 adds TP3 (OAGIS, threshold 10000) and drives
// it through the regenerated monolith.
func TestNaiveRoundTripFigure10(t *testing.T) {
	s, err := NewReceiverScenario(PaperFigure10())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := doc.NewGenerator(3)
	buyer := doc.Party{ID: "TP3", Name: "Trading Partner 3", DUNS: "333333333"}
	seller := doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"}
	po := g.POWithAmount(buyer, seller, 15000)
	res, err := s.RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Fatal("15000 > 10000 should be approved for TP3")
	}
	if res.Ack.Status != doc.AckAccepted {
		t.Fatalf("status %s", res.Ack.Status)
	}
}

func TestUnknownPartnerFails(t *testing.T) {
	s, err := NewReceiverScenario(PaperFigure9())
	if err != nil {
		t.Fatal(err)
	}
	g := doc.NewGenerator(4)
	po := g.POWithAmount(doc.Party{ID: "GHOST", Name: "?"}, doc.Party{ID: "HUB", Name: "R"}, 100)
	if _, err := s.RoundTrip(context.Background(), po); err == nil {
		t.Fatal("unknown partner accepted")
	}
}

// TestFigure8CooperativeRoundTrip runs the two-enterprise cooperative
// deployment over a perfect network.
func TestFigure8CooperativeRoundTrip(t *testing.T) {
	pair, err := NewFigure8Pair(msg.Faults{}, msg.ReliableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	g := doc.NewGenerator(5)
	po := g.POWithAmount(
		doc.Party{ID: "TP1", Name: "Trading Partner 1", DUNS: "111111111"},
		doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"}, 1234.56)
	poa, err := pair.RoundTrip(ctx, po)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID || poa.Status != doc.AckAccepted {
		t.Fatalf("poa %+v", poa)
	}
}

// TestFigure8UnderLoss runs the cooperative exchange over a lossy network;
// the reliable layer (the RNIF substitute) masks the loss.
func TestFigure8UnderLoss(t *testing.T) {
	pair, err := NewFigure8Pair(
		msg.Faults{LossProb: 0.35, Seed: 9},
		msg.ReliableConfig{RetryInterval: 10 * time.Millisecond, MaxAttempts: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	g := doc.NewGenerator(6)
	for i := 0; i < 5; i++ {
		po := g.PO(
			doc.Party{ID: "TP1", Name: "Trading Partner 1", DUNS: "111111111"},
			doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"})
		poa, err := pair.RoundTrip(ctx, po)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if poa.POID != po.ID {
			t.Fatalf("round trip %d: wrong correlation", i)
		}
	}
	b, s := pair.MessagingStats()
	if b.Retries+s.Retries == 0 {
		t.Fatal("expected retries on a 35% lossy network")
	}
}

func defs(ds ...*wf.TypeDef) []*wf.TypeDef { return ds }
