package coop

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/backend"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/edi"
	"repro/internal/formats/oagis"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/rosettanet"
	"repro/internal/formats/sapidoc"
	"repro/internal/transform"
	"repro/internal/wf"
	"repro/internal/wfstore"
)

// NewCodecRegistry builds a codec registry covering every concrete format.
func NewCodecRegistry() *formats.Registry {
	r := &formats.Registry{}
	r.Register(edi.POCodec{})
	r.Register(edi.POACodec{})
	r.Register(rosettanet.POCodec{})
	r.Register(rosettanet.POACodec{})
	r.Register(oagis.POCodec{})
	r.Register(oagis.POACodec{})
	r.Register(sapidoc.POCodec{})
	r.Register(sapidoc.POACodec{})
	r.Register(oracleoif.POCodec{})
	r.Register(oracleoif.POACodec{})
	return r
}

// ReceiverScenario is a runnable deployment of the naive receiver workflow
// (Figure 9/10): the monolithic type, its parameterized handlers, the
// simulated back ends and a capture of outbound sends.
type ReceiverScenario struct {
	Pop    Population
	Engine *wf.Engine
	Type   *wf.TypeDef
	// Systems maps backend name to the simulated ERP.
	Systems map[string]backend.System

	reg    *transform.Registry
	codecs *formats.Registry

	mu     sync.Mutex
	outbox map[string][]any // port → captured native payloads
}

// NewReceiverScenario builds, deploys and wires the naive model for the
// population. Only real formats (EDI, RosettaNet, OAGIS / SAP, Oracle) are
// executable; synthetic populations can be built but not run.
func NewReceiverScenario(pop Population) (*ReceiverScenario, error) {
	t, err := BuildReceiverType("naive-receiver", pop)
	if err != nil {
		return nil, err
	}
	s := &ReceiverScenario{
		Pop:     pop,
		Type:    t,
		Systems: map[string]backend.System{},
		reg:     &transform.Registry{},
		codecs:  NewCodecRegistry(),
		outbox:  map[string][]any{},
	}
	transform.RegisterAll(s.reg)
	for _, b := range pop.Backends {
		switch b.Format {
		case formats.SAPIDoc:
			s.Systems[b.Name] = backend.NewSAP(b.Name, nil)
		case formats.OracleOIF:
			s.Systems[b.Name] = backend.NewOracle(b.Name, nil)
		default:
			return nil, fmt.Errorf("coop: backend format %s is not executable", b.Format)
		}
	}
	h := wf.NewHandlers()
	s.registerHandlers(h)
	ports := func(ctx context.Context, in *wf.Instance, step *wf.StepDef, payload any) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.outbox[step.Port] = append(s.outbox[step.Port], payload)
		return nil
	}
	s.Engine = wf.NewEngine("seller", wfstore.NewMemStore(), h, ports)
	if err := s.Engine.Deploy(t); err != nil {
		return nil, err
	}
	return s, nil
}

// registerHandlers registers the per-protocol and per-backend handlers the
// naive type requires — the duplication is the point: every protocol and
// backend combination needs its own registration.
func (s *ReceiverScenario) registerHandlers(h *wf.Handlers) {
	for _, p := range s.Pop.Protocols() {
		p := p
		h.Register("route:"+string(p), func(ctx context.Context, in *wf.Instance, step *wf.StepDef) error {
			nd, err := s.reg.ToNormalized(p, doc.TypePO, in.Document())
			if err != nil {
				return err
			}
			po := nd.(*doc.PurchaseOrder)
			tp, ok := s.Pop.PartnerByID(po.Buyer.ID)
			if !ok {
				return fmt.Errorf("coop: unknown trading partner %q", po.Buyer.ID)
			}
			in.Data["source"] = po.Buyer.ID
			in.Data["amount"] = po.Amount()
			in.Data["target"] = tp.Backend
			in.Data["protocol"] = string(p)
			return nil
		})
		for _, b := range s.Pop.Backends {
			p, b := p, b
			h.Register(fmt.Sprintf("xform-po:%s:%s", p, b.Format),
				func(ctx context.Context, in *wf.Instance, step *wf.StepDef) error {
					out, err := s.reg.Apply(p, b.Format, doc.TypePO, in.Document())
					if err != nil {
						return err
					}
					in.SetDocument(out)
					return nil
				})
			h.Register(fmt.Sprintf("xform-poa:%s:%s", b.Format, p),
				func(ctx context.Context, in *wf.Instance, step *wf.StepDef) error {
					out, err := s.reg.Apply(b.Format, p, doc.TypePOA, in.Document())
					if err != nil {
						return err
					}
					in.SetDocument(out)
					return nil
				})
		}
	}
	for _, b := range s.Pop.Backends {
		b := b
		h.Register("store:"+b.Name, func(ctx context.Context, in *wf.Instance, step *wf.StepDef) error {
			codec, err := s.codecs.Lookup(b.Format, doc.TypePO)
			if err != nil {
				return err
			}
			wire, err := codec.Encode(in.Document())
			if err != nil {
				return err
			}
			return s.Systems[b.Name].Submit(ctx, wire)
		})
		h.Register("extract:"+b.Name, func(ctx context.Context, in *wf.Instance, step *wf.StepDef) error {
			sys := s.Systems[b.Name]
			if _, err := sys.Process(ctx); err != nil {
				return err
			}
			wire, ok, err := sys.Extract(ctx)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("coop: backend %s has no acknowledgment to extract", b.Name)
			}
			codec, err := s.codecs.Lookup(b.Format, doc.TypePOA)
			if err != nil {
				return err
			}
			native, err := codec.Decode(wire)
			if err != nil {
				return err
			}
			in.SetDocument(native)
			return nil
		})
	}
	h.Register("approve", func(ctx context.Context, in *wf.Instance, step *wf.StepDef) error {
		in.Data["approved"] = true
		return nil
	})
}

// takeOutbox pops the oldest captured payload on a port.
func (s *ReceiverScenario) takeOutbox(port string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.outbox[port]
	if len(q) == 0 {
		return nil, false
	}
	s.outbox[port] = q[1:]
	return q[0], true
}

// RoundTripResult carries the observable outcome of one naive round trip.
type RoundTripResult struct {
	Ack *doc.PurchaseOrderAck
	// Approved reports whether the approval step ran.
	Approved bool
	// Instance is the (still running — the unmatched protocol entries stay
	// parked forever, one of the naive model's warts) workflow instance.
	Instance *wf.Instance
}

// RoundTrip drives one purchase order through the naive receiver: inject
// the partner's native PO on its protocol's receive port, let the monolith
// transform/store/approve/extract, and collect the native POA captured at
// the protocol's send step.
func (s *ReceiverScenario) RoundTrip(ctx context.Context, po *doc.PurchaseOrder) (*RoundTripResult, error) {
	tp, ok := s.Pop.PartnerByID(po.Buyer.ID)
	if !ok {
		return nil, fmt.Errorf("coop: unknown trading partner %q", po.Buyer.ID)
	}
	native, err := s.reg.FromNormalized(tp.Protocol, doc.TypePO, po)
	if err != nil {
		return nil, err
	}
	in, err := s.Engine.Start(ctx, s.Type.Name, nil)
	if err != nil {
		return nil, err
	}
	if err := s.Engine.Deliver(ctx, in.ID, inPort(tp.Protocol), native); err != nil {
		return nil, err
	}
	payload, ok := s.takeOutbox(outPort(tp.Protocol))
	if !ok {
		got, _ := s.Engine.Instance(in.ID)
		return nil, fmt.Errorf("coop: no POA sent for %s (instance: %s)", po.ID, got.Summary())
	}
	nd, err := s.reg.ToNormalized(tp.Protocol, doc.TypePOA, payload)
	if err != nil {
		return nil, err
	}
	got, err := s.Engine.Instance(in.ID)
	if err != nil {
		return nil, err
	}
	approved := got.Data["approved"] == true
	return &RoundTripResult{Ack: nd.(*doc.PurchaseOrderAck), Approved: approved, Instance: got}, nil
}
