package backend

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/formats"
)

// ErrInjected is the sentinel wrapped by every error the Faulty decorator
// injects. Retry policies treat it as transient (see IsTransient).
var ErrInjected = errors.New("backend: injected fault")

// FaultSchedule parameterizes deterministic back-end fault injection,
// mirroring msg.Faults for the wire: every operation independently draws
// from a seeded stream to decide whether it errors, hangs until the
// caller's context expires, or is delayed.
type FaultSchedule struct {
	// ErrProb is the probability an operation fails with ErrInjected
	// before touching the inner system.
	ErrProb float64
	// HangProb is the probability an operation blocks until the caller's
	// context is done and then returns its error — the "slow endpoint"
	// failure mode that only a per-attempt timeout can unstick.
	HangProb float64
	// Latency and Jitter delay each operation by Latency ± uniform
	// [0, Jitter) before it proceeds.
	Latency time.Duration
	Jitter  time.Duration
	// Seed makes the fault stream reproducible (0 behaves as 1, matching
	// msg.Faults).
	Seed int64
}

// Faulty decorates a System with a deterministic fault schedule. Faults
// fire before the inner system is touched, so a failed or hung attempt
// never mutates back-end state and is always safe to retry. It is safe
// for concurrent use.
type Faulty struct {
	inner System

	mu       sync.Mutex
	schedule FaultSchedule
	rng      *rand.Rand
	injected int64
	hangs    int64
}

// NewFaulty wraps inner with the given fault schedule.
func NewFaulty(inner System, s FaultSchedule) *Faulty {
	f := &Faulty{inner: inner}
	f.SetSchedule(s)
	return f
}

// SetSchedule replaces the fault schedule (and reseeds the fault stream) —
// chaos tests use it to heal a system before resubmitting dead letters.
func (f *Faulty) SetSchedule(s FaultSchedule) {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.schedule = s
	f.rng = rand.New(rand.NewSource(seed))
}

// Inner returns the decorated system.
func (f *Faulty) Inner() System { return f.inner }

// InjectedErrors reports how many operations failed with an injected error.
func (f *Faulty) InjectedErrors() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Hangs reports how many operations were hung until context expiry.
func (f *Faulty) Hangs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hangs
}

// decide draws once from the fault stream for the named operation: it
// returns a non-nil error (injected or context) when the attempt must not
// reach the inner system, after applying any hang or latency.
func (f *Faulty) decide(ctx context.Context, op string) error {
	f.mu.Lock()
	s := f.schedule
	errDraw := f.rng.Float64()
	hangDraw := f.rng.Float64()
	var jitter time.Duration
	if s.Jitter > 0 {
		jitter = time.Duration(f.rng.Int63n(int64(s.Jitter)))
	}
	inject := s.ErrProb > 0 && errDraw < s.ErrProb
	hang := !inject && s.HangProb > 0 && hangDraw < s.HangProb
	if inject {
		f.injected++
	}
	if hang {
		f.hangs++
	}
	f.mu.Unlock()

	if hang {
		<-ctx.Done()
		return fmt.Errorf("backend %s: %s hung: %w", f.inner.Name(), op, ctx.Err())
	}
	if delay := s.Latency + jitter; delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return fmt.Errorf("backend %s: %s: %w", f.inner.Name(), op, ctx.Err())
		}
	}
	if inject {
		return fmt.Errorf("%w: %s %s", ErrInjected, f.inner.Name(), op)
	}
	return ctx.Err()
}

// Name implements System.
func (f *Faulty) Name() string { return f.inner.Name() }

// Format implements System.
func (f *Faulty) Format() formats.Format { return f.inner.Format() }

// Submit implements System.
func (f *Faulty) Submit(ctx context.Context, wire []byte) error {
	if err := f.decide(ctx, "submit"); err != nil {
		return err
	}
	return f.inner.Submit(ctx, wire)
}

// Extract implements System.
func (f *Faulty) Extract(ctx context.Context) ([]byte, bool, error) {
	if err := f.decide(ctx, "extract"); err != nil {
		return nil, false, err
	}
	return f.inner.Extract(ctx)
}

// ExtractByPO implements System.
func (f *Faulty) ExtractByPO(ctx context.Context, poID string) ([]byte, bool, error) {
	if err := f.decide(ctx, "extract-by-po"); err != nil {
		return nil, false, err
	}
	return f.inner.ExtractByPO(ctx, poID)
}

// ExtractInvoiceByPO implements System.
func (f *Faulty) ExtractInvoiceByPO(ctx context.Context, poID string) ([]byte, bool, error) {
	if err := f.decide(ctx, "extract-invoice"); err != nil {
		return nil, false, err
	}
	return f.inner.ExtractInvoiceByPO(ctx, poID)
}

// Process implements System.
func (f *Faulty) Process(ctx context.Context) (int, error) {
	if err := f.decide(ctx, "process"); err != nil {
		return 0, err
	}
	return f.inner.Process(ctx)
}

// StoredOrders implements System. It is a pure observation and is never
// faulted.
func (f *Faulty) StoredOrders() int { return f.inner.StoredOrders() }

// IsTransient reports whether err is worth retrying against the same
// system: injected faults and per-attempt timeouts are transient; semantic
// rejections (validation, duplicates) are not.
func IsTransient(err error) bool {
	return errors.Is(err, ErrInjected) || errors.Is(err, context.DeadlineExceeded)
}
