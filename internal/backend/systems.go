package backend

import (
	"context"
	"fmt"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/sapidoc"
	"repro/internal/transform"
)

// SAPSystem is the simulated SAP-like ERP: it accepts ORDERS IDocs and
// emits ORDRSP IDocs.
type SAPSystem struct {
	c *core
}

// NewSAP creates an SAP-like system. inventory maps SKU to stock; nil means
// unlimited stock (every order fully accepted).
func NewSAP(name string, inventory map[string]int) *SAPSystem {
	return &SAPSystem{c: newCore(name, inventory)}
}

// Name implements System.
func (s *SAPSystem) Name() string { return s.c.name }

// Format implements System.
func (s *SAPSystem) Format() formats.Format { return formats.SAPIDoc }

// Submit implements System: wire must be an ORDERS IDoc flat file.
func (s *SAPSystem) Submit(ctx context.Context, wire []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	orders, err := sapidoc.DecodeOrders(wire)
	if err != nil {
		return fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	po, err := transform.SAPPOToNormalized(orders)
	if err != nil {
		return fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return s.c.store(po)
}

// Process implements System.
func (s *SAPSystem) Process(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return s.c.processAll(), nil
}

// Extract implements System: the wire result is an ORDRSP IDoc flat file.
func (s *SAPSystem) Extract(ctx context.Context) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	ack, ok := s.c.nextAck()
	if !ok {
		return nil, false, nil
	}
	return s.encodeAck(ack)
}

// ExtractByPO implements System.
func (s *SAPSystem) ExtractByPO(ctx context.Context, poID string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	ack, ok := s.c.ackFor(poID)
	if !ok {
		return nil, false, nil
	}
	return s.encodeAck(ack)
}

func (s *SAPSystem) encodeAck(ack *doc.PurchaseOrderAck) ([]byte, bool, error) {
	ordrsp, err := transform.NormalizedPOAToSAP(ack)
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	wire, err := ordrsp.Encode()
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return wire, true, nil
}

// StoredOrders implements System.
func (s *SAPSystem) StoredOrders() int { return s.c.storedOrders() }

// OracleSystem is the simulated Oracle-like ERP: it accepts purchase order
// open-interface batches and emits acknowledgment batches.
type OracleSystem struct {
	c *core
}

// NewOracle creates an Oracle-like system; inventory semantics as NewSAP.
func NewOracle(name string, inventory map[string]int) *OracleSystem {
	return &OracleSystem{c: newCore(name, inventory)}
}

// Name implements System.
func (s *OracleSystem) Name() string { return s.c.name }

// Format implements System.
func (s *OracleSystem) Format() formats.Format { return formats.OracleOIF }

// Submit implements System: wire must be a PO interface batch.
func (s *OracleSystem) Submit(ctx context.Context, wire []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	batch, err := oracleoif.DecodePO(wire)
	if err != nil {
		return fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	po, err := transform.OraclePOToNormalized(batch)
	if err != nil {
		return fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return s.c.store(po)
}

// Process implements System.
func (s *OracleSystem) Process(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return s.c.processAll(), nil
}

// Extract implements System: the wire result is an acknowledgment batch.
func (s *OracleSystem) Extract(ctx context.Context) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	ack, ok := s.c.nextAck()
	if !ok {
		return nil, false, nil
	}
	return s.encodeAck(ack)
}

// ExtractByPO implements System.
func (s *OracleSystem) ExtractByPO(ctx context.Context, poID string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	ack, ok := s.c.ackFor(poID)
	if !ok {
		return nil, false, nil
	}
	return s.encodeAck(ack)
}

func (s *OracleSystem) encodeAck(ack *doc.PurchaseOrderAck) ([]byte, bool, error) {
	batch, err := transform.NormalizedPOAToOracle(ack)
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	wire, err := batch.Encode()
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return wire, true, nil
}

// StoredOrders implements System.
func (s *OracleSystem) StoredOrders() int { return s.c.storedOrders() }

// SubmitAndProcess is a convenience for synchronous round trips: store the
// order, process, and extract its acknowledgment.
func SubmitAndProcess(ctx context.Context, s System, wire []byte) ([]byte, error) {
	if err := s.Submit(ctx, wire); err != nil {
		return nil, err
	}
	if _, err := s.Process(ctx); err != nil {
		return nil, err
	}
	ack, ok, err := s.Extract(ctx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("backend %s: processed order produced no acknowledgment", s.Name())
	}
	return ack, nil
}

// ExtractInvoiceByPO implements System: the wire result is an INVOIC IDoc.
func (s *SAPSystem) ExtractInvoiceByPO(ctx context.Context, poID string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	inv, ok := s.c.invoiceFor(poID)
	if !ok {
		return nil, false, nil
	}
	idoc, err := transform.NormalizedINVToSAP(inv)
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	wire, err := idoc.Encode()
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return wire, true, nil
}

// ExtractInvoiceByPO implements System: the wire result is a receivables
// interface batch.
func (s *OracleSystem) ExtractInvoiceByPO(ctx context.Context, poID string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	inv, ok := s.c.invoiceFor(poID)
	if !ok {
		return nil, false, nil
	}
	batch, err := transform.NormalizedINVToOracle(inv)
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	wire, err := batch.Encode()
	if err != nil {
		return nil, false, fmt.Errorf("backend %s: %w", s.c.name, err)
	}
	return wire, true, nil
}
