package backend

import (
	"context"
	"errors"
	"testing"

	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/formats/oracleoif"
	"repro/internal/formats/sapidoc"
	"repro/internal/transform"
)

var (
	buyer  = doc.Party{ID: "TP1", Name: "Acme"}
	seller = doc.Party{ID: "HUB", Name: "Widget"}
)

func sapWire(t *testing.T, po *doc.PurchaseOrder) []byte {
	t.Helper()
	orders, err := transform.NormalizedPOToSAP(po)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := orders.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func oracleWire(t *testing.T, po *doc.PurchaseOrder) []byte {
	t.Helper()
	batch, err := transform.NormalizedPOToOracle(po)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := batch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestSAPRoundTripUnlimitedStock(t *testing.T) {
	sys := NewSAP("SAP", nil)
	g := doc.NewGenerator(1)
	po := g.PO(buyer, seller)
	ackWire, err := SubmitAndProcess(context.Background(), sys, sapWire(t, po))
	if err != nil {
		t.Fatal(err)
	}
	ordrsp, err := sapidoc.DecodeOrdrsp(ackWire)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := transform.SAPPOAToNormalized(ordrsp)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID {
		t.Fatalf("POID %q, want %q", poa.POID, po.ID)
	}
	if poa.Status != doc.AckAccepted {
		t.Fatalf("status %s", poa.Status)
	}
	if len(poa.Lines) != len(po.Lines) {
		t.Fatalf("lines %d vs %d", len(poa.Lines), len(po.Lines))
	}
	for i, l := range poa.Lines {
		if l.Status != doc.LineAccepted || l.Quantity != po.Lines[i].Quantity {
			t.Fatalf("line %d: %+v", i, l)
		}
	}
	if sys.StoredOrders() != 1 {
		t.Fatalf("stored %d", sys.StoredOrders())
	}
}

func TestOracleRoundTrip(t *testing.T) {
	sys := NewOracle("Oracle", nil)
	g := doc.NewGenerator(2)
	po := g.PO(buyer, seller)
	ackWire, err := SubmitAndProcess(context.Background(), sys, oracleWire(t, po))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := oracleoif.DecodePOA(ackWire)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := transform.OraclePOAToNormalized(batch)
	if err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID || poa.Status != doc.AckAccepted {
		t.Fatalf("%+v", poa)
	}
	if sys.Format() != formats.OracleOIF || sys.Name() != "Oracle" {
		t.Fatal("identity wrong")
	}
}

func TestInventoryBackorderAndReject(t *testing.T) {
	g := doc.NewGenerator(3)
	po := g.POWithAmount(buyer, seller, 100)
	po.Lines = []doc.Line{
		{Number: 1, SKU: "FULL", Quantity: 5, UnitPrice: 1},
		{Number: 2, SKU: "PART", Quantity: 10, UnitPrice: 1},
		{Number: 3, SKU: "NONE", Quantity: 3, UnitPrice: 1},
	}
	sys := NewSAP("SAP", map[string]int{"FULL": 10, "PART": 4, "NONE": 0})
	ackWire, err := SubmitAndProcess(context.Background(), sys, sapWire(t, po))
	if err != nil {
		t.Fatal(err)
	}
	ordrsp, err := sapidoc.DecodeOrdrsp(ackWire)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := transform.SAPPOAToNormalized(ordrsp)
	if err != nil {
		t.Fatal(err)
	}
	if poa.Status != doc.AckPartial {
		t.Fatalf("status %s", poa.Status)
	}
	want := []struct {
		status doc.LineStatus
		qty    int
	}{
		{doc.LineAccepted, 5},
		{doc.LineBackorder, 4},
		{doc.LineRejected, 0},
	}
	for i, w := range want {
		if poa.Lines[i].Status != w.status || poa.Lines[i].Quantity != w.qty {
			t.Fatalf("line %d: %+v, want %+v", i, poa.Lines[i], w)
		}
	}
}

func TestInventoryDepletion(t *testing.T) {
	sys := NewOracle("Oracle", map[string]int{"X": 5})
	g := doc.NewGenerator(4)
	po1 := g.POWithAmount(buyer, seller, 10)
	po1.Lines = []doc.Line{{Number: 1, SKU: "X", Quantity: 5, UnitPrice: 2}}
	po2 := g.POWithAmount(buyer, seller, 10)
	po2.Lines = []doc.Line{{Number: 1, SKU: "X", Quantity: 5, UnitPrice: 2}}

	ack1, err := SubmitAndProcess(context.Background(), sys, oracleWire(t, po1))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := oracleoif.DecodePOA(ack1)
	if b1.Headers[0].AcceptanceType != "accepted" {
		t.Fatalf("first order: %s", b1.Headers[0].AcceptanceType)
	}
	ack2, err := SubmitAndProcess(context.Background(), sys, oracleWire(t, po2))
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := oracleoif.DecodePOA(ack2)
	if b2.Headers[0].AcceptanceType != "rejected" {
		t.Fatalf("second order should be rejected, got %s", b2.Headers[0].AcceptanceType)
	}
}

func TestDuplicateOrderRejected(t *testing.T) {
	sys := NewSAP("SAP", nil)
	g := doc.NewGenerator(5)
	po := g.PO(buyer, seller)
	wire := sapWire(t, po)
	if err := sys.Submit(context.Background(), wire); err != nil {
		t.Fatal(err)
	}
	if err := sys.Submit(context.Background(), wire); !errors.Is(err, ErrDuplicateOrder) {
		t.Fatalf("err %v", err)
	}
}

func TestGarbageWireRejected(t *testing.T) {
	if err := NewSAP("SAP", nil).Submit(context.Background(), []byte("garbage")); err == nil {
		t.Fatal("SAP accepted garbage")
	}
	if err := NewOracle("Oracle", nil).Submit(context.Background(), []byte("garbage")); err == nil {
		t.Fatal("Oracle accepted garbage")
	}
	// Oracle wire into SAP is a format error.
	g := doc.NewGenerator(6)
	po := g.PO(buyer, seller)
	if err := NewSAP("SAP", nil).Submit(context.Background(), oracleWire(t, po)); err == nil {
		t.Fatal("SAP accepted an Oracle batch")
	}
}

func TestExtractWithoutProcess(t *testing.T) {
	sys := NewSAP("SAP", nil)
	g := doc.NewGenerator(7)
	if err := sys.Submit(context.Background(), sapWire(t, g.PO(buyer, seller))); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sys.Extract(context.Background()); ok || err != nil {
		t.Fatalf("unprocessed order should not be extractable: %v %v", ok, err)
	}
	n, err := sys.Process(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("process %d %v", n, err)
	}
	if _, ok, err := sys.Extract(context.Background()); !ok || err != nil {
		t.Fatalf("extract after process: %v %v", ok, err)
	}
	if _, ok, _ := sys.Extract(context.Background()); ok {
		t.Fatal("double extract")
	}
}

func TestBatchProcessing(t *testing.T) {
	sys := NewSAP("SAP", nil)
	g := doc.NewGenerator(8)
	const n = 10
	for i := 0; i < n; i++ {
		if err := sys.Submit(context.Background(), sapWire(t, g.PO(buyer, seller))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sys.Process(context.Background())
	if err != nil || got != n {
		t.Fatalf("processed %d %v", got, err)
	}
	count := 0
	for {
		_, ok, err := sys.Extract(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("extracted %d", count)
	}
}

func TestInvoiceEmission(t *testing.T) {
	sys := NewSAP("SAP", nil)
	g := doc.NewGenerator(9)
	po := g.PO(buyer, seller)
	if _, err := SubmitAndProcess(context.Background(), sys, sapWire(t, po)); err != nil {
		t.Fatal(err)
	}
	wire, ok, err := sys.ExtractInvoiceByPO(context.Background(), po.ID)
	if err != nil || !ok {
		t.Fatalf("invoice extraction: %v %v", ok, err)
	}
	idoc, err := sapidoc.DecodeInvoic(wire)
	if err != nil {
		t.Fatalf("invoice wire invalid: %v\n%s", err, wire)
	}
	inv, err := transform.SAPINVToNormalized(idoc)
	if err != nil {
		t.Fatal(err)
	}
	if inv.POID != po.ID {
		t.Fatalf("invoice references %q", inv.POID)
	}
	if inv.Amount() != po.Amount() {
		t.Fatalf("invoice amount %v != order amount %v (fully accepted order)", inv.Amount(), po.Amount())
	}
	// Only one invoice per order.
	if _, ok, _ := sys.ExtractInvoiceByPO(context.Background(), po.ID); ok {
		t.Fatal("double billing")
	}
	// Unknown order has no invoice.
	if _, ok, _ := sys.ExtractInvoiceByPO(context.Background(), "PO-GHOST"); ok {
		t.Fatal("invoice for unknown order")
	}
}

func TestInvoiceBillsOnlyConfirmedQuantities(t *testing.T) {
	g := doc.NewGenerator(10)
	po := g.POWithAmount(buyer, seller, 100)
	po.Lines = []doc.Line{
		{Number: 1, SKU: "FULL", Quantity: 5, UnitPrice: 10},
		{Number: 2, SKU: "PART", Quantity: 10, UnitPrice: 10},
	}
	sys := NewOracle("Oracle", map[string]int{"FULL": 5, "PART": 4})
	if _, err := SubmitAndProcess(context.Background(), sys, oracleWire(t, po)); err != nil {
		t.Fatal(err)
	}
	wire, ok, err := sys.ExtractInvoiceByPO(context.Background(), po.ID)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	batch, err := oracleoif.DecodeInvoice(wire)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := transform.OracleINVToNormalized(batch)
	if err != nil {
		t.Fatal(err)
	}
	// 5×10 accepted + 4×10 backordered-confirmed = 90, not the ordered 150.
	if inv.Amount() != 90 {
		t.Fatalf("invoice amount %v, want 90", inv.Amount())
	}
}

func TestNoInvoiceForRejectedOrder(t *testing.T) {
	g := doc.NewGenerator(11)
	po := g.POWithAmount(buyer, seller, 100)
	po.Lines = []doc.Line{{Number: 1, SKU: "NONE", Quantity: 5, UnitPrice: 20}}
	sys := NewSAP("SAP", map[string]int{"NONE": 0})
	if _, err := SubmitAndProcess(context.Background(), sys, sapWire(t, po)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := sys.ExtractInvoiceByPO(context.Background(), po.ID); ok {
		t.Fatal("rejected order billed")
	}
}

// TestCanceledContextRefused: every System operation refuses a canceled
// context without touching state — the "no backend mutation after
// cancellation" contract of the integration layer.
func TestCanceledContextRefused(t *testing.T) {
	g := doc.NewGenerator(12)
	po := g.PO(buyer, seller)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sys := range []System{NewSAP("SAP", nil), NewOracle("Oracle", nil)} {
		var wire []byte
		if sys.Format() == formats.SAPIDoc {
			wire = sapWire(t, po)
		} else {
			wire = oracleWire(t, po)
		}
		if err := sys.Submit(ctx, wire); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s Submit err %v", sys.Name(), err)
		}
		if sys.StoredOrders() != 0 {
			t.Fatalf("%s stored an order under a canceled context", sys.Name())
		}
		if _, err := sys.Process(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s Process err %v", sys.Name(), err)
		}
		if _, _, err := sys.Extract(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s Extract err %v", sys.Name(), err)
		}
		if _, _, err := sys.ExtractByPO(ctx, po.ID); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s ExtractByPO err %v", sys.Name(), err)
		}
		if _, _, err := sys.ExtractInvoiceByPO(ctx, po.ID); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s ExtractInvoiceByPO err %v", sys.Name(), err)
		}
	}
}
