// Package backend simulates the back-end application systems of the paper:
// the "SAP" and "Oracle" ERPs that purchase orders are stored into and
// purchase order acknowledgments are extracted from (Figure 9's "Store SAP
// PO" / "Extract SAP POA" and "Store Oracle PO" / "Extract Oracle POA").
//
// Each system speaks only its own native format (SAP IDoc flat files,
// Oracle open interface JSON batches) — the reason the bindings must
// transform. Processing is autonomous: given a stored order, the system
// allocates against its simulated inventory and emits an acknowledgment
// with per-line dispositions (accepted / backordered / rejected), which is
// exactly the behavioral contract the integration layer depends on and
// nothing more.
package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/doc"
	"repro/internal/formats"
)

// System is a simulated back-end application. Every mutating or extracting
// operation takes the exchange's context: a canceled exchange must not
// touch the back end, exactly as a canceled database transaction must not
// commit.
type System interface {
	// Name identifies the system instance ("SAP", "Oracle").
	Name() string
	// Format is the native document format the system accepts and emits.
	Format() formats.Format
	// Submit stores an inbound purchase order given in the native format.
	Submit(ctx context.Context, wire []byte) error
	// Extract returns the next pending acknowledgment in the native
	// format; ok is false when none is pending.
	Extract(ctx context.Context) (wire []byte, ok bool, err error)
	// ExtractByPO returns the pending acknowledgment for the given order,
	// in the native format; ok is false when it is not pending. Concurrent
	// integration flows use this so one exchange never consumes another's
	// acknowledgment.
	ExtractByPO(ctx context.Context, poID string) (wire []byte, ok bool, err error)
	// ExtractInvoiceByPO returns the billing document the system produced
	// for the given order, in the native format (SAP INVOIC IDoc, Oracle
	// receivables batch); ok is false when the order was not billed (not
	// processed yet, or fully rejected).
	ExtractInvoiceByPO(ctx context.Context, poID string) (wire []byte, ok bool, err error)
	// Process processes all stored, unprocessed orders, queueing their
	// acknowledgments for extraction, and reports how many it processed.
	Process(ctx context.Context) (int, error)
	// StoredOrders reports how many orders have been stored in total.
	StoredOrders() int
}

// ErrDuplicateOrder is returned when the same order number is stored twice
// (the duplicate-message error case of the paper's Section 1).
var ErrDuplicateOrder = errors.New("backend: duplicate purchase order")

// core is the format-independent ERP simulation. The format-specific
// systems wrap it with their codecs.
type core struct {
	name string

	mu         sync.Mutex
	inventory  map[string]int // SKU → stock; nil means unlimited
	seen       map[string]bool
	queue      []*doc.PurchaseOrder // stored, not yet processed
	pending    []*doc.PurchaseOrderAck
	pendingInv []*doc.Invoice
	stored     int
	ackSeq     int
	invSeq     int
}

func newCore(name string, inventory map[string]int) *core {
	var inv map[string]int
	if inventory != nil {
		inv = make(map[string]int, len(inventory))
		for k, v := range inventory {
			inv[k] = v
		}
	}
	return &core{name: name, inventory: inv, seen: map[string]bool{}}
}

func (c *core) store(po *doc.PurchaseOrder) error {
	if err := po.Validate(); err != nil {
		return fmt.Errorf("backend %s: %w", c.name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen[po.ID] {
		return fmt.Errorf("%w: %s already stored in %s", ErrDuplicateOrder, po.ID, c.name)
	}
	c.seen[po.ID] = true
	c.queue = append(c.queue, po.Clone())
	c.stored++
	return nil
}

// processAll turns every queued order into an acknowledgment by allocating
// inventory per line.
func (c *core) processAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, po := range c.queue {
		c.ackSeq++
		ack := &doc.PurchaseOrderAck{
			ID:       fmt.Sprintf("%s-ACK-%06d", c.name, c.ackSeq),
			POID:     po.ID,
			Buyer:    po.Buyer,
			Seller:   po.Seller,
			IssuedAt: po.IssuedAt.Add(2 * 3600 * 1e9), // two hours later
		}
		allAccepted, anyAccepted := true, false
		for _, l := range po.Lines {
			al := doc.AckLine{Number: l.Number, ShipDate: po.IssuedAt.Add(7 * 24 * 3600 * 1e9)}
			avail := l.Quantity
			if c.inventory != nil {
				avail = c.inventory[l.SKU]
			}
			switch {
			case avail >= l.Quantity:
				al.Status = doc.LineAccepted
				al.Quantity = l.Quantity
				anyAccepted = true
			case avail > 0:
				al.Status = doc.LineBackorder
				al.Quantity = avail
				anyAccepted = true
				allAccepted = false
			default:
				al.Status = doc.LineRejected
				al.Quantity = 0
				al.ShipDate = po.IssuedAt // no promise
				allAccepted = false
			}
			if c.inventory != nil {
				c.inventory[l.SKU] = max(0, avail-l.Quantity)
			}
			ack.Lines = append(ack.Lines, al)
		}
		switch {
		case allAccepted:
			ack.Status = doc.AckAccepted
		case anyAccepted:
			ack.Status = doc.AckPartial
		default:
			ack.Status = doc.AckRejected
			ack.Note = "no inventory"
		}
		c.pending = append(c.pending, ack)
		// Billing: every order with at least one accepted line produces an
		// invoice for the confirmed quantities.
		if ack.Status != doc.AckRejected {
			c.invSeq++
			inv, err := doc.InvoiceFor(po, ack, fmt.Sprintf("%s-INV-%06d", c.name, c.invSeq))
			if err == nil {
				c.pendingInv = append(c.pendingInv, inv)
			}
		}
		n++
	}
	c.queue = nil
	return n
}

func (c *core) invoiceFor(poID string) (*doc.Invoice, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, inv := range c.pendingInv {
		if inv.POID == poID {
			c.pendingInv = append(c.pendingInv[:i], c.pendingInv[i+1:]...)
			return inv, true
		}
	}
	return nil, false
}

func (c *core) nextAck() (*doc.PurchaseOrderAck, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) == 0 {
		return nil, false
	}
	ack := c.pending[0]
	c.pending = c.pending[1:]
	return ack, true
}

func (c *core) ackFor(poID string) (*doc.PurchaseOrderAck, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ack := range c.pending {
		if ack.POID == poID {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return ack, true
		}
	}
	return nil, false
}

func (c *core) storedOrders() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stored
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
