// Package server is the hub's network front door: a long-lived daemon
// exposing the exchange pipeline over a length-prefixed, versioned TCP wire
// protocol, and the matching client. It is the service shape the paper's
// hub deploys as — trading partners and operators reach one shared
// integration service over the network — and the wire API that multi-node
// federation (ROADMAP item 1) builds on.
//
// Framing: every message is a 4-byte big-endian length followed by one JSON
// Frame. Requests carry a protocol version, a connection-unique ID, an op
// name and an op-specific body; responses echo the ID and carry either a
// body or a typed WireError. Requests on one connection may be served
// concurrently and respond out of order — the ID is the correlator.
package server

import "encoding/json"

// ProtocolVersion is the wire protocol version spoken by this build.
// Compatibility rule: a daemon answers any frame whose version it knows how
// to speak; unknown versions are rejected per-frame with CodeVersion (the
// connection stays usable), so a newer client can downgrade and retry
// without redialing.
const ProtocolVersion = 1

// MaxFrame is the default cap on one frame's payload size.
const MaxFrame = 16 << 20

// Ops of protocol version 1.
const (
	// OpHello is the handshake: the daemon returns its protocol version,
	// name, and capability hints. Clients send it first, but it is not
	// mandatory — every op validates the frame version independently.
	OpHello = "hello"
	// OpSubmit runs one exchange (sync on a daemon goroutine, or async
	// through the sharded scheduler) and returns its outcome.
	OpSubmit = "submit"
	// OpStatus returns the hub's unified core.StatusSnapshot.
	OpStatus = "status"
	// OpTrace returns one exchange's record and human-readable trace.
	OpTrace = "trace"
	// OpDLQ lists the dead-letter queue.
	OpDLQ = "dlq"
	// OpResubmit reruns dead-lettered exchanges by ID (or all of them).
	OpResubmit = "resubmit"
	// OpDrain gracefully stops admission, waits for in-flight exchanges
	// under a deadline, flushes the DLQ and checkpoints the journal.
	OpDrain = "drain"
	// OpForward relays a submit from a cluster node that does not own the
	// target partner to the node that does. The receiver executes it
	// locally (journaling it in its own journal before acking) and answers
	// with a SubmitResponse, so the forwarding node can ack its caller with
	// the owner's durable exchange ID.
	OpForward = "forward"
	// OpHeartbeat is the cluster liveness probe: peers exchange it on a
	// fixed period, and a run of missed beats marks the peer suspect and
	// then dead (triggering partner reassignment and journal takeover).
	OpHeartbeat = "heartbeat"
	// OpScrub walks the hub's journal read-only and reports every valid
	// record, mid-file corrupt region and torn tail byte, without
	// modifying the file. Fails with CodeNoJournal on journal-less hubs.
	OpScrub = "scrub"
)

// Frame is one wire message in either direction.
type Frame struct {
	// V is the protocol version of this frame.
	V int `json:"v"`
	// ID correlates a response to its request; unique per connection.
	ID uint64 `json:"id"`
	// Op names the operation (requests only).
	Op string `json:"op,omitempty"`
	// Body is the op-specific request or response payload.
	Body json.RawMessage `json:"body,omitempty"`
	// Err is set instead of Body on failed responses.
	Err *WireError `json:"err,omitempty"`
}

// HelloResponse answers OpHello.
type HelloResponse struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Journal reports whether the daemon's hub is journal-backed (drain
	// will checkpoint; a crash is recoverable).
	Journal bool `json:"journal"`
	// Partners lists the registered trading partner IDs.
	Partners []string `json:"partners,omitempty"`
}

// SubmitRequest is the body of OpSubmit: the wire form of a core.Request.
type SubmitRequest struct {
	// Kind is the flow selector ("po", "wire-po", "invoice"); empty infers
	// like core.Request.
	Kind string `json:"kind,omitempty"`
	// PO is the normalized purchase order (kind "po"), as JSON.
	PO json.RawMessage `json:"po,omitempty"`
	// Protocol and Wire are the protocol-native inbound document (kind
	// "wire-po"). Wire is base64 (encoding/json []byte).
	Protocol string `json:"protocol,omitempty"`
	Wire     []byte `json:"wire,omitempty"`
	// PartnerID and POID select the billed order (kind "invoice");
	// PartnerID also hints the shard key for async "wire-po".
	PartnerID string `json:"partner,omitempty"`
	POID      string `json:"poid,omitempty"`

	// Async routes the exchange through the sharded scheduler (priority
	// lanes, backpressure) instead of running it on the serving goroutine.
	Async bool `json:"async,omitempty"`
	// High selects the high-priority scheduler lane (Async only).
	High bool `json:"high,omitempty"`
	// Retry overrides the hub's retry policies for this exchange.
	Retry *RetryOverride `json:"retry,omitempty"`
	// TimeoutMS bounds the exchange's execution (0 = daemon default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RetryOverride is the wire form of core.RetryPolicy (durations in ms).
type RetryOverride struct {
	MaxAttempts         int   `json:"max_attempts,omitempty"`
	BaseBackoffMS       int64 `json:"base_backoff_ms,omitempty"`
	MaxBackoffMS        int64 `json:"max_backoff_ms,omitempty"`
	PerAttemptTimeoutMS int64 `json:"per_attempt_timeout_ms,omitempty"`
}

// SubmitResponse is the body of a successful OpSubmit.
type SubmitResponse struct {
	ExchangeID string `json:"exchange_id,omitempty"`
	Partner    string `json:"partner,omitempty"`
	// POA is the normalized acknowledgment (kind "po"), as JSON.
	POA json.RawMessage `json:"poa,omitempty"`
	// Wire is the outbound wire document (kinds "wire-po", "invoice").
	Wire []byte `json:"wire,omitempty"`
}

// ForwardRequest is the body of OpForward: a SubmitRequest relayed between
// cluster nodes on behalf of the origin's caller.
type ForwardRequest struct {
	// From is the forwarding node's cluster ID.
	From string `json:"from"`
	// Hops counts forwards so a routing disagreement between nodes (e.g.
	// during a takeover window) cannot bounce an exchange forever: a
	// receiver that thinks a third node owns the partner executes locally
	// once Hops reaches the cluster's hop limit.
	Hops int `json:"hops,omitempty"`
	// Submit is the relayed submission, unchanged from the origin.
	Submit SubmitRequest `json:"submit"`
}

// ForwardResponse is the body of a successful OpForward: the owner's
// SubmitResponse, unchanged.
type ForwardResponse = SubmitResponse

// HeartbeatRequest is the body of OpHeartbeat.
type HeartbeatRequest struct {
	// From is the probing node's cluster ID.
	From string `json:"from"`
	// Seq is the probe sequence number (monotonic per sender).
	Seq uint64 `json:"seq"`
}

// HeartbeatResponse answers OpHeartbeat.
type HeartbeatResponse struct {
	// Node is the responder's cluster ID.
	Node string `json:"node"`
	// Seq echoes the probe's sequence number.
	Seq uint64 `json:"seq"`
}

// TraceRequest is the body of OpTrace.
type TraceRequest struct {
	ExchangeID string `json:"exchange_id"`
}

// TraceResponse is the body of a successful OpTrace.
type TraceResponse struct {
	ExchangeID string `json:"exchange_id"`
	Partner    string `json:"partner,omitempty"`
	Flow       string `json:"flow,omitempty"`
	Protocol   string `json:"protocol,omitempty"`
	Backend    string `json:"backend,omitempty"`
	// Trace is the human-readable event trace, one line per event.
	Trace []string `json:"trace,omitempty"`
}

// DLQResponse is the body of a successful OpDLQ.
type DLQResponse struct {
	Entries []DLQEntry `json:"entries"`
}

// DLQEntry is one dead letter on the wire.
type DLQEntry struct {
	ExchangeID string `json:"exchange_id"`
	Partner    string `json:"partner"`
	Flow       string `json:"flow"`
	Protocol   string `json:"protocol"`
	Reason     string `json:"reason"`
	At         string `json:"at"` // RFC 3339
}

// ResubmitRequest is the body of OpResubmit: one exchange by ID, or all.
type ResubmitRequest struct {
	ExchangeID string `json:"exchange_id,omitempty"`
	All        bool   `json:"all,omitempty"`
}

// ResubmitOutcome is one rerun's result inside a ResubmitResponse.
type ResubmitOutcome struct {
	// ExchangeID is the original dead-lettered exchange.
	ExchangeID string `json:"exchange_id"`
	// NewExchangeID is the rerun's exchange, when one was created.
	NewExchangeID string `json:"new_exchange_id,omitempty"`
	// Err reports a failed rerun (the entry is re-parked on the DLQ).
	Err *WireError `json:"err,omitempty"`
}

// ResubmitResponse is the body of a successful OpResubmit.
type ResubmitResponse struct {
	Outcomes []ResubmitOutcome `json:"outcomes"`
}

// ScrubResponse is the body of a successful OpScrub: one read-only
// full-file walk of the daemon's journal.
type ScrubResponse struct {
	// Path is the journal file the daemon scrubbed.
	Path string `json:"path"`
	// Records is how many valid records the walk yielded.
	Records int `json:"records"`
	// Corrupt is how many mid-file corrupt regions were found.
	Corrupt int `json:"corrupt"`
	// QuarantinedBytes is the total size of those regions (what a Repair
	// would cut into the quarantine sidecar).
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	// TornBytes is the size of the trailing bad region, when the file
	// ends in one (a torn tail — truncated on recovery, never
	// quarantined).
	TornBytes int64 `json:"torn_bytes"`
}

// DrainRequest is the body of OpDrain.
type DrainRequest struct {
	// TimeoutMS bounds the wait for in-flight exchanges (0 = daemon
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DrainResponse is the body of a successful OpDrain.
type DrainResponse struct {
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Shed         int64 `json:"shed"`
	DeadLettered int64 `json:"dead_lettered"`
	// Checkpointed reports a successful post-drain journal checkpoint.
	Checkpointed bool `json:"checkpointed,omitempty"`
	// TimedOut reports that the deadline expired first: the shutdown keeps
	// running in the background and counts reflect the deadline instant.
	TimedOut bool `json:"timed_out,omitempty"`
}
