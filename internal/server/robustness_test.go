package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/leakcheck"
)

// TestDaemonSlowReaderEvicted: a client that submits requests but never
// reads responses fills its bounded response queue; once a handler has
// waited out the write timeout the connection is evicted, the daemon stays
// responsive to well-behaved clients, and Close completes cleanly.
func TestDaemonSlowReaderEvicted(t *testing.T) {
	defer leakcheck.Check(t)()
	m, err := core.PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(h, "127.0.0.1:0",
		WithWriteTimeout(50*time.Millisecond),
		WithWriteQueue(2))
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve() }()
	defer func() {
		d.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		h.StopWorkers()
	}()

	// The slow reader: raw frames in, nothing ever read back. Far more
	// requests than queue capacity, so responses pile up behind a socket
	// nobody drains.
	slow, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	for i := 0; i < 64; i++ {
		f := &Frame{V: ProtocolVersion, ID: uint64(i + 1), Op: OpStatus}
		if err := WriteFrame(slow, f); err != nil {
			break // daemon already evicted us: exactly what we want
		}
	}

	// Eviction closes the socket server-side; the read unblocks with an
	// error rather than hanging for a response that will never come.
	slow.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := slow.Read(buf); err != nil {
			break // EOF/reset: evicted
		}
	}

	// A well-behaved client is unaffected, before and after the eviction.
	c, err := Dial(context.Background(), d.Addr())
	if err != nil {
		t.Fatalf("dial after slow-reader eviction: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Status(ctx); err != nil {
		t.Fatalf("status while slow reader wedged: %v", err)
	}
}

// TestClientCallsRaceDaemonCrash: a swarm of pipelined calls races the
// daemon dying mid-flight. Every call resolves quickly — success or a
// typed, classifiable error — no call hangs, and nothing leaks.
func TestClientCallsRaceDaemonCrash(t *testing.T) {
	defer leakcheck.Check(t)()
	m, err := core.PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve() }()

	c, err := Dial(context.Background(), d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 16*8)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := c.Status(ctx); err != nil {
					errs <- err
					return // connection is gone; stop hammering
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the swarm get airborne
	d.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("calls still hanging 5s after daemon crash")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrConnLost) && !errors.Is(err, ErrClientClosed) {
			t.Fatalf("crash surfaced untyped error: %v", err)
		}
	}

	// While disconnected, calls fail fast — no blocking on the redialer.
	start := time.Now()
	_, err = c.Status(ctx)
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("call while disconnected = %v, want ErrConnLost", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("disconnected call took %v, want fail-fast", d)
	}
	h.StopWorkers()
}

// TestClientReconnectCorrelation: the daemon process dies and a
// replacement binds the same address; the client's redialer restores
// service, and because frame IDs are allocated from one counter across
// connections, concurrent traces after the reconnect each get exactly the
// exchange they asked for.
func TestClientReconnectCorrelation(t *testing.T) {
	defer leakcheck.Check(t)()
	m, err := core.PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHub(m)
	if err != nil {
		t.Fatal(err)
	}
	h.StartScheduler()
	defer h.StopWorkers()

	d1, err := NewDaemon(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := d1.Addr()
	serve1 := make(chan error, 1)
	go func() { serve1 <- d1.Serve() }()

	c, err := Dial(context.Background(), addr,
		WithReconnect(ReconnectPolicy{Base: 5 * time.Millisecond, Max: 25 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	g := doc.NewGenerator(3)
	ids := make([]string, 3)
	for i := range ids {
		req, err := PORequest(g.PO(tp1, seller))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = resp.ExchangeID
	}

	// Kill the daemon process-style: listener and conns die, hub survives.
	d1.Close()
	if err := <-serve1; err != nil {
		t.Errorf("Serve: %v", err)
	}
	waitCond(t, 5*time.Second, "client to notice the drop", func() bool {
		_, err := c.Status(ctx)
		return errors.Is(err, ErrConnLost)
	})

	// A replacement daemon takes over the same address and the same hub.
	var d2 *Daemon
	waitCond(t, 5*time.Second, "address to rebind", func() bool {
		d2, err = NewDaemon(h, addr)
		return err == nil
	})
	serve2 := make(chan error, 1)
	go func() { serve2 <- d2.Serve() }()
	defer func() {
		d2.Close()
		if err := <-serve2; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	waitCond(t, 5*time.Second, "redialer to restore service", func() bool {
		return c.Connected()
	})

	// Correlation across the reconnect: a concurrent mix of traces, each
	// asserting its response is for the requested exchange.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		id := ids[i%len(ids)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := c.Trace(ctx, id)
			if err != nil {
				t.Errorf("trace %s after reconnect: %v", id, err)
				return
			}
			if tr.ExchangeID != id {
				t.Errorf("trace for %s answered with %s: correlation broken", id, tr.ExchangeID)
			}
		}()
	}
	wg.Wait()
}

// waitCond polls cond until it holds or the deadline expires.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
