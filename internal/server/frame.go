package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrFrameTooLarge is returned for frames exceeding the reader's cap.
var ErrFrameTooLarge = errors.New("server: frame exceeds size cap")

// WriteFrame marshals f and writes it as one length-prefixed wire message:
// a 4-byte big-endian payload length followed by the JSON payload. The
// single Write keeps the frame atomic for concurrent writers serialized by
// the caller's mutex.
func WriteFrame(w io.Writer, f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("server: marshal frame: %w", err)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("server: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame. max caps the payload length
// (<=0 means MaxFrame); oversized frames return ErrFrameTooLarge without
// consuming the payload, so the caller must drop the connection.
func ReadFrame(r io.Reader, max int) (*Frame, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d bytes (cap %d)", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("server: short frame: %w", err)
	}
	f := &Frame{}
	if err := json.Unmarshal(payload, f); err != nil {
		return nil, fmt.Errorf("server: decode frame: %w", err)
	}
	return f, nil
}
