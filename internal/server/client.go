package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/doc"
)

// ErrClientClosed is returned by calls on a closed client (or one whose
// connection broke; the underlying cause is wrapped).
var ErrClientClosed = errors.New("server: client closed")

// Client is one connection to a daemon. Calls are safe for concurrent use:
// requests are pipelined on the single connection and matched to their
// responses by frame ID, so many goroutines can share one client.
type Client struct {
	conn  net.Conn
	hello HelloResponse

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *Frame
	nextID  uint64
	cause   error // terminal reason, set once before done closes
	done    chan struct{}
	closed  bool
}

// Dial connects to a daemon, honoring ctx for the dial itself, and
// performs the OpHello handshake so a protocol-version mismatch surfaces
// immediately (as a CodeVersion error) rather than on first use.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan *Frame{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	var hello HelloResponse
	if err := c.Call(ctx, OpHello, struct{}{}, &hello); err != nil {
		c.Close()
		return nil, err
	}
	c.hello = hello
	return c, nil
}

// Hello returns the daemon's handshake response.
func (c *Client) Hello() HelloResponse { return c.hello }

// Close tears the connection down; in-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	var cause error
	for {
		f, err := ReadFrame(c.conn, MaxFrame)
		if err != nil {
			cause = err
			break
		}
		c.mu.Lock()
		ch := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
	c.mu.Lock()
	c.cause = cause
	c.mu.Unlock()
	close(c.done)
}

// Call performs one op: in is marshaled as the request body, and the
// response body is unmarshaled into out (out may be nil to discard it).
// Wire errors come back typed: errors.Is sees the core sentinels and
// errors.As extracts *core.ExchangeError, exactly as in-process callers do.
func (c *Client) Call(ctx context.Context, op string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("server: marshal %s request: %w", op, err)
	}
	ch := make(chan *Frame, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}()

	c.writeMu.Lock()
	err = WriteFrame(c.conn, &Frame{V: ProtocolVersion, ID: id, Op: op, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		return err
	}

	select {
	case f := <-ch:
		if f.Err != nil {
			return DecodeError(f.Err)
		}
		if out != nil && len(f.Body) > 0 {
			if err := json.Unmarshal(f.Body, out); err != nil {
				return fmt.Errorf("server: decode %s response: %w", op, err)
			}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
		c.mu.Lock()
		cause := c.cause
		c.mu.Unlock()
		if cause != nil {
			return fmt.Errorf("%w: %v", ErrClientClosed, cause)
		}
		return ErrClientClosed
	}
}

// Status fetches the hub's unified snapshot.
func (c *Client) Status(ctx context.Context) (*core.StatusSnapshot, error) {
	out := &core.StatusSnapshot{}
	if err := c.Call(ctx, OpStatus, struct{}{}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit runs one exchange on the daemon and returns its outcome.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*SubmitResponse, error) {
	out := &SubmitResponse{}
	if err := c.Call(ctx, OpSubmit, req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches one exchange's record and trace lines.
func (c *Client) Trace(ctx context.Context, exchangeID string) (*TraceResponse, error) {
	out := &TraceResponse{}
	if err := c.Call(ctx, OpTrace, TraceRequest{ExchangeID: exchangeID}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DLQ lists the daemon's dead-letter queue.
func (c *Client) DLQ(ctx context.Context) (*DLQResponse, error) {
	out := &DLQResponse{}
	if err := c.Call(ctx, OpDLQ, struct{}{}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Resubmit reruns one dead-lettered exchange by ID, or all of them.
func (c *Client) Resubmit(ctx context.Context, exchangeID string, all bool) (*ResubmitResponse, error) {
	out := &ResubmitResponse{}
	req := ResubmitRequest{ExchangeID: exchangeID, All: all}
	if err := c.Call(ctx, OpResubmit, req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Drain gracefully drains the daemon's hub under the given deadline
// (0 = the daemon's default) and checkpoints its journal.
func (c *Client) Drain(ctx context.Context, timeoutMS int64) (*DrainResponse, error) {
	out := &DrainResponse{}
	if err := c.Call(ctx, OpDrain, DrainRequest{TimeoutMS: timeoutMS}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PORequest builds the SubmitRequest for a normalized purchase order.
func PORequest(po *doc.PurchaseOrder) (SubmitRequest, error) {
	raw, err := json.Marshal(po)
	if err != nil {
		return SubmitRequest{}, fmt.Errorf("server: marshal po: %w", err)
	}
	return SubmitRequest{Kind: string(core.DocPO), PO: raw}, nil
}
