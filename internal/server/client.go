package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/doc"
)

// ErrClientClosed is returned by calls on a client that was Closed.
var ErrClientClosed = errors.New("server: client closed")

// ErrConnLost is the typed retryable error of a dropped connection: every
// in-flight call fails fast with it the moment the connection breaks
// (instead of hanging until its context deadline), and new calls keep
// failing with it while the background redialer works. Callers match it
// with errors.Is and retry: by the time they do, the client may already be
// reconnected.
var ErrConnLost = errors.New("server: connection lost (retryable)")

// ReconnectPolicy shapes the client's automatic redial after a dropped
// connection or a failed dial attempt: capped exponential backoff starting
// at Base, doubling up to Max, with up to 50% uniform jitter on every
// wait. The zero value disables reconnection (a broken client stays
// broken, the pre-federation behavior).
type ReconnectPolicy struct {
	// Base is the first retry's backoff; Max caps the doubling.
	Base time.Duration
	Max  time.Duration
}

// DefaultReconnect is the policy Dial installs: 50ms doubling to 2s.
var DefaultReconnect = ReconnectPolicy{Base: 50 * time.Millisecond, Max: 2 * time.Second}

// DialOption configures Dial.
type DialOption func(*Client)

// WithReconnect overrides the client's reconnect policy. A zero policy
// disables automatic reconnection.
func WithReconnect(p ReconnectPolicy) DialOption {
	return func(c *Client) { c.rc = p }
}

// callResult is what a pending call receives: its response frame, or the
// connection-loss error that failed it fast.
type callResult struct {
	f   *Frame
	err error
}

// Client is one logical connection to a daemon. Calls are safe for
// concurrent use: requests are pipelined and matched to their responses by
// frame ID, so many goroutines share one client. When the connection
// drops, in-flight calls fail fast with ErrConnLost and a background
// redialer re-establishes the connection with capped exponential backoff +
// jitter; frame IDs are allocated from one counter across reconnects, so
// correlation can never alias a response from a previous connection.
type Client struct {
	addr string
	rc   ReconnectPolicy

	writeMu sync.Mutex

	mu       sync.Mutex
	conn     net.Conn // nil while disconnected
	hello    HelloResponse
	pending  map[uint64]chan callResult
	nextID   uint64
	lost     error // last disconnect cause
	redial   bool  // background redialer running
	rng      *rand.Rand
	closed   bool
	closedCh chan struct{}
}

// Dial connects to a daemon, honoring ctx for the dial and handshake, and
// performs the OpHello handshake so a protocol-version mismatch surfaces
// immediately (as a CodeVersion error) rather than on first use. The
// initial dial does not retry — a wrong address fails fast; automatic
// reconnection begins once a connection has been established.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	conn, hello, err := dialHello(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		addr:     addr,
		rc:       DefaultReconnect,
		conn:     conn,
		hello:    hello,
		pending:  map[uint64]chan callResult{},
		nextID:   1, // ID 1 was the handshake's
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		closedCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	go c.readLoop(conn)
	return c, nil
}

// dialHello dials addr and performs the OpHello handshake on the fresh
// connection (single-threaded, so raw frame I/O is safe), bounded by ctx's
// deadline.
func dialHello(ctx context.Context, addr string) (net.Conn, HelloResponse, error) {
	var hello HelloResponse
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, hello, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	fail := func(err error) (net.Conn, HelloResponse, error) {
		conn.Close()
		return nil, hello, err
	}
	if err := WriteFrame(conn, &Frame{V: ProtocolVersion, ID: 1, Op: OpHello, Body: json.RawMessage("{}")}); err != nil {
		return fail(fmt.Errorf("server: handshake %s: %w", addr, err))
	}
	f, err := ReadFrame(conn, MaxFrame)
	if err != nil {
		return fail(fmt.Errorf("server: handshake %s: %w", addr, err))
	}
	if f.Err != nil {
		return fail(DecodeError(f.Err))
	}
	if err := json.Unmarshal(f.Body, &hello); err != nil {
		return fail(fmt.Errorf("server: decode hello: %w", err))
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, hello, nil
}

// Hello returns the daemon's most recent handshake response.
func (c *Client) Hello() HelloResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hello
}

// Connected reports whether the client currently holds a live connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn != nil
}

// Close tears the client down for good: the connection is closed, in-flight
// calls fail with ErrClientClosed, and the redialer (if running) stops.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: ErrClientClosed}
	}
	close(c.closedCh)
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// readLoop consumes one connection's responses until it breaks.
func (c *Client) readLoop(conn net.Conn) {
	for {
		f, err := ReadFrame(conn, MaxFrame)
		if err != nil {
			c.connLost(conn, err)
			return
		}
		c.mu.Lock()
		ch := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- callResult{f: f}
		}
	}
}

// connLost handles the death of one specific connection: every pending
// call fails fast with ErrConnLost and the background redialer starts.
// Stale notifications (a write error racing the read loop, or an error on
// an already-replaced connection) are ignored.
func (c *Client) connLost(conn net.Conn, cause error) {
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	c.lost = cause
	err := fmt.Errorf("%w: %v", ErrConnLost, cause)
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: err}
	}
	start := !c.closed && !c.redial && c.rc.Base > 0
	if start {
		c.redial = true
	}
	c.mu.Unlock()
	conn.Close()
	if start {
		go c.redialLoop()
	}
}

// redialLoop re-establishes the connection with capped exponential backoff
// and jitter, until it succeeds or the client is closed.
func (c *Client) redialLoop() {
	backoff := c.rc.Base
	for {
		c.mu.Lock()
		if c.closed {
			c.redial = false
			c.mu.Unlock()
			return
		}
		jitter := time.Duration(0)
		if backoff > 1 {
			jitter = time.Duration(c.rng.Int63n(int64(backoff)/2 + 1))
		}
		c.mu.Unlock()

		select {
		case <-time.After(backoff + jitter):
		case <-c.closedCh:
			return
		}

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		conn, hello, err := dialHello(ctx, c.addr)
		cancel()
		if err != nil {
			if backoff *= 2; backoff > c.rc.Max {
				backoff = c.rc.Max
			}
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		c.hello = hello
		c.lost = nil
		c.redial = false
		c.mu.Unlock()
		go c.readLoop(conn)
		return
	}
}

// Call performs one op: in is marshaled as the request body, and the
// response body is unmarshaled into out (out may be nil to discard it).
// Wire errors come back typed: errors.Is sees the core sentinels and
// errors.As extracts *core.ExchangeError, exactly as in-process callers
// do. While the connection is down, Call fails fast with ErrConnLost
// (retryable) instead of blocking on the redialer.
func (c *Client) Call(ctx context.Context, op string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("server: marshal %s request: %w", op, err)
	}
	ch := make(chan callResult, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	conn := c.conn
	if conn == nil {
		lost := c.lost
		c.mu.Unlock()
		if lost != nil {
			return fmt.Errorf("%w: %v", ErrConnLost, lost)
		}
		return ErrConnLost
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}()

	c.writeMu.Lock()
	err = WriteFrame(conn, &Frame{V: ProtocolVersion, ID: id, Op: op, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		c.connLost(conn, err)
		return fmt.Errorf("%w: %v", ErrConnLost, err)
	}

	select {
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		if r.f.Err != nil {
			return DecodeError(r.f.Err)
		}
		if out != nil && len(r.f.Body) > 0 {
			if err := json.Unmarshal(r.f.Body, out); err != nil {
				return fmt.Errorf("server: decode %s response: %w", op, err)
			}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status fetches the hub's unified snapshot.
func (c *Client) Status(ctx context.Context) (*core.StatusSnapshot, error) {
	out := &core.StatusSnapshot{}
	if err := c.Call(ctx, OpStatus, struct{}{}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit runs one exchange on the daemon and returns its outcome.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*SubmitResponse, error) {
	out := &SubmitResponse{}
	if err := c.Call(ctx, OpSubmit, req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Forward relays a submit to a peer daemon on behalf of another node.
func (c *Client) Forward(ctx context.Context, req ForwardRequest) (*ForwardResponse, error) {
	out := &ForwardResponse{}
	if err := c.Call(ctx, OpForward, req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Heartbeat probes a peer daemon's liveness.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (*HeartbeatResponse, error) {
	out := &HeartbeatResponse{}
	if err := c.Call(ctx, OpHeartbeat, req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches one exchange's record and trace lines.
func (c *Client) Trace(ctx context.Context, exchangeID string) (*TraceResponse, error) {
	out := &TraceResponse{}
	if err := c.Call(ctx, OpTrace, TraceRequest{ExchangeID: exchangeID}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DLQ lists the daemon's dead-letter queue.
func (c *Client) DLQ(ctx context.Context) (*DLQResponse, error) {
	out := &DLQResponse{}
	if err := c.Call(ctx, OpDLQ, struct{}{}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Resubmit reruns one dead-lettered exchange by ID, or all of them.
func (c *Client) Resubmit(ctx context.Context, exchangeID string, all bool) (*ResubmitResponse, error) {
	out := &ResubmitResponse{}
	req := ResubmitRequest{ExchangeID: exchangeID, All: all}
	if err := c.Call(ctx, OpResubmit, req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Scrub runs a read-only full-file walk of the daemon's journal and
// reports valid records, mid-file corrupt regions and torn tail bytes.
func (c *Client) Scrub(ctx context.Context) (*ScrubResponse, error) {
	out := &ScrubResponse{}
	if err := c.Call(ctx, OpScrub, struct{}{}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Drain gracefully drains the daemon's hub under the given deadline
// (0 = the daemon's default) and checkpoints its journal.
func (c *Client) Drain(ctx context.Context, timeoutMS int64) (*DrainResponse, error) {
	out := &DrainResponse{}
	if err := c.Call(ctx, OpDrain, DrainRequest{TimeoutMS: timeoutMS}, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PORequest builds the SubmitRequest for a normalized purchase order.
func PORequest(po *doc.PurchaseOrder) (SubmitRequest, error) {
	raw, err := json.Marshal(po)
	if err != nil {
		return SubmitRequest{}, fmt.Errorf("server: marshal po: %w", err)
	}
	return SubmitRequest{Kind: string(core.DocPO), PO: raw}, nil
}
