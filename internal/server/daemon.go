package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Daemon serves one hub over the wire protocol. Each accepted connection
// gets a reader goroutine; each request frame is served on its own
// goroutine so slow exchanges never head-of-line-block status queries on
// the same connection (responses correlate by frame ID).
type Daemon struct {
	hub *core.Hub
	ln  net.Listener

	name         string
	maxFrame     int
	drainTimeout time.Duration
	writeTimeout time.Duration
	writeQueue   int
	handlers     map[string]HandlerFunc

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Option configures a Daemon.
type Option func(*Daemon)

// WithName sets the daemon name reported by OpHello.
func WithName(name string) Option { return func(d *Daemon) { d.name = name } }

// WithMaxFrame caps inbound frame payloads (default MaxFrame).
func WithMaxFrame(n int) Option { return func(d *Daemon) { d.maxFrame = n } }

// WithDrainTimeout sets the default OpDrain deadline used when the request
// carries none (default 30s).
func WithDrainTimeout(t time.Duration) Option {
	return func(d *Daemon) { d.drainTimeout = t }
}

// WithWriteTimeout bounds each response frame's write (default 10s). A
// client that stops reading long enough to stall a write past the deadline
// is evicted — its connection is closed — instead of wedging the
// connection's writer.
func WithWriteTimeout(t time.Duration) Option {
	return func(d *Daemon) {
		if t > 0 {
			d.writeTimeout = t
		}
	}
}

// WithWriteQueue bounds each connection's response queue (default 256
// frames). Handlers that outrun a slow reader block on the full queue for
// at most the write timeout, then the connection is evicted.
func WithWriteQueue(n int) Option {
	return func(d *Daemon) {
		if n > 0 {
			d.writeQueue = n
		}
	}
}

// HandlerFunc serves one op: body is the request frame's payload, the
// returned value is marshaled as the response body (an error becomes a
// typed WireError, exactly like built-in ops).
type HandlerFunc func(ctx context.Context, body json.RawMessage) (any, error)

// WithHandler registers fn for op, consulted before the built-in ops — an
// extension point for layers above the daemon (the cluster node overrides
// OpSubmit to route by partner ownership and adds OpForward/OpHeartbeat)
// without the server package depending on them. An override can delegate
// to the built-in behavior with Builtin.
func WithHandler(op string, fn HandlerFunc) Option {
	return func(d *Daemon) { d.handlers[op] = fn }
}

// Handle registers fn for op after construction, with WithHandler
// semantics. It must be called before Serve — the map is read without a
// lock once connections are being accepted. It exists for layers whose
// configuration needs the daemon's bound address (a cluster node's member
// list can only be final once every daemon has a port).
func (d *Daemon) Handle(op string, fn HandlerFunc) { d.handlers[op] = fn }

// NewDaemon listens on addr ("127.0.0.1:0" for an ephemeral port) and
// returns a daemon ready to Serve the hub.
func NewDaemon(h *core.Hub, addr string, opts ...Option) (*Daemon, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		hub:          h,
		ln:           ln,
		name:         "b2bhub",
		maxFrame:     MaxFrame,
		drainTimeout: 30 * time.Second,
		writeTimeout: 10 * time.Second,
		writeQueue:   256,
		handlers:     map[string]HandlerFunc{},
		ctx:          ctx,
		cancel:       cancel,
		conns:        map[net.Conn]struct{}{},
	}
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

// Addr is the daemon's listen address (host:port).
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Hub is the hub the daemon serves.
func (d *Daemon) Hub() *core.Hub { return d.hub }

// Context is the daemon's lifecycle context: cancelled by Close, it bounds
// the hub work of in-flight requests and any background work layered on
// the daemon (heartbeat loops, takeover replays).
func (d *Daemon) Context() context.Context { return d.ctx }

// Serve accepts connections until Close; it returns nil on a clean close.
func (d *Daemon) Serve() error {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return nil
		}
		d.conns[conn] = struct{}{}
		d.wg.Add(1)
		d.mu.Unlock()
		go d.handleConn(conn)
	}
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers. It does not touch the hub — drain the hub first for a graceful
// shutdown (DrainAndClose).
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return nil
	}
	d.closed = true
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	d.cancel()
	err := d.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	d.wg.Wait()
	return err
}

// DrainAndClose is the graceful shutdown sequence shared by the SIGTERM
// handler and tests: drain the hub under the deadline, checkpoint the
// journal (when there is one), then close the daemon. The drain summary is
// returned even when the deadline expired (with the deadline error).
func (d *Daemon) DrainAndClose(timeout time.Duration) (core.DrainSummary, error) {
	if timeout <= 0 {
		timeout = d.drainTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	sum, err := d.hub.Drain(ctx)
	if err == nil {
		if cerr := d.hub.CheckpointJournal(); cerr != nil && !errors.Is(cerr, core.ErrNoJournal) {
			err = cerr
		}
	}
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return sum, err
}

// connState wraps one accepted connection: its request group, the bounded
// response queue, and the single writer goroutine that drains it under a
// per-frame write deadline. Responses used to be written directly by the
// handler goroutines under a mutex — one client that stopped reading could
// park every handler of the connection on a blocked write forever. Now a
// handler enqueues and moves on; a reader that stalls the writer past the
// write deadline (or keeps the queue full past it) is evicted: the
// connection is closed, the pipelined handlers finish into a draining
// queue, and the rest of the daemon never notices.
type connState struct {
	c       net.Conn
	writeTO time.Duration
	out     chan *Frame
	reqs    sync.WaitGroup
	wdone   chan struct{}

	aborted   chan struct{}
	abortOnce sync.Once
}

// abort evicts the connection: further queued frames are discarded and the
// socket is closed (which also unblocks the read loop).
func (cs *connState) abort() {
	cs.abortOnce.Do(func() {
		close(cs.aborted)
		cs.c.Close()
	})
}

// respond enqueues one response frame. A full queue blocks the handler for
// at most the write timeout before the connection is declared wedged and
// evicted.
func (cs *connState) respond(f *Frame) {
	select {
	case cs.out <- f:
	case <-cs.aborted:
	default:
		t := time.NewTimer(cs.writeTO)
		defer t.Stop()
		select {
		case cs.out <- f:
		case <-cs.aborted:
		case <-t.C:
			cs.abort()
		}
	}
}

// writeLoop is the connection's single writer: it drains the response
// queue under a per-frame write deadline until the queue is closed. After
// a write failure or deadline expiry it keeps draining (discarding) so
// handlers never block on a dead connection.
func (cs *connState) writeLoop() {
	defer close(cs.wdone)
	for f := range cs.out {
		select {
		case <-cs.aborted:
			continue // discard: the connection is gone
		default:
		}
		if cs.writeTO > 0 {
			_ = cs.c.SetWriteDeadline(time.Now().Add(cs.writeTO))
		}
		if WriteFrame(cs.c, f) != nil {
			cs.abort()
		}
	}
}

func (d *Daemon) handleConn(c net.Conn) {
	cs := &connState{
		c:       c,
		writeTO: d.writeTimeout,
		out:     make(chan *Frame, d.writeQueue),
		wdone:   make(chan struct{}),
		aborted: make(chan struct{}),
	}
	go cs.writeLoop()
	defer func() {
		cs.reqs.Wait() // all handlers enqueued (or timed out enqueueing)
		close(cs.out)  // writer flushes what is queued, then exits
		<-cs.wdone
		cs.abort()
		d.mu.Lock()
		delete(d.conns, c)
		d.mu.Unlock()
		d.wg.Done()
	}()
	for {
		f, err := ReadFrame(c, d.maxFrame)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				cs.respond(&Frame{V: ProtocolVersion, Err: protoError(CodeBadFrame, err.Error())})
			}
			return
		}
		if f.V != ProtocolVersion {
			cs.respond(&Frame{V: ProtocolVersion, ID: f.ID, Err: protoError(CodeVersion,
				fmt.Sprintf("server: protocol version %d not supported (daemon speaks %d)", f.V, ProtocolVersion))})
			continue
		}
		cs.reqs.Add(1)
		go func(f *Frame) {
			defer cs.reqs.Done()
			cs.respond(d.dispatch(f))
		}(f)
	}
}

// dispatch serves one request frame and builds its response frame.
func (d *Daemon) dispatch(f *Frame) *Frame {
	resp := &Frame{V: ProtocolVersion, ID: f.ID, Op: f.Op}
	body, err := d.serve(f.Op, f.Body)
	if err != nil {
		if we, ok := err.(*WireError); ok {
			resp.Err = we
		} else {
			resp.Err = EncodeError(err)
		}
		return resp
	}
	raw, merr := json.Marshal(body)
	if merr != nil {
		resp.Err = protoError(CodeInternal, fmt.Sprintf("server: marshal response: %v", merr))
		return resp
	}
	resp.Body = raw
	return resp
}

// Error implements error so a *WireError can flow through serve directly
// for protocol-level failures.
func (w *WireError) Error() string { return w.Message }

func (d *Daemon) serve(op string, body json.RawMessage) (any, error) {
	if fn, ok := d.handlers[op]; ok {
		return fn(d.ctx, body)
	}
	return d.Builtin(op, body)
}

// Builtin serves one op with the daemon's built-in handler, bypassing any
// WithHandler override. Overrides delegate to it for the local path (the
// cluster node's submit override calls Builtin(OpSubmit, …) when this node
// owns the partner).
func (d *Daemon) Builtin(op string, body json.RawMessage) (any, error) {
	switch op {
	case OpHello:
		return d.hello(), nil
	case OpStatus:
		return d.hub.Status(), nil
	case OpSubmit:
		return d.submit(body)
	case OpTrace:
		return d.trace(body)
	case OpDLQ:
		return d.dlq(), nil
	case OpResubmit:
		return d.resubmitOp(body)
	case OpDrain:
		return d.drain(body)
	case OpScrub:
		return d.scrub()
	default:
		return nil, protoError(CodeUnknownOp, fmt.Sprintf("server: unknown op %q", op))
	}
}

func (d *Daemon) hello() *HelloResponse {
	h := &HelloResponse{
		Version: ProtocolVersion,
		Name:    d.name,
		Journal: d.hub.Journal() != nil,
	}
	for _, p := range d.hub.Model.Partners {
		h.Partners = append(h.Partners, p.ID)
	}
	sort.Strings(h.Partners)
	return h
}

func (d *Daemon) submit(body json.RawMessage) (any, error) {
	var sr SubmitRequest
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, protoError(CodeBadFrame, fmt.Sprintf("server: decode submit: %v", err))
	}
	req, err := sr.CoreRequest()
	if err != nil {
		return nil, protoError(CodeBadFrame, err.Error())
	}
	ctx := d.ctx
	if sr.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sr.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	var res core.Result
	if sr.Async {
		fut, err := d.hub.DoAsync(ctx, req)
		if err != nil {
			return nil, err
		}
		res = fut.Result(ctx)
	} else {
		r, err := d.hub.Do(ctx, req)
		if err != nil {
			return nil, err
		}
		res = *r
	}
	if res.Err != nil {
		return nil, res.Err
	}
	out := &SubmitResponse{Wire: res.Wire}
	if res.Exchange != nil {
		out.ExchangeID = res.Exchange.ID
		out.Partner = res.Exchange.Partner.ID
	}
	if res.POA != nil {
		raw, err := json.Marshal(res.POA)
		if err != nil {
			return nil, protoError(CodeInternal, fmt.Sprintf("server: marshal poa: %v", err))
		}
		out.POA = raw
	}
	return out, nil
}

func (d *Daemon) trace(body json.RawMessage) (any, error) {
	var tr TraceRequest
	if err := json.Unmarshal(body, &tr); err != nil {
		return nil, protoError(CodeBadFrame, fmt.Sprintf("server: decode trace: %v", err))
	}
	ex, ok := d.hub.ExchangeByID(tr.ExchangeID)
	if !ok {
		return nil, protoError(CodeNotFound, fmt.Sprintf("server: exchange %q not found", tr.ExchangeID))
	}
	return &TraceResponse{
		ExchangeID: ex.ID,
		Partner:    ex.Partner.ID,
		Flow:       string(ex.Flow),
		Protocol:   string(ex.Protocol),
		Backend:    ex.Backend,
		Trace:      d.hub.Trace(ex.ID),
	}, nil
}

func (d *Daemon) dlq() *DLQResponse {
	dls := d.hub.DeadLetters()
	resp := &DLQResponse{Entries: make([]DLQEntry, 0, len(dls))}
	for _, dl := range dls {
		reason := ""
		if dl.Reason != nil {
			reason = dl.Reason.Error()
		}
		resp.Entries = append(resp.Entries, DLQEntry{
			ExchangeID: dl.ExchangeID,
			Partner:    dl.Partner,
			Flow:       string(dl.Flow),
			Protocol:   string(dl.Protocol),
			Reason:     reason,
			At:         dl.At.UTC().Format(time.RFC3339Nano),
		})
	}
	return resp
}

func (d *Daemon) resubmitOp(body json.RawMessage) (any, error) {
	var rr ResubmitRequest
	if err := json.Unmarshal(body, &rr); err != nil {
		return nil, protoError(CodeBadFrame, fmt.Sprintf("server: decode resubmit: %v", err))
	}
	var entries []core.DeadLetter
	switch {
	case rr.All:
		entries = d.hub.DrainDeadLetters()
	case rr.ExchangeID != "":
		dl, ok := d.hub.TakeDeadLetter(rr.ExchangeID)
		if !ok {
			return nil, protoError(CodeNotFound, fmt.Sprintf("server: exchange %q not on the dead-letter queue", rr.ExchangeID))
		}
		entries = []core.DeadLetter{dl}
	default:
		return nil, protoError(CodeBadFrame, "server: resubmit requires exchange_id or all")
	}
	resp := &ResubmitResponse{Outcomes: make([]ResubmitOutcome, 0, len(entries))}
	for _, dl := range entries {
		out := ResubmitOutcome{ExchangeID: dl.ExchangeID}
		ex, err := d.hub.Resubmit(d.ctx, dl)
		if ex != nil {
			out.NewExchangeID = ex.ID
		}
		if err != nil {
			out.Err = EncodeError(err)
		}
		resp.Outcomes = append(resp.Outcomes, out)
	}
	return resp, nil
}

func (d *Daemon) scrub() (any, error) {
	rep, err := d.hub.ScrubJournal()
	if err != nil {
		return nil, err
	}
	return &ScrubResponse{
		Path:             d.hub.Journal().Path(),
		Records:          rep.Records,
		Corrupt:          rep.Corrupt,
		QuarantinedBytes: rep.QuarantinedBytes,
		TornBytes:        rep.TornBytes,
	}, nil
}

func (d *Daemon) drain(body json.RawMessage) (any, error) {
	var dr DrainRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &dr); err != nil {
			return nil, protoError(CodeBadFrame, fmt.Sprintf("server: decode drain: %v", err))
		}
	}
	timeout := d.drainTimeout
	if dr.TimeoutMS > 0 {
		timeout = time.Duration(dr.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	sum, err := d.hub.Drain(ctx)
	resp := &DrainResponse{
		Completed:    sum.Completed,
		Failed:       sum.Failed,
		Shed:         sum.Shed,
		DeadLettered: sum.DeadLettered,
		TimedOut:     errors.Is(err, context.DeadlineExceeded),
	}
	if err != nil && !resp.TimedOut {
		return nil, err
	}
	if err == nil {
		if cerr := d.hub.CheckpointJournal(); cerr == nil {
			resp.Checkpointed = true
		} else if !errors.Is(cerr, core.ErrNoJournal) {
			return nil, cerr
		}
	}
	return resp, nil
}
