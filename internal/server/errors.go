package server

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
)

// Wire error mapping: the daemon serializes every failure as a WireError
// carrying a stable machine-readable code plus, for pipeline failures, the
// *core.ExchangeError detail (exchange/partner/stage/port/attempt). The
// client reconstructs a typed error on the other side, so a remote caller
// can errors.Is against the core sentinels and errors.As out the
// *core.ExchangeError exactly as an in-process caller would.

// Stable error codes of protocol version 1. Codes are append-only: a code
// is never renamed or reused, so old clients keep classifying correctly.
const (
	// Codes mapped 1:1 onto the core sentinels.
	CodeHubStopped         = "hub-stopped"
	CodeUnknownPartner     = "unknown-partner"
	CodeProtocolMismatch   = "protocol-mismatch"
	CodeInvalidRequest     = "invalid-request"
	CodeNoOutbound         = "no-outbound"
	CodePartnerUnavailable = "partner-unavailable"
	CodePeerUnavailable    = "peer-unavailable"
	CodeNoJournal          = "no-journal"

	// Context outcomes.
	CodeDeadline = "deadline-exceeded"
	CodeCanceled = "canceled"

	// Protocol-level failures originated by the daemon itself.
	CodeBadFrame  = "bad-frame"
	CodeVersion   = "version-mismatch"
	CodeUnknownOp = "unknown-op"
	CodeNotFound  = "not-found"
	CodeInternal  = "internal"
)

// WireError is the serialized form of a daemon-side error.
type WireError struct {
	// Code is the stable machine-readable class (Code* constants).
	Code string `json:"code"`
	// Message is the full rendered error text.
	Message string `json:"message"`
	// Exchange carries the *core.ExchangeError detail for pipeline
	// failures.
	Exchange *ExchangeErrDetail `json:"exchange,omitempty"`
}

// ExchangeErrDetail locates a pipeline failure, mirroring
// core.ExchangeError field for field.
type ExchangeErrDetail struct {
	ExchangeID string `json:"exchange_id,omitempty"`
	Partner    string `json:"partner,omitempty"`
	Stage      string `json:"stage,omitempty"`
	Port       string `json:"port,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
	// Cause is the wrapped cause's own message (the part of Message after
	// the exchange prefix), so the reconstructed error renders identically.
	Cause string `json:"cause,omitempty"`
}

// codeSentinel maps wire codes back to the matchable sentinel errors.
var codeSentinel = map[string]error{
	CodeHubStopped:         core.ErrHubStopped,
	CodeUnknownPartner:     core.ErrUnknownPartner,
	CodeProtocolMismatch:   core.ErrProtocolMismatch,
	CodeInvalidRequest:     core.ErrInvalidRequest,
	CodeNoOutbound:         core.ErrNoOutbound,
	CodePartnerUnavailable: core.ErrPartnerUnavailable,
	CodePeerUnavailable:    core.ErrPeerUnavailable,
	CodeNoJournal:          core.ErrNoJournal,
	CodeDeadline:           context.DeadlineExceeded,
	CodeCanceled:           context.Canceled,
}

// codeFor classifies an error into its wire code.
func codeFor(err error) string {
	switch {
	case errors.Is(err, core.ErrHubStopped):
		return CodeHubStopped
	case errors.Is(err, core.ErrUnknownPartner):
		return CodeUnknownPartner
	case errors.Is(err, core.ErrProtocolMismatch):
		return CodeProtocolMismatch
	case errors.Is(err, core.ErrInvalidRequest):
		return CodeInvalidRequest
	case errors.Is(err, core.ErrNoOutbound):
		return CodeNoOutbound
	case errors.Is(err, core.ErrPeerUnavailable):
		return CodePeerUnavailable
	case errors.Is(err, core.ErrPartnerUnavailable):
		return CodePartnerUnavailable
	case errors.Is(err, core.ErrNoJournal):
		return CodeNoJournal
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	default:
		return CodeInternal
	}
}

// EncodeError serializes err for the wire, preserving the exchange detail
// and sentinel class.
func EncodeError(err error) *WireError {
	if err == nil {
		return nil
	}
	we := &WireError{Code: codeFor(err), Message: err.Error()}
	var ee *core.ExchangeError
	if errors.As(err, &ee) {
		we.Exchange = &ExchangeErrDetail{
			ExchangeID: ee.ExchangeID,
			Partner:    ee.Partner,
			Stage:      string(ee.Stage),
			Port:       ee.Port,
			Attempt:    ee.Attempt,
			Cause:      ee.Err.Error(),
		}
	}
	return we
}

// protoError builds a daemon-originated WireError (no exchange detail).
func protoError(code, msg string) *WireError {
	return &WireError{Code: code, Message: msg}
}

// remoteError is the client-side reconstruction of a remote cause: it
// renders the remote message and unwraps to the sentinel matching the wire
// code, so errors.Is works across the connection.
type remoteError struct {
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.sentinel }

// DecodeError reconstructs a typed error from its wire form: pipeline
// failures come back as *core.ExchangeError wrapping a cause that unwraps
// to the sentinel named by the code, and plain failures unwrap to the
// sentinel directly. Unknown codes (from a newer daemon) decode to an
// opaque error carrying the remote message.
func DecodeError(we *WireError) error {
	if we == nil {
		return nil
	}
	sentinel := codeSentinel[we.Code]
	if we.Exchange != nil {
		d := we.Exchange
		cause := d.Cause
		if cause == "" {
			cause = we.Message
		}
		var inner error
		if sentinel != nil {
			inner = &remoteError{msg: cause, sentinel: sentinel}
		} else {
			inner = errors.New(cause)
		}
		return &core.ExchangeError{
			ExchangeID: d.ExchangeID,
			Partner:    d.Partner,
			Stage:      obs.Stage(d.Stage),
			Port:       d.Port,
			Attempt:    d.Attempt,
			Err:        inner,
		}
	}
	if sentinel != nil {
		return &remoteError{msg: we.Message, sentinel: sentinel}
	}
	return errors.New(we.Message)
}
