package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/formats"
	"repro/internal/leakcheck"
	"repro/internal/obs"
)

var (
	tp1    = doc.Party{ID: "TP1", Name: "Trading Partner 1", DUNS: "111111111"}
	seller = doc.Party{ID: "HUB", Name: "Receiver Inc", DUNS: "999999999"}
)

// newDaemon builds a Figure 14 hub, serves it on an ephemeral loopback
// port and dials one client. Cleanup drains nothing — tests own the hub's
// lifecycle decisions — but always closes daemon, client and scheduler.
func newDaemon(t *testing.T, opts ...core.HubOption) (*core.Hub, *Daemon, *Client) {
	t.Helper()
	m, err := core.PaperFigure14Model()
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHub(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(h, "127.0.0.1:0", WithName("test-hub"))
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve() }()
	c, err := Dial(context.Background(), d.Addr())
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		d.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		h.StopWorkers()
		h.CloseJournal()
	})
	return h, d, c
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Frame{V: 1, ID: 42, Op: OpStatus, Body: json.RawMessage(`{"x":1}`)}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.V != 1 || out.ID != 42 || out.Op != OpStatus || string(out.Body) != `{"x":1}` {
		t.Fatalf("round trip mismatch: %+v", out)
	}

	// Oversized frames are rejected without consuming the payload.
	buf.Reset()
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 4); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}

	// A torn frame reports a short read, not a silent truncation.
	buf.Reset()
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	torn := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, err := ReadFrame(torn, 0); err == nil {
		t.Fatal("torn frame decoded")
	}
}

// TestWireErrorRoundTrip pins the error mapping contract: every sentinel
// survives encode → JSON → decode with errors.Is intact, exchange detail
// survives errors.As, and the rendered message is unchanged.
func TestWireErrorRoundTrip(t *testing.T) {
	sentinels := []error{
		core.ErrHubStopped, core.ErrUnknownPartner, core.ErrProtocolMismatch,
		core.ErrInvalidRequest, core.ErrNoOutbound, core.ErrPartnerUnavailable,
		core.ErrNoJournal, context.DeadlineExceeded, context.Canceled,
	}
	for _, sent := range sentinels {
		t.Run(codeFor(sent), func(t *testing.T) {
			src := &core.ExchangeError{
				ExchangeID: "ex-000007",
				Partner:    "TP2",
				Stage:      obs.StageApp,
				Port:       "app.out",
				Attempt:    2,
				Err:        fmt.Errorf("wrapped: %w", sent),
			}
			we := EncodeError(src)
			raw, err := json.Marshal(we)
			if err != nil {
				t.Fatal(err)
			}
			back := &WireError{}
			if err := json.Unmarshal(raw, back); err != nil {
				t.Fatal(err)
			}
			dec := DecodeError(back)
			if !errors.Is(dec, sent) {
				t.Fatalf("decoded error lost sentinel %v: %v", sent, dec)
			}
			var ee *core.ExchangeError
			if !errors.As(dec, &ee) {
				t.Fatalf("decoded error lost ExchangeError: %v", dec)
			}
			if ee.ExchangeID != src.ExchangeID || ee.Partner != src.Partner ||
				ee.Stage != src.Stage || ee.Port != src.Port || ee.Attempt != src.Attempt {
				t.Fatalf("detail mismatch: %+v vs %+v", ee, src)
			}
			if dec.Error() != src.Error() {
				t.Fatalf("message changed:\n  was %q\n  now %q", src.Error(), dec.Error())
			}
		})
	}

	// Plain sentinel without exchange detail.
	dec := DecodeError(EncodeError(core.ErrHubStopped))
	if !errors.Is(dec, core.ErrHubStopped) || dec.Error() != core.ErrHubStopped.Error() {
		t.Fatalf("plain sentinel mismatch: %v", dec)
	}
	// Unknown code from a newer daemon decodes to an opaque error.
	dec = DecodeError(&WireError{Code: "code-from-the-future", Message: "boom"})
	if dec == nil || dec.Error() != "boom" {
		t.Fatalf("unknown code: %v", dec)
	}
	if DecodeError(nil) != nil {
		t.Fatal("nil round trip")
	}
}

// TestDaemonSubmitFlows drives all three document kinds over the wire:
// sync PO, async high-priority PO, protocol-native wire PO, and the
// outbound invoice for a fulfilled order.
func TestDaemonSubmitFlows(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	h, _, c := newDaemon(t, core.WithShards(2), core.WithWorkersPerShard(2))
	if _, err := h.EnableInvoicing(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if hello := c.Hello(); hello.Version != ProtocolVersion || hello.Name != "test-hub" {
		t.Fatalf("hello mismatch: %+v", hello)
	}

	g := doc.NewGenerator(7)
	po := g.PO(tp1, seller)
	req, err := PORequest(po)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExchangeID == "" || resp.Partner != "TP1" {
		t.Fatalf("submit response: %+v", resp)
	}
	poa := &doc.PurchaseOrderAck{}
	if err := json.Unmarshal(resp.POA, poa); err != nil {
		t.Fatal(err)
	}
	if poa.POID != po.ID {
		t.Fatalf("POA for %q, want %q", poa.POID, po.ID)
	}

	// Async through the scheduler, high lane, with a retry override.
	po2 := g.PO(tp1, seller)
	req2, err := PORequest(po2)
	if err != nil {
		t.Fatal(err)
	}
	req2.Async = true
	req2.High = true
	req2.Retry = &RetryOverride{MaxAttempts: 3, BaseBackoffMS: 1}
	if _, err := c.Submit(ctx, req2); err != nil {
		t.Fatal(err)
	}

	// Invoice for the first order.
	inv, err := c.Submit(ctx, SubmitRequest{Kind: "invoice", PartnerID: "TP1", POID: po.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Wire) == 0 {
		t.Fatal("invoice returned no wire document")
	}

	// Trace of the first exchange is served remotely.
	trace, err := c.Trace(ctx, resp.ExchangeID)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Partner != "TP1" || trace.Protocol != string(formats.EDI) || len(trace.Trace) == 0 {
		t.Fatalf("trace response: %+v", trace)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != core.StatusVersion {
		t.Fatalf("status version %d, want %d", st.Version, core.StatusVersion)
	}
	if st.Exchanges.Started < 3 || st.Exchanges.ByPartner["TP1"] < 3 {
		t.Fatalf("status counters: %+v", st.Exchanges)
	}
	if !st.Sched.Running || st.Sched.Shards != 2 {
		t.Fatalf("status sched: %+v", st.Sched)
	}
}

// TestDaemonTypedErrors pins the remote error surface: core sentinels and
// exchange detail cross the wire, and protocol-level failures carry their
// own codes.
func TestDaemonTypedErrors(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	_, d, c := newDaemon(t)
	ctx := context.Background()

	// Unknown partner: typed pipeline failure.
	g := doc.NewGenerator(9)
	po := g.PO(doc.Party{ID: "NOPE", Name: "Ghost", DUNS: "000000000"}, seller)
	req, err := PORequest(po)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, req)
	if !errors.Is(err, core.ErrUnknownPartner) {
		t.Fatalf("want ErrUnknownPartner over the wire, got %v", err)
	}

	// Invalid request: sentinel without exchange detail.
	_, err = c.Submit(ctx, SubmitRequest{Kind: "po"})
	if !errors.Is(err, core.ErrInvalidRequest) {
		t.Fatalf("want ErrInvalidRequest, got %v", err)
	}

	// Unknown exchange: protocol-level not-found.
	_, err = c.Trace(ctx, "ex-999999")
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("want not-found, got %v", err)
	}

	// Unknown op.
	if err := c.Call(ctx, "no-such-op", struct{}{}, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("want unknown-op, got %v", err)
	}

	// Resubmit without selector.
	if _, err := c.Resubmit(ctx, "", false); err == nil {
		t.Fatal("want bad-frame for empty resubmit")
	}

	// A frame with an alien protocol version is rejected per-frame and the
	// connection stays usable. Speak the raw protocol for this one.
	raw, err := Dial(ctx, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.writeMu.Lock()
	werr := WriteFrame(raw.conn, &Frame{V: 99, ID: 1, Op: OpStatus})
	raw.writeMu.Unlock()
	if werr != nil {
		t.Fatal(werr)
	}
	// The response has ID 1, which this client never used for a pending
	// call — read it off the wire by racing a real call after it: the
	// version error must not have corrupted the connection.
	if _, err := raw.Status(ctx); err != nil {
		t.Fatalf("connection unusable after version mismatch: %v", err)
	}
}

// TestDaemonDLQResubmitDrain exercises the operator loop end to end: a
// hard-down backend dead-letters exchanges, the DLQ is listed remotely, a
// resubmit against the still-broken backend re-parks, a resubmit after
// healing succeeds, and a final drain checkpoints the journal.
func TestDaemonDLQResubmitDrain(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	jpath := filepath.Join(t.TempDir(), "hub.journal")
	h, _, c := newDaemon(t, core.WithJournal(jpath))
	ctx := context.Background()

	var faults []*backend.Faulty
	h.WrapBackends(func(sys backend.System) backend.System {
		f := backend.NewFaulty(sys, backend.FaultSchedule{ErrProb: 1.0, Seed: 3})
		faults = append(faults, f)
		return f
	})
	h.SetDefaultRetryPolicy(core.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond})

	g := doc.NewGenerator(11)
	po := g.PO(tp1, seller)
	req, err := PORequest(po)
	if err != nil {
		t.Fatal(err)
	}
	_, serr := c.Submit(ctx, req)
	if serr == nil {
		t.Fatal("submit against hard-down backend succeeded")
	}
	// Pipeline failures arrive typed: the exchange detail survives the wire.
	var ee *core.ExchangeError
	if !errors.As(serr, &ee) {
		t.Fatalf("want *core.ExchangeError over the wire, got %T: %v", serr, serr)
	}
	if ee.Partner != "TP1" || ee.ExchangeID == "" {
		t.Fatalf("exchange detail lost over the wire: %+v", ee)
	}

	dlq, err := c.DLQ(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dlq.Entries) != 1 || dlq.Entries[0].Partner != "TP1" {
		t.Fatalf("dlq: %+v", dlq.Entries)
	}
	exID := dlq.Entries[0].ExchangeID

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DLQ.Depth != 1 || !st.Journal.Enabled || st.Journal.UnresolvedDeadLetters != 1 {
		t.Fatalf("status dlq/journal: %+v %+v", st.DLQ, st.Journal)
	}

	// Still broken: the rerun fails and re-parks.
	rs, err := c.Resubmit(ctx, exID, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Outcomes) != 1 || rs.Outcomes[0].Err == nil {
		t.Fatalf("resubmit against broken backend: %+v", rs.Outcomes)
	}
	if dlq, err = c.DLQ(ctx); err != nil || len(dlq.Entries) != 1 {
		t.Fatalf("dlq after failed resubmit: %v %+v", err, dlq.Entries)
	}

	// Heal and rerun everything.
	for _, f := range faults {
		f.SetSchedule(backend.FaultSchedule{})
	}
	rs, err = c.Resubmit(ctx, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Outcomes) != 1 || rs.Outcomes[0].Err != nil || rs.Outcomes[0].NewExchangeID == "" {
		t.Fatalf("resubmit after heal: %+v", rs.Outcomes)
	}
	if dlq, err = c.DLQ(ctx); err != nil || len(dlq.Entries) != 0 {
		t.Fatalf("dlq after heal: %v %+v", err, dlq.Entries)
	}

	dr, err := c.Drain(ctx, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if dr.TimedOut || !dr.Checkpointed {
		t.Fatalf("drain: %+v", dr)
	}
	if dr.Completed < 1 {
		t.Fatalf("drain completed %d, want >= 1", dr.Completed)
	}

	// Post-drain the hub rejects new work with the typed sentinel — even
	// over the wire.
	req.Async = true
	if _, err := c.Submit(ctx, req); !errors.Is(err, core.ErrHubStopped) {
		t.Fatalf("want ErrHubStopped after drain, got %v", err)
	}
}

// TestDaemonConcurrentClients hammers one daemon from two clients sharing
// the pipelined protocol, interleaving submits and status queries, and
// reconciles the exchange count. Run with -race.
func TestDaemonConcurrentClients(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	h, d, c1 := newDaemon(t, core.WithShards(2), core.WithWorkersPerShard(2))
	ctx := context.Background()
	c2, err := Dial(ctx, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	const (
		goroutines = 8
		perG       = 5
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := c1
			if i%2 == 1 {
				c = c2
			}
			g := doc.NewGenerator(int64(100 + i))
			for j := 0; j < perG; j++ {
				po := g.PO(tp1, seller)
				po.ID = fmt.Sprintf("%s-g%d-%d", po.ID, i, j)
				req, err := PORequest(po)
				if err != nil {
					errCh <- err
					return
				}
				req.Async = i%2 == 0
				if _, err := c.Submit(ctx, req); err != nil {
					errCh <- err
					return
				}
				if j == 0 {
					if _, err := c.Status(ctx); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := h.Status().Exchanges.Started; got != goroutines*perG {
		t.Fatalf("started %d exchanges, want %d", got, goroutines*perG)
	}
}
