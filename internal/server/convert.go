package server

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/doc"
	"repro/internal/formats"
)

// Conversions between the wire submit shape and the hub's Request. They
// live on the wire type so every layer that accepts a SubmitRequest — the
// daemon's built-in submit handler, the cluster node's routing override —
// decodes it identically.

// PartnerKey returns the trading-partner routing key of the request: the
// explicit PartnerID, or the buyer ID of an embedded purchase order. It is
// "" for a wire document with no partner hint (the partner is only known
// after protocol decode) — callers routing by partner must decide who owns
// unattributable work.
func (sr *SubmitRequest) PartnerKey() string {
	if sr.PartnerID != "" {
		return sr.PartnerID
	}
	if len(sr.PO) > 0 {
		var po struct {
			Buyer struct {
				ID string `json:"id"`
			} `json:"buyer"`
		}
		if json.Unmarshal(sr.PO, &po) == nil {
			return po.Buyer.ID
		}
	}
	return ""
}

// CoreRequest converts the wire request into the hub's Request. Async and
// TimeoutMS are transport concerns and stay with the caller.
func (sr *SubmitRequest) CoreRequest() (core.Request, error) {
	req := core.Request{
		Kind:      core.DocKind(sr.Kind),
		Protocol:  formats.Format(sr.Protocol),
		Wire:      sr.Wire,
		PartnerID: sr.PartnerID,
		POID:      sr.POID,
	}
	if len(sr.PO) > 0 {
		po := &doc.PurchaseOrder{}
		if err := json.Unmarshal(sr.PO, po); err != nil {
			return core.Request{}, fmt.Errorf("server: decode po: %w", err)
		}
		req.PO = po
	}
	if sr.High {
		req.Priority = core.PriorityHigh
	}
	if r := sr.Retry; r != nil {
		req.Retry = &core.RetryPolicy{
			MaxAttempts:       r.MaxAttempts,
			BaseBackoff:       time.Duration(r.BaseBackoffMS) * time.Millisecond,
			MaxBackoff:        time.Duration(r.MaxBackoffMS) * time.Millisecond,
			PerAttemptTimeout: time.Duration(r.PerAttemptTimeoutMS) * time.Millisecond,
		}
	}
	return req, nil
}
