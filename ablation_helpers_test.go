package repro

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/rules"
)

func newApprovalRules(b *testing.B) *rules.Registry {
	b.Helper()
	reg := rules.NewRegistry()
	set := reg.Set("check-need-for-approval")
	for _, r := range []rules.Rule{
		{Name: "approval TP1→SAP", Source: "TP1", Target: "SAP", Condition: "document.amount >= 55000"},
		{Name: "approval TP2→Oracle", Source: "TP2", Target: "Oracle", Condition: "document.amount >= 40000"},
	} {
		if err := set.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

func mustParseCondition(b *testing.B) expr.Node {
	b.Helper()
	n, err := expr.Parse(`(source == "TP1" && target == "SAP" && document.amount >= 55000) ||
		(source == "TP2" && target == "Oracle" && document.amount >= 40000)`)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func evalCondition(n expr.Node, env expr.MapEnv) (bool, error) {
	return expr.EvalBool(n, env)
}
